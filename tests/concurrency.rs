//! Concurrency: the storage engine and the read path of every index are
//! thread-safe; concurrent readers must see consistent answers and
//! consistent I/O accounting.

use contfield::prelude::*;
use contfield::workload::fractal::diamond_square;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn concurrent_queries_agree_with_sequential() {
    let field = diamond_square(6, 0.6, 77);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let dom = field.value_domain();

    let bands: Vec<Interval> = (0..32)
        .map(|i| {
            let t = i as f64 / 32.0;
            Interval::new(
                dom.denormalize(t * 0.9),
                dom.denormalize((t * 0.9 + 0.08).min(1.0)),
            )
        })
        .collect();
    let sequential: Vec<QueryStats> = bands
        .iter()
        .map(|b| index.query_stats(&engine, *b).expect("query"))
        .collect();

    let next = AtomicUsize::new(0);
    let results: Vec<(usize, QueryStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= bands.len() {
                            break;
                        }
                        out.push((i, index.query_stats(&engine, bands[i]).expect("query")));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("query thread"))
            .collect()
    });

    assert_eq!(results.len(), bands.len());
    for (i, got) in results {
        let want = &sequential[i];
        assert_eq!(got.cells_qualifying, want.cells_qualifying, "band {i}");
        assert_eq!(got.num_regions, want.num_regions, "band {i}");
        assert!((got.area - want.area).abs() < 1e-9 * want.area.max(1.0));
    }
}

#[test]
fn concurrent_cold_scans_share_the_pool_safely() {
    // Hammer a small pool from many threads; the pool must stay within
    // capacity and all reads must return correct data.
    let field = diamond_square(5, 0.5, 3);
    let engine = StorageEngine::new(contfield::storage::StorageConfig {
        pool_pages: 4,
        ..Default::default()
    });
    let scan = LinearScan::build(&engine, &field).expect("build");
    let dom = field.value_domain();
    let expected = scan.query_stats(&engine, dom).expect("query");

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..5 {
                    let got = scan.query_stats(&engine, dom).expect("query");
                    assert_eq!(got.cells_qualifying, expected.cells_qualifying);
                    assert!((got.area - expected.area).abs() < 1e-9);
                }
            });
        }
    });
    assert!(engine.pool().cached_pages() <= 4);
}

#[test]
fn global_io_counters_sum_across_threads() {
    let field = diamond_square(5, 0.5, 4);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let dom = field.value_domain();
    let band = Interval::new(dom.denormalize(0.4), dom.denormalize(0.5));

    engine.reset_stats();
    let per_thread_reads: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut total = 0;
                    for _ in 0..10 {
                        total += index
                            .query_stats(&engine, band)
                            .expect("query")
                            .io
                            .logical_reads();
                    }
                    total
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });
    // Each per-query delta includes reads from concurrent threads (the
    // counters are global), so the per-thread sums can overcount — but
    // the engine's grand total must be at least each thread's own share
    // and at most the sum of all deltas.
    let grand = engine.io_stats().logical_reads();
    let sum: u64 = per_thread_reads.iter().sum();
    assert!(grand <= sum);
    assert!(grand >= *per_thread_reads.iter().max().expect("non-empty"));
}
