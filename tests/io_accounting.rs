//! Integration checks of the I/O cost model — the quantities the
//! benchmark harness reports must behave the way the paper's cost
//! arguments assume.

use contfield::prelude::*;
use contfield::workload::{fractal::diamond_square, queries::interval_queries};

#[test]
fn index_size_ordering() {
    // Paper §3: I-All's tree is "large and slow"; I-Hilbert stores only
    // a few subfield intervals.
    let field = diamond_square(6, 0.7, 3);
    let engine = StorageEngine::in_memory();
    let iall = IAll::build(&engine, &field).expect("build");
    let ihilbert = IHilbert::build(&engine, &field).expect("build");
    assert!(ihilbert.num_intervals() < iall.num_intervals() / 4);
    assert!(ihilbert.index_pages() < iall.index_pages());
}

#[test]
fn cold_queries_hit_the_disk_warm_queries_do_not() {
    let field = diamond_square(5, 0.5, 4);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let band = Interval::new(dom.denormalize(0.4), dom.denormalize(0.45));

    engine.clear_cache();
    let cold = index.query_stats(&engine, band).expect("query");
    assert_eq!(cold.io.pool_misses, cold.io.disk_reads);
    assert!(cold.io.pool_misses > 0);

    // Same query warm: all logical reads come from the pool.
    let warm = index.query_stats(&engine, band).expect("query");
    assert_eq!(warm.io.disk_reads, 0, "warm query must not touch disk");
    assert_eq!(warm.io.logical_reads(), cold.io.logical_reads());
}

#[test]
fn linear_scan_cost_is_constant_in_query_width() {
    let field = diamond_square(5, 0.5, 5);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let scan = LinearScan::build(&engine, &field).expect("build");
    let mut reads = Vec::new();
    for qi in [0.0, 0.05, 0.1] {
        let q = interval_queries(dom, qi, 1, 9)[0];
        engine.clear_cache();
        reads.push(
            scan.query_stats(&engine, q)
                .expect("query")
                .io
                .logical_reads(),
        );
    }
    assert!(reads.windows(2).all(|w| w[0] == w[1]), "{reads:?}");
}

#[test]
fn ihilbert_beats_linear_scan_at_paper_scale_queries() {
    // At the paper's query widths (Qinterval ≤ 0.1 of the value domain)
    // on smooth terrain, I-Hilbert must read substantially fewer pages.
    let field = diamond_square(7, 0.8, 6); // 128x128 cells
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let scan = LinearScan::build(&engine, &field).expect("build");
    let ih = IHilbert::build(&engine, &field).expect("build");

    // Factors are conservative at this deliberately small test scale
    // (128² cells); the benches demonstrate the paper-scale gaps.
    for (qi, factor) in [(0.0, 3), (0.05, 2), (0.1, 1)] {
        let mut scan_reads = 0u64;
        let mut ih_reads = 0u64;
        for q in interval_queries(dom, qi, 20, 100) {
            engine.clear_cache();
            scan_reads += scan
                .query_stats(&engine, q)
                .expect("query")
                .io
                .logical_reads();
            engine.clear_cache();
            ih_reads += ih
                .query_stats(&engine, q)
                .expect("query")
                .io
                .logical_reads();
        }
        assert!(
            ih_reads * factor < scan_reads,
            "Qinterval {qi}: I-Hilbert {ih_reads} (x{factor}) vs LinearScan {scan_reads}"
        );
    }
}

#[test]
fn subfield_contiguity_bounds_estimation_reads() {
    // Reading a subfield's cells must cost at most
    // ceil(len/per_page) + 1 pages — contiguity is the entire point of
    // storing cells in Hilbert order (paper Fig. 6).
    let field = diamond_square(6, 0.8, 13);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");

    let band = Interval::new(dom.denormalize(0.3), dom.denormalize(0.32));
    engine.clear_cache();
    let stats = index.query_stats(&engine, band).expect("query");
    let per_page = 4096 / 64; // GridCellRecord::SIZE == 64
    let max_pages = stats.filter_nodes
        + (stats.cells_examined as u64).div_ceil(per_page)
        // one potential page-boundary straddle per retrieved subfield
        + stats.intervals_retrieved as u64;
    assert!(
        stats.io.logical_reads() <= max_pages,
        "reads {} exceed contiguity bound {max_pages}",
        stats.io.logical_reads()
    );
}

#[test]
fn concurrent_read_range_accounting_is_exact() {
    // Eight threads hammer overlapping record ranges of one file on one
    // engine. Accounting must stay exact on both planes: the per-thread
    // tallies must sum to the engine's global counters, every logical
    // access must be either a cached hit or a physical read, and the
    // sharded pool's own counters must agree.
    use contfield::storage::{thread_io_stats, RecordFile};

    let field = diamond_square(6, 0.6, 9);
    let engine = StorageEngine::in_memory();
    let records: Vec<_> = (0..field.num_cells())
        .map(|c| field.cell_record(c))
        .collect();
    let file = RecordFile::create(&engine, records).expect("create");
    engine.clear_cache();
    engine.reset_stats();

    let threads = 8;
    let span = 200;
    let per_thread: Vec<IoStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (file, engine) = (&file, &engine);
                scope.spawn(move || {
                    let before = thread_io_stats();
                    for i in 0..10 {
                        let start = (t * 37 + i * 113) % (file.len() - span);
                        let got = file.read_range(engine, start..start + span).expect("read");
                        assert_eq!(got.len(), span);
                    }
                    thread_io_stats() - before
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });

    let sum = per_thread
        .into_iter()
        .fold(IoStats::default(), |acc, s| acc + s);
    let global = engine.io_stats();
    assert_eq!(sum.pool_hits, global.pool_hits, "hit tallies must sum");
    assert_eq!(sum.pool_misses, global.pool_misses, "miss tallies must sum");
    assert_eq!(sum.disk_reads, global.disk_reads, "disk tallies must sum");
    // Conservation: every logical access was served exactly once, from
    // cache or from disk — no double counts, no lost updates.
    assert_eq!(global.pool_misses, global.disk_reads);
    assert_eq!(sum.logical_reads(), sum.pool_hits + sum.pool_misses);
    assert!(
        sum.pool_hits > 0,
        "overlapping ranges must share cached pages"
    );
    assert!(sum.pool_misses > 0, "cold file must fault");
    // The pool's per-shard counters describe the same history.
    let shards = engine.pool().shard_stats();
    assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), global.pool_hits);
    assert_eq!(
        shards.iter().map(|s| s.misses).sum::<u64>(),
        global.pool_misses
    );
}

#[test]
fn buffer_pool_capacity_affects_repeat_queries_only() {
    let field = diamond_square(5, 0.5, 21);
    let dom = field.value_domain();
    let band = Interval::new(dom.denormalize(0.2), dom.denormalize(0.3));

    // Tiny pool: cold cost identical, warm cost higher than with a big
    // pool (re-faults).
    let small = StorageEngine::new(StorageConfig {
        pool_pages: 2,
        ..Default::default()
    });
    let index_small = IHilbert::build(&small, &field).expect("build");
    small.clear_cache();
    let cold_small = index_small.query_stats(&small, band).expect("query");

    let big = StorageEngine::in_memory();
    let index_big = IHilbert::build(&big, &field).expect("build");
    big.clear_cache();
    let cold_big = index_big.query_stats(&big, band).expect("query");

    assert_eq!(
        cold_small.io.logical_reads(),
        cold_big.io.logical_reads(),
        "cold logical reads are pool-independent"
    );
    // Warm repeat: big pool serves from cache.
    let warm_big = index_big.query_stats(&big, band).expect("query");
    assert_eq!(warm_big.io.disk_reads, 0);
    let warm_small = index_small.query_stats(&small, band).expect("query");
    assert!(warm_small.io.disk_reads > 0, "2-page pool must re-fault");
}
