//! Cross-crate integration: every indexing method must return exactly
//! the same answer as the exhaustive LinearScan on every workload.

use contfield::prelude::*;
use contfield::workload::{
    fractal::diamond_square, monotonic::monotonic_field, noise::urban_noise_tin,
    queries::interval_queries,
};

/// Builds all four methods over `field` and checks them against the
/// scan on `queries`.
fn assert_all_methods_agree<F>(field: &F, queries: &[Interval])
where
    F: FieldModel + Sync,
{
    let engine = StorageEngine::in_memory();
    let scan = LinearScan::build(&engine, field).expect("build");
    let iall = IAll::build(&engine, field).expect("build");
    let ihilbert = IHilbert::build(&engine, field).expect("build");
    let iquad = {
        let dom = field.value_domain();
        IntervalQuadtree::build(&engine, field, dom.width() / 16.0).expect("build")
    };
    let methods: Vec<&dyn ValueIndex> = vec![&iall, &ihilbert, &iquad];

    for q in queries {
        let want = scan.query_stats(&engine, *q).expect("query");
        for m in &methods {
            let got = m.query_stats(&engine, *q).expect("query");
            assert_eq!(
                got.cells_qualifying,
                want.cells_qualifying,
                "{} disagrees on qualifying cells for {q}",
                m.name()
            );
            assert_eq!(
                got.num_regions,
                want.num_regions,
                "{} disagrees on region count for {q}",
                m.name()
            );
            assert!(
                (got.area - want.area).abs() <= 1e-9 * want.area.max(1.0),
                "{} disagrees on area for {q}: {} vs {}",
                m.name(),
                got.area,
                want.area
            );
        }
    }
}

fn sweep(dom: Interval, seed: u64) -> Vec<Interval> {
    let mut queries = Vec::new();
    for qi in [0.0, 0.01, 0.05, 0.1] {
        queries.extend(interval_queries(dom, qi, 10, seed + (qi * 1000.0) as u64));
    }
    // Edge cases: full domain, empty band outside the domain, exact
    // boundary values.
    queries.push(dom);
    queries.push(Interval::new(dom.hi + 1.0, dom.hi + 2.0));
    queries.push(Interval::point(dom.lo));
    queries.push(Interval::point(dom.hi));
    queries
}

#[test]
fn fractal_grids_all_roughness_levels() {
    for h in [0.1, 0.5, 0.9] {
        let field = diamond_square(5, h, 77);
        let dom = field.value_domain();
        assert_all_methods_agree(&field, &sweep(dom, 1));
    }
}

#[test]
fn monotonic_grid() {
    let field = monotonic_field(48);
    let dom = field.value_domain();
    assert_all_methods_agree(&field, &sweep(dom, 2));
}

#[test]
fn noise_tin() {
    let field = urban_noise_tin(1200, 5);
    let dom = field.value_domain();
    assert_all_methods_agree(&field, &sweep(dom, 3));
}

#[test]
fn constant_field_degenerate_case() {
    // A constant field has a single degenerate interval everywhere; all
    // methods must agree on hit-vs-miss semantics.
    let field = GridField::from_values(9, 9, vec![5.0; 81]);
    assert_all_methods_agree(
        &field,
        &[
            Interval::point(5.0),
            Interval::new(4.0, 6.0),
            Interval::new(5.0, 9.0),
            Interval::new(6.0, 7.0),
        ],
    );
}
