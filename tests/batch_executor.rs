//! Cross-crate integration of the parallel batch executor: on the same
//! workloads `cross_method_consistency` uses, [`QueryBatch`] must return
//! results **byte-identical** to running each query sequentially — same
//! counts, bit-exact areas, identical region geometry — for every
//! method, because parallelism is across whole queries and each query
//! runs the ordinary sequential pipeline.

use contfield::prelude::*;
use contfield::workload::{
    fractal::diamond_square, monotonic::monotonic_field, noise::urban_noise_tin,
    queries::interval_queries,
};

fn sweep(dom: Interval, seed: u64) -> Vec<Interval> {
    let mut queries = Vec::new();
    for qi in [0.0, 0.01, 0.05, 0.1] {
        queries.extend(interval_queries(dom, qi, 10, seed + (qi * 1000.0) as u64));
    }
    queries.push(dom);
    queries.push(Interval::new(dom.hi + 1.0, dom.hi + 2.0));
    queries.push(Interval::point(dom.lo));
    queries.push(Interval::point(dom.hi));
    queries
}

/// Runs `queries` through the batch executor at several thread counts
/// and demands byte-identical answers to the sequential loop.
fn assert_batch_equals_sequential<F: FieldModel + Sync>(field: &F, queries: &[Interval]) {
    let engine = StorageEngine::in_memory();
    let scan = LinearScan::build(&engine, field).expect("build");
    let iall = IAll::build(&engine, field).expect("build");
    let ihilbert = IHilbert::build(&engine, field).expect("build");
    let iquad = {
        let dom = field.value_domain();
        IntervalQuadtree::build(&engine, field, dom.width() / 16.0).expect("build")
    };
    let methods: Vec<&dyn ValueIndex> = vec![&scan, &iall, &ihilbert, &iquad];

    for m in &methods {
        // Sequential reference, regions included.
        let want: Vec<_> = queries
            .iter()
            .map(|q| m.query_regions(&engine, *q).expect("query"))
            .collect();
        for threads in [1, 4] {
            let report = QueryBatch::new(queries.to_vec())
                .threads(threads)
                .collect_regions(true)
                .run(&engine, *m)
                .expect("run");
            assert_eq!(report.results.len(), queries.len());
            for (i, r) in report.results.iter().enumerate() {
                let (ws, wr) = &want[i];
                assert_eq!(r.band, queries[i], "{}: order preserved", m.name());
                assert_eq!(r.stats.cells_examined, ws.cells_examined, "{}", m.name());
                assert_eq!(
                    r.stats.cells_qualifying,
                    ws.cells_qualifying,
                    "{}",
                    m.name()
                );
                assert_eq!(r.stats.num_regions, ws.num_regions, "{}", m.name());
                assert_eq!(
                    r.stats.area.to_bits(),
                    ws.area.to_bits(),
                    "{}: area must be bit-exact for {}",
                    m.name(),
                    queries[i]
                );
                assert_eq!(r.regions, *wr, "{}: regions must be identical", m.name());
            }
        }
    }
}

#[test]
fn batch_is_byte_identical_on_fractal_grid() {
    let field = diamond_square(5, 0.5, 77);
    let dom = field.value_domain();
    assert_batch_equals_sequential(&field, &sweep(dom, 1));
}

#[test]
fn batch_is_byte_identical_on_monotonic_grid() {
    let field = monotonic_field(48);
    let dom = field.value_domain();
    assert_batch_equals_sequential(&field, &sweep(dom, 2));
}

#[test]
fn batch_is_byte_identical_on_noise_tin() {
    let field = urban_noise_tin(1200, 5);
    let dom = field.value_domain();
    assert_batch_equals_sequential(&field, &sweep(dom, 3));
}

#[test]
fn batch_aggregates_are_sums_of_per_query_stats() {
    let field = diamond_square(5, 0.7, 9);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let queries = sweep(dom, 4);
    let report = QueryBatch::new(queries)
        .threads(4)
        .run(&engine, &index)
        .expect("run");

    let mut cells = 0;
    let mut io = IoStats::default();
    for r in &report.results {
        cells += r.stats.cells_qualifying;
        io = io + r.stats.io;
    }
    assert_eq!(report.total_cells_qualifying(), cells);
    assert_eq!(report.total_io(), io);
    assert_eq!(io.pool_misses, io.disk_reads, "misses are physical reads");
    assert!(report.mean_query_wall() <= report.max_query_wall());
}
