//! Registry/legacy consistency under the parallel batch executor: the
//! shared metrics registry must report exactly the same totals as the
//! summed per-query [`QueryStats`], whether the batch ran on one worker
//! or four (fig8a-style terrain, cold cache each run).

use contfield::field::FieldModel;
use contfield::index::{IHilbert, QueryBatch};
use contfield::storage::StorageEngine;
use contfield::workload::{queries::interval_queries, terrain::roseburg_standin};

const NAMES: &[&str] = &[
    "index_queries_total",
    "index_filter_pages_total",
    "index_refine_pages_total",
    "index_filter_nodes_total",
    "index_intervals_retrieved_total",
    "index_cells_examined_total",
    "index_cells_qualifying_total",
];

/// Runs the same batch on a fresh engine with `threads` workers and
/// returns (registry totals, summed legacy per-query stats) in the
/// order of [`NAMES`].
fn run_batch(threads: usize) -> (Vec<u64>, Vec<u64>) {
    let field = roseburg_standin(6);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    engine.reset_stats();

    let queries = interval_queries(field.value_domain(), 0.03, 32, 0xC0FFE);
    let report = QueryBatch::new(queries)
        .threads(threads)
        .run(&engine, &index)
        .expect("run");
    assert_eq!(report.threads, threads);

    let registry = engine.metrics();
    let labels: &[(&str, &str)] = &[("index", "I-Hilbert")];
    let got: Vec<u64> = NAMES
        .iter()
        .map(|n| registry.counter_value(n, labels).unwrap_or(0))
        .collect();
    let legacy = vec![
        report.results.len() as u64,
        report.results.iter().map(|r| r.stats.filter_pages).sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.io.logical_reads() - r.stats.filter_pages)
            .sum(),
        report.results.iter().map(|r| r.stats.filter_nodes).sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.intervals_retrieved as u64)
            .sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.cells_examined as u64)
            .sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.cells_qualifying as u64)
            .sum(),
    ];

    // The storage plane agrees too: every logical read of the batch hit
    // some shard's hit- or miss-counter.
    assert_eq!(
        registry.counter_total("pool_hits_total") + registry.counter_total("pool_misses_total"),
        report.total_io().logical_reads(),
        "{threads} threads: pool counters vs summed per-query I/O"
    );
    assert_eq!(
        registry.counter_total("storage_disk_reads_total"),
        report.total_io().disk_reads,
        "{threads} threads: disk counters vs summed per-query I/O"
    );

    (got, legacy)
}

#[test]
fn registry_totals_match_legacy_stats_at_any_thread_count() {
    let (one, legacy_one) = run_batch(1);
    let (four, legacy_four) = run_batch(4);
    assert_eq!(
        one, legacy_one,
        "single-threaded registry totals must equal summed QueryStats ({NAMES:?})"
    );
    assert_eq!(
        four, legacy_four,
        "4-thread registry totals must equal summed QueryStats ({NAMES:?})"
    );
    assert_eq!(
        one, four,
        "registry totals must not depend on the worker count ({NAMES:?})"
    );
    // The batch actually did work.
    assert!(one[0] == 32 && one[5] > 0, "{one:?}");
}

#[test]
fn batch_executor_publishes_utilization_metrics() {
    let field = roseburg_standin(5);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let queries = interval_queries(field.value_domain(), 0.03, 16, 0xBEEF);
    QueryBatch::new(queries)
        .threads(4)
        .run(&engine, &index)
        .expect("run");
    let registry = engine.metrics();
    // Every worker flushed its busy time, and the queue drained.
    assert!(registry.counter_total("batch_worker_busy_ns_total") > 0);
    for w in 0..4 {
        assert!(
            registry
                .counter_value("batch_worker_busy_ns_total", &[("worker", &w.to_string())])
                .is_some(),
            "worker {w} series missing"
        );
    }
    assert_eq!(registry.gauge_value("batch_queue_depth", &[]), Some(0.0));
}
