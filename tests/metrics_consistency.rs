//! Registry/legacy consistency under the parallel batch executor: the
//! shared metrics registry must report exactly the same totals as the
//! summed per-query [`QueryStats`], whether the batch ran on one worker
//! or four (fig8a-style terrain, cold cache each run).

use contfield::field::FieldModel;
use contfield::index::{IHilbert, QueryBatch};
use contfield::storage::StorageEngine;
use contfield::workload::{queries::interval_queries, terrain::roseburg_standin};

const NAMES: &[&str] = &[
    "index_queries_total",
    "index_filter_pages_total",
    "index_refine_pages_total",
    "index_filter_nodes_total",
    "index_intervals_retrieved_total",
    "index_cells_examined_total",
    "index_cells_qualifying_total",
];

/// Runs the same batch on a fresh engine with `threads` workers and
/// returns (registry totals, summed legacy per-query stats) in the
/// order of [`NAMES`].
fn run_batch(threads: usize) -> (Vec<u64>, Vec<u64>) {
    let field = roseburg_standin(6);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    engine.reset_stats();

    let queries = interval_queries(field.value_domain(), 0.03, 32, 0xC0FFE);
    let report = QueryBatch::new(queries)
        .threads(threads)
        .run(&engine, &index)
        .expect("run");
    assert_eq!(report.threads, threads);

    let registry = engine.metrics();
    let labels: &[(&str, &str)] = &[("index", "I-Hilbert")];
    let got: Vec<u64> = NAMES
        .iter()
        .map(|n| registry.counter_value(n, labels).unwrap_or(0))
        .collect();
    let legacy = vec![
        report.results.len() as u64,
        report.results.iter().map(|r| r.stats.filter_pages).sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.io.logical_reads() - r.stats.filter_pages)
            .sum(),
        report.results.iter().map(|r| r.stats.filter_nodes).sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.intervals_retrieved as u64)
            .sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.cells_examined as u64)
            .sum(),
        report
            .results
            .iter()
            .map(|r| r.stats.cells_qualifying as u64)
            .sum(),
    ];

    // The storage plane agrees too: every logical read of the batch hit
    // some shard's hit- or miss-counter.
    assert_eq!(
        registry.counter_total("pool_hits_total") + registry.counter_total("pool_misses_total"),
        report.total_io().logical_reads(),
        "{threads} threads: pool counters vs summed per-query I/O"
    );
    assert_eq!(
        registry.counter_total("storage_disk_reads_total"),
        report.total_io().disk_reads,
        "{threads} threads: disk counters vs summed per-query I/O"
    );

    (got, legacy)
}

#[test]
fn registry_totals_match_legacy_stats_at_any_thread_count() {
    let (one, legacy_one) = run_batch(1);
    let (four, legacy_four) = run_batch(4);
    assert_eq!(
        one, legacy_one,
        "single-threaded registry totals must equal summed QueryStats ({NAMES:?})"
    );
    assert_eq!(
        four, legacy_four,
        "4-thread registry totals must equal summed QueryStats ({NAMES:?})"
    );
    assert_eq!(
        one, four,
        "registry totals must not depend on the worker count ({NAMES:?})"
    );
    // The batch actually did work.
    assert!(one[0] == 32 && one[5] > 0, "{one:?}");
}

#[test]
fn batch_executor_publishes_utilization_metrics() {
    let field = roseburg_standin(5);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let queries = interval_queries(field.value_domain(), 0.03, 16, 0xBEEF);
    QueryBatch::new(queries)
        .threads(4)
        .run(&engine, &index)
        .expect("run");
    let registry = engine.metrics();
    // Every worker flushed its busy time, and the queue drained.
    assert!(registry.counter_total("batch_worker_busy_ns_total") > 0);
    for w in 0..4 {
        assert!(
            registry
                .counter_value("batch_worker_busy_ns_total", &[("worker", &w.to_string())])
                .is_some(),
            "worker {w} series missing"
        );
    }
    assert_eq!(registry.gauge_value("batch_queue_depth", &[]), Some(0.0));
}

/// Ingest-plane extension of the same invariant: with one writer
/// streaming updates (including capacity-forced drains) while four
/// reader threads query pinned epoch snapshots, the registry's
/// `index_*` totals must equal the sum of the per-query stats the
/// readers collected — no double counting across epochs, no lost
/// updates under the concurrent publish path.
#[test]
fn ingest_plane_registry_totals_match_summed_reader_stats() {
    use contfield::geom::Interval;
    use contfield::index::{IngestConfig, LiveIngest, QueryStats, ValueIndex};

    let field = roseburg_standin(5);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(
        &engine,
        base,
        IngestConfig {
            capacity: 64, // small: the stream forces inline drains
            ..Default::default()
        },
    )
    .expect("live");
    engine.reset_stats();

    let num_readers = 4usize;
    let queries_per_reader = 16usize;
    let updates = 256usize;
    let (live, engine, field) = (&live, &engine, &field);
    let per_reader: Vec<Vec<QueryStats>> = std::thread::scope(|s| {
        let writer = s.spawn(move || {
            let mut state = 0xC0FF_EE00_u64;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for _ in 0..updates {
                let cell = (next() % field.num_cells() as u64) as usize;
                let mut rec = live.cell_record(engine, cell).expect("cell record");
                for v in rec.vals.iter_mut() {
                    *v = dom.denormalize((next() >> 11) as f64 / (1u64 << 53) as f64);
                }
                live.ingest(engine, cell, rec).expect("ingest");
            }
        });
        let readers: Vec<_> = (0..num_readers)
            .map(|r| {
                s.spawn(move || {
                    let mut collected = Vec::with_capacity(queries_per_reader);
                    for i in 0..queries_per_reader {
                        let t = ((r * queries_per_reader + i) % 17) as f64 / 20.0;
                        let band =
                            Interval::new(dom.denormalize(t), dom.denormalize((t + 0.1).min(1.0)));
                        let snap = live.snapshot();
                        collected.push(snap.query_stats(engine, band).expect("snapshot query"));
                    }
                    collected
                })
            })
            .collect();
        writer.join().expect("writer");
        readers
            .into_iter()
            .map(|r| r.join().expect("reader"))
            .collect()
    });

    let all: Vec<&QueryStats> = per_reader.iter().flatten().collect();
    assert_eq!(all.len(), num_readers * queries_per_reader);
    let registry = engine.metrics();
    let labels: &[(&str, &str)] = &[("index", "I-Hilbert")];
    let got: Vec<u64> = NAMES
        .iter()
        .map(|n| registry.counter_value(n, labels).unwrap_or(0))
        .collect();
    let legacy: Vec<u64> = vec![
        all.len() as u64,
        all.iter().map(|s| s.filter_pages).sum(),
        all.iter()
            .map(|s| s.io.logical_reads() - s.filter_pages)
            .sum(),
        all.iter().map(|s| s.filter_nodes).sum(),
        all.iter().map(|s| s.intervals_retrieved as u64).sum(),
        all.iter().map(|s| s.cells_examined as u64).sum(),
        all.iter().map(|s| s.cells_qualifying as u64).sum(),
    ];
    assert_eq!(
        got, legacy,
        "ingest-plane registry totals must equal summed reader QueryStats ({NAMES:?})"
    );
    assert!(got[0] > 0 && got[5] > 0, "{got:?}");
}

/// Spatial-heatmap extension of the invariant: the heat tables' bucket
/// totals must equal the summed per-query touches — examined heat is
/// bumped once per coalesced run, qualifying heat once per qualifying
/// cell — whether the batch ran on one worker or four (the sharded
/// tables must never lose or double-count a bump), and the per-bucket
/// distribution must not depend on the worker count.
#[cfg(not(feature = "obs-off"))]
#[test]
fn heatmap_bucket_totals_match_summed_query_touches() {
    use contfield::storage::HeatKind;

    let mut per_thread = Vec::new();
    for threads in [1usize, 4] {
        let field = roseburg_standin(6);
        let engine = StorageEngine::in_memory();
        let index = IHilbert::build(&engine, &field).expect("build");
        engine.reset_stats();

        let queries = interval_queries(field.value_domain(), 0.03, 32, 0xC0FFE);
        let report = QueryBatch::new(queries)
            .threads(threads)
            .run(&engine, &index)
            .expect("run");

        let heat = engine.metrics().heat();
        let examined: u64 = report
            .results
            .iter()
            .map(|r| r.stats.cells_examined as u64)
            .sum();
        let qualifying: u64 = report
            .results
            .iter()
            .map(|r| r.stats.cells_qualifying as u64)
            .sum();
        assert!(examined > 0 && qualifying > 0, "the batch did work");
        assert_eq!(
            heat.table(HeatKind::Examined).total(),
            examined,
            "{threads} threads: examined heat vs summed QueryStats"
        );
        assert_eq!(
            heat.table(HeatKind::Qualifying).total(),
            qualifying,
            "{threads} threads: qualifying heat vs summed QueryStats"
        );
        assert!(
            heat.table(HeatKind::Pages).total() > 0,
            "{threads} threads: page reads feed the page heat table"
        );
        per_thread.push((
            heat.table(HeatKind::Examined).totals(),
            heat.table(HeatKind::Qualifying).totals(),
        ));
    }
    assert_eq!(
        per_thread[0], per_thread[1],
        "per-bucket heat must not depend on the worker count"
    );
}

/// Every EXPLAIN record the tracer retains must be internally
/// consistent: the filter + refine phase timings sum within the
/// enclosing span total, and the per-phase page split adds back up to
/// the query's logical reads.
#[cfg(not(feature = "obs-off"))]
#[test]
fn explain_phase_timings_and_pages_sum_within_the_span() {
    use contfield::index::ValueIndex;

    let field = roseburg_standin(6);
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");
    let tracer = engine.metrics().tracer();
    tracer.set_enabled(true);

    let queries = interval_queries(field.value_domain(), 0.03, 32, 0x51_0E);
    let mut stats = Vec::new();
    for q in &queries {
        stats.push(index.query_stats(&engine, *q).expect("query"));
    }
    let explains = tracer.recent_explains();
    assert_eq!(explains.len(), queries.len(), "one EXPLAIN per query");
    for (e, s) in explains.iter().zip(&stats) {
        assert!(
            e.filter_ns + e.refine_ns <= e.total_ns,
            "query #{}: filter {} + refine {} must sum within total {}",
            e.query_id,
            e.filter_ns,
            e.refine_ns,
            e.total_ns
        );
        assert_eq!(
            e.filter_ns + e.refine_ns + e.other_ns(),
            e.total_ns,
            "query #{}: other_ns must absorb the remainder exactly",
            e.query_id
        );
        assert_eq!(
            e.filter_pages + e.refine_pages,
            s.io.logical_reads(),
            "query #{}: phase pages must add up to the span's logical reads",
            e.query_id
        );
        assert_eq!(e.plan, "probe");
        assert_eq!(e.cells_examined, s.cells_examined as u64);
        assert_eq!(e.cells_qualifying, s.cells_qualifying as u64);
        assert_eq!(e.epoch, 0, "static plane queries pin no epoch");
    }
}
