//! The storage engine on a *real* database file: build a field database,
//! drop the engine, reopen the file, and keep querying.
//!
//! Page-level persistence is the engine's job; the tiny catalog (where
//! each structure starts, lengths, tree root) is the caller's — here we
//! carry it across the "restart" in plain variables, as a system
//! catalog page would.

use contfield::field::GridCellRecord;
use contfield::prelude::*;
use contfield::storage::{RecordFile, StorageConfig};
use contfield::workload::fractal::diamond_square;

fn db_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("contfield_test_{}_{name}.db", std::process::id()));
    p
}

#[test]
fn pages_survive_reopen() {
    let path = db_path("pages");
    let _ = std::fs::remove_file(&path);
    {
        let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("create");
        let id = engine.allocate_page().expect("allocate");
        let mut buf = [0u8; 4096];
        buf[7] = 0xA7;
        buf[4095] = 0x5C;
        engine.write_page(id, &buf).expect("write");
        engine.sync().expect("sync");
        assert_eq!(engine.num_pages(), 1);
    }
    {
        let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("reopen");
        assert_eq!(engine.num_pages(), 1, "page count derived from file length");
        let (a, b) = engine
            .with_page(contfield::storage::PageId(0), |p| (p[7], p[4095]))
            .expect("read");
        assert_eq!((a, b), (0xA7, 0x5C));
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn record_file_survives_reopen() {
    let path = db_path("records");
    let _ = std::fs::remove_file(&path);
    let field = diamond_square(4, 0.5, 9);
    let (first_page, len);
    {
        let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("create");
        let records: Vec<GridCellRecord> = (0..field.num_cells())
            .map(|c| field.cell_record(c))
            .collect();
        let file = RecordFile::create(&engine, records).expect("create");
        first_page = file.first_page();
        len = file.len();
        engine.sync().expect("sync");
    }
    {
        let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("reopen");
        let file = RecordFile::<GridCellRecord>::open(first_page, len);
        for cell in [0usize, 7, len - 1] {
            assert_eq!(
                file.get(&engine, cell).expect("get"),
                field.cell_record(cell)
            );
        }
    }
    std::fs::remove_file(&path).expect("cleanup");
}

#[test]
fn queries_run_against_a_file_backed_database() {
    let path = db_path("queries");
    let _ = std::fs::remove_file(&path);
    let field = diamond_square(5, 0.6, 17);
    let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("create");

    let scan = LinearScan::build(&engine, &field).expect("build");
    let index = IHilbert::build(&engine, &field).expect("build");
    let dom = field.value_domain();
    for t in [0.1, 0.5, 0.85] {
        let band = Interval::new(dom.denormalize(t), dom.denormalize((t + 0.1).min(1.0)));
        engine.clear_cache();
        let a = scan.query_stats(&engine, band).expect("query");
        engine.clear_cache();
        let b = index.query_stats(&engine, band).expect("query");
        assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
        assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
        // Real file reads happened.
        assert!(b.io.disk_reads > 0);
    }
    drop(engine);
    std::fs::remove_file(&path).expect("cleanup");
}
