//! Semantic end-to-end checks: the answer regions returned by the full
//! disk-resident pipeline must agree with the field itself — every
//! point inside a returned region has its interpolated value inside the
//! query band, and every point whose value is inside the band is
//! covered by some returned region.

use contfield::prelude::*;
use contfield::workload::fractal::diamond_square;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Point-in-polygon by ray casting (test-local helper; the library
/// itself never needs it).
fn polygon_contains(poly: &Polygon, p: Point2) -> bool {
    let n = poly.vertices.len();
    if n < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (a, b) = (poly.vertices[i], poly.vertices[j]);
        if ((a.y > p.y) != (b.y > p.y)) && (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x) {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[test]
fn regions_are_sound_and_complete() {
    let field = diamond_square(5, 0.6, 31);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");

    let band = Interval::new(dom.denormalize(0.45), dom.denormalize(0.6));
    let (stats, regions) = index.query_regions(&engine, band).expect("query");
    assert!(stats.num_regions > 0, "query should match something");

    let mut rng = StdRng::seed_from_u64(9);
    // Soundness: interior points of regions have values in the band.
    // Sample region centroids (strictly interior for convex clip
    // results).
    let mut checked = 0;
    for r in &regions {
        if let Some(c) = r.centroid() {
            let v = field.value_at(c).expect("centroid inside domain");
            assert!(
                v >= band.lo - 1e-6 && v <= band.hi + 1e-6,
                "centroid {c} has value {v} outside {band}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0);

    // Completeness: random domain points with value in the band are
    // covered by some region.
    let domain = field.domain();
    let mut covered_checks = 0;
    let mut tries = 0;
    while covered_checks < 50 && tries < 200_000 {
        tries += 1;
        let p = Point2::new(
            rng.gen_range(domain.lo[0]..domain.hi[0]),
            rng.gen_range(domain.lo[1]..domain.hi[1]),
        );
        let Some(v) = field.value_at(p) else { continue };
        // Stay away from band boundaries where coverage is a measure-zero
        // tie decided by floating point.
        let margin = 1e-6 * band.width().max(1.0);
        if v <= band.lo + margin || v >= band.hi - margin {
            continue;
        }
        let covered = regions.iter().any(|r| polygon_contains(r, p));
        assert!(covered, "point {p} (value {v}) not covered by any region");
        covered_checks += 1;
    }
    assert!(covered_checks >= 50, "too few in-band sample points found");
}

#[test]
fn total_region_area_equals_band_measure() {
    // Partitioning the whole value domain into disjoint bands must
    // tile the whole spatial domain (up to shared boundaries).
    let field = diamond_square(4, 0.4, 8);
    let dom = field.value_domain();
    let engine = StorageEngine::in_memory();
    let index = IHilbert::build(&engine, &field).expect("build");

    let cuts = 8;
    let mut total = 0.0;
    for i in 0..cuts {
        let band = Interval::new(
            dom.denormalize(i as f64 / cuts as f64),
            dom.denormalize((i + 1) as f64 / cuts as f64),
        );
        total += index.query_stats(&engine, band).expect("query").area;
    }
    let domain_area = field.domain().volume();
    assert!(
        (total - domain_area).abs() < 1e-6 * domain_area,
        "bands tile {total}, domain is {domain_area}"
    );
}

#[test]
fn q1_and_q2_are_consistent() {
    // The value reported by a Q1 point query must be consistent with
    // the regions a Q2 value query returns around that value.
    let field = diamond_square(4, 0.7, 12);
    let engine = StorageEngine::in_memory();
    let q1 = PointIndex::build(&engine, &field).expect("build");
    let q2 = IHilbert::build(&engine, &field).expect("build");

    let p = Point2::new(7.3, 4.8);
    let (Some(v), _) = q1.value_at(&engine, p).expect("query") else {
        panic!("point inside domain")
    };
    let band = Interval::new(v - 1e-9, v + 1e-9);
    let (_, regions) = q2.query_regions(&engine, band).expect("query");
    let covered = regions
        .iter()
        .any(|r| polygon_contains(r, p) || r.vertices.iter().any(|&q| q.distance(p) < 1e-6));
    assert!(covered, "Q2 around the Q1 value must cover the query point");
}
