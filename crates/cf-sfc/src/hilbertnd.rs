//! Arbitrary-dimension Hilbert transform (Skilling's algorithm).
//!
//! The paper notes "the Hilbert curve can be generalized for higher
//! dimensionalities" citing Bially (1969) for an n-dimensional
//! construction. We implement John Skilling's compact formulation
//! ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which
//! converts between coordinates and the *transpose* form of the Hilbert
//! index with O(n·b) bit operations. The vector-field extension uses this
//! for k-dimensional value domains, and 3-D volume fields (hexahedral
//! models mentioned in §2.1) use it for spatial linearization.

/// Converts coordinates to a Hilbert index, for `coords.len()` dimensions
/// with `bits` bits per coordinate.
///
/// The result is the position of the point along the n-dimensional Hilbert
/// curve, in `[0, 2^(n·bits))`.
///
/// # Panics
///
/// Panics if `coords` is empty, if `n·bits > 128`, or if any coordinate
/// needs more than `bits` bits.
pub fn hilbert_index_nd(coords: &[u64], bits: u32) -> u128 {
    let n = coords.len();
    assert!(n > 0, "need at least one dimension");
    assert!(
        (n as u32) * bits <= 128,
        "n*bits = {} exceeds 128-bit index",
        n as u32 * bits
    );
    for (d, &c) in coords.iter().enumerate() {
        assert!(
            bits == 64 || c < (1u64 << bits),
            "coordinate {c} in dim {d} needs more than {bits} bits"
        );
    }
    let mut x = coords.to_vec();
    axes_to_transpose(&mut x, bits);
    interleave_transpose(&x, bits)
}

/// Inverse of [`hilbert_index_nd`]: coordinates of the point at position
/// `index` along the n-dimensional Hilbert curve.
///
/// # Panics
///
/// Panics if `n == 0`, `n·bits > 128`, or `index >= 2^(n·bits)`.
pub fn hilbert_point_nd(index: u128, n: usize, bits: u32) -> Vec<u64> {
    assert!(n > 0, "need at least one dimension");
    let total_bits = n as u32 * bits;
    assert!(total_bits <= 128, "n*bits = {total_bits} exceeds 128");
    if total_bits < 128 {
        assert!(index < (1u128 << total_bits), "index out of range");
    }
    let mut x = deinterleave_transpose(index, n, bits);
    transpose_to_axes(&mut x, bits);
    x
}

/// Skilling: in-place conversion from axes to transpose form.
fn axes_to_transpose(x: &mut [u64], bits: u32) {
    let n = x.len();
    if bits == 0 {
        return;
    }
    let m = 1u64 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Skilling: in-place conversion from transpose form to axes.
fn transpose_to_axes(x: &mut [u64], bits: u32) {
    let n = x.len();
    if bits == 0 {
        return;
    }
    let m = 1u64 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u64;
    while q != m << 1 {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Packs the transpose form into a single index: the index's bits, from
/// most significant down, are bit `b-1` of `x[0]`, bit `b-1` of `x[1]`,
/// …, bit `0` of `x[n-1]`.
fn interleave_transpose(x: &[u64], bits: u32) -> u128 {
    let n = x.len();
    let mut out = 0u128;
    for b in (0..bits).rev() {
        for xi in x.iter().take(n) {
            out = (out << 1) | u128::from((xi >> b) & 1);
        }
    }
    out
}

/// Inverse of [`interleave_transpose`].
fn deinterleave_transpose(index: u128, n: usize, bits: u32) -> Vec<u64> {
    let mut x = vec![0u64; n];
    let total = n as u32 * bits;
    for pos in 0..total {
        // Bit `total-1-pos` of the index is bit `bits-1-(pos/n)` of x[pos%n].
        let bit = (index >> (total - 1 - pos)) & 1;
        let dim = pos as usize % n;
        let level = bits - 1 - pos / n as u32;
        x[dim] |= (bit as u64) << level;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hilbert_index_2d;

    #[test]
    fn round_trip_2d_exhaustive() {
        let bits = 4;
        for x in 0..16u64 {
            for y in 0..16u64 {
                let d = hilbert_index_nd(&[x, y], bits);
                assert_eq!(hilbert_point_nd(d, 2, bits), vec![x, y]);
            }
        }
    }

    #[test]
    fn round_trip_3d_exhaustive() {
        let bits = 3;
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    let d = hilbert_index_nd(&[x, y, z], bits);
                    assert_eq!(hilbert_point_nd(d, 3, bits), vec![x, y, z]);
                }
            }
        }
    }

    #[test]
    fn is_a_bijection_3d() {
        let bits = 2;
        let mut seen = vec![false; 1 << (3 * bits)];
        for x in 0..4u64 {
            for y in 0..4u64 {
                for z in 0..4u64 {
                    let d = hilbert_index_nd(&[x, y, z], bits) as usize;
                    assert!(!seen[d]);
                    seen[d] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_neighbors_3d() {
        // The Hilbert adjacency property must hold in any dimension.
        let bits = 3;
        let n = 1u128 << (3 * bits);
        let mut prev = hilbert_point_nd(0, 3, bits);
        for d in 1..n {
            let cur = hilbert_point_nd(d, 3, bits);
            let manhattan: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert_eq!(manhattan, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn consecutive_indices_are_neighbors_4d() {
        let bits = 2;
        let n = 1u128 << (4 * bits);
        let mut prev = hilbert_point_nd(0, 4, bits);
        for d in 1..n {
            let cur = hilbert_point_nd(d, 4, bits);
            let manhattan: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert_eq!(manhattan, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn one_dimension_is_identity() {
        for v in 0..64u64 {
            assert_eq!(hilbert_index_nd(&[v], 6), u128::from(v));
            assert_eq!(hilbert_point_nd(u128::from(v), 1, 6), vec![v]);
        }
    }

    #[test]
    fn nd_matches_2d_locality_statistics() {
        // The 2-D fast path and the generic path may differ by a curve
        // symmetry, but both must be true Hilbert curves: bijective with
        // unit steps. Compare total per-step displacement (must both be
        // exactly 1 per step — checked elsewhere) and spot-check that both
        // enumerate the full grid.
        let bits = 3;
        let side = 1u64 << bits;
        let mut seen_fast = vec![false; (side * side) as usize];
        let mut seen_nd = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                seen_fast[hilbert_index_2d(x, y, bits) as usize] = true;
                seen_nd[hilbert_index_nd(&[x, y], bits) as usize] = true;
            }
        }
        assert!(seen_fast.iter().all(|&s| s));
        assert!(seen_nd.iter().all(|&s| s));
    }

    #[test]
    fn zero_bits_is_trivial() {
        assert_eq!(hilbert_index_nd(&[0, 0, 0], 0), 0);
        assert_eq!(hilbert_point_nd(0, 3, 0), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn rejects_oversized_coordinate() {
        let _ = hilbert_index_nd(&[8, 0], 3);
    }
}
