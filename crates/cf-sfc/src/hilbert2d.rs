//! Fast 2-D Hilbert curve conversions.
//!
//! Classic iterative quadrant-rotation formulation. The curve of order
//! `k` visits every cell of the `2^k × 2^k` grid exactly once, and
//! consecutive indices are always 4-neighbors — the "no jumps" property
//! the paper relies on when forming subfields from consecutive cells.

use crate::MAX_ORDER_2D;

/// Rotates/flips quadrant coordinates so the child quadrant's local frame
/// matches the canonical curve orientation.
#[inline]
fn rot(side: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = side - 1 - *x;
            *y = side - 1 - *y;
        }
        std::mem::swap(x, y);
    }
}

/// Hilbert index of grid cell `(x, y)` on the order-`order` curve.
///
/// `order` is the number of bits per coordinate; the grid side is
/// `2^order`. Coordinates must be `< 2^order`.
///
/// # Panics
///
/// Panics if `order > MAX_ORDER_2D` or a coordinate is out of range.
pub fn hilbert_index_2d(mut x: u64, mut y: u64, order: u32) -> u64 {
    assert!(
        order <= MAX_ORDER_2D,
        "order {order} exceeds {MAX_ORDER_2D}"
    );
    let side = 1u64 << order;
    assert!(x < side && y < side, "({x}, {y}) outside 2^{order} grid");
    let mut d = 0u64;
    let mut s = side >> 1;
    while s > 0 {
        let rx = u64::from(x & s > 0);
        let ry = u64::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        rot(side, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Inverse of [`hilbert_index_2d`]: the grid cell visited at position `d`.
///
/// # Panics
///
/// Panics if `order > MAX_ORDER_2D` or `d >= 4^order`.
pub fn hilbert_point_2d(d: u64, order: u32) -> (u64, u64) {
    assert!(
        order <= MAX_ORDER_2D,
        "order {order} exceeds {MAX_ORDER_2D}"
    );
    let side = 1u64 << order;
    assert!(
        d < side.saturating_mul(side),
        "index {d} outside order-{order} curve"
    );
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < side {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rot(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s <<= 1;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_figure_4_order_1() {
        // Fig. 4 (H1): the order-1 curve visits (0,0), (0,1), (1,1), (1,0)
        // labelled 0..3 (x = column, y = row from bottom-left origin).
        assert_eq!(hilbert_index_2d(0, 0, 1), 0);
        assert_eq!(hilbert_index_2d(0, 1, 1), 1);
        assert_eq!(hilbert_index_2d(1, 1, 1), 2);
        assert_eq!(hilbert_index_2d(1, 0, 1), 3);
    }

    #[test]
    fn round_trip_exhaustive_small_orders() {
        for order in 0..=5 {
            let side = 1u64 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = hilbert_index_2d(x, y, order);
                    assert_eq!(hilbert_point_2d(d, order), (x, y));
                }
            }
        }
    }

    #[test]
    fn is_a_bijection() {
        let order = 4;
        let side = 1u64 << order;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = hilbert_index_2d(x, y, order) as usize;
                assert!(!seen[d], "index {d} visited twice");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_grid_neighbors() {
        // The "no jumps" property quoted in §3.1.2.
        for order in 1..=6 {
            let n = 1u64 << (2 * order);
            let (mut px, mut py) = hilbert_point_2d(0, order);
            for d in 1..n {
                let (x, y) = hilbert_point_2d(d, order);
                let manhattan = px.abs_diff(x) + py.abs_diff(y);
                assert_eq!(manhattan, 1, "jump at d={d} order={order}");
                (px, py) = (x, y);
            }
        }
    }

    #[test]
    fn high_order_round_trip_spot_checks() {
        let order = MAX_ORDER_2D;
        for &(x, y) in &[
            (0u64, 0u64),
            ((1 << 31) - 1, (1 << 31) - 1),
            (123_456_789, 987_654_321),
            (1, (1 << 31) - 1),
        ] {
            let d = hilbert_index_2d(x, y, order);
            assert_eq!(hilbert_point_2d(d, order), (x, y));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_coordinate() {
        let _ = hilbert_index_2d(4, 0, 2);
    }

    #[test]
    fn order_zero_is_single_cell() {
        assert_eq!(hilbert_index_2d(0, 0, 0), 0);
        assert_eq!(hilbert_point_2d(0, 0), (0, 0));
    }
}
