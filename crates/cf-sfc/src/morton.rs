//! Z-order (Morton / Peano / bit-interleaving) curve.
//!
//! One of the three space-filling curves the paper considers (§3.1.2)
//! before settling on Hilbert. Included for the curve-choice ablation.

use crate::MAX_ORDER_2D;

/// Spreads the low 32 bits of `v` so bit `i` lands at position `2i`.
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut v = v & 0xFFFF_FFFF;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`part1by1`]: compacts every other bit.
#[inline]
fn compact1by1(v: u64) -> u64 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v
}

/// Morton (Z-order) index of grid cell `(x, y)` on an order-`order` grid.
///
/// # Panics
///
/// Panics if `order > MAX_ORDER_2D` or a coordinate is out of range.
pub fn morton_index_2d(x: u64, y: u64, order: u32) -> u64 {
    assert!(
        order <= MAX_ORDER_2D,
        "order {order} exceeds {MAX_ORDER_2D}"
    );
    let side = 1u64 << order;
    assert!(x < side && y < side, "({x}, {y}) outside 2^{order} grid");
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse of [`morton_index_2d`].
pub fn morton_point_2d(d: u64, order: u32) -> (u64, u64) {
    assert!(
        order <= MAX_ORDER_2D,
        "order {order} exceeds {MAX_ORDER_2D}"
    );
    (compact1by1(d), compact1by1(d >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Z-order on a 2x2 grid: (0,0)=0, (1,0)=1, (0,1)=2, (1,1)=3.
        assert_eq!(morton_index_2d(0, 0, 1), 0);
        assert_eq!(morton_index_2d(1, 0, 1), 1);
        assert_eq!(morton_index_2d(0, 1, 1), 2);
        assert_eq!(morton_index_2d(1, 1, 1), 3);
    }

    #[test]
    fn round_trip_exhaustive() {
        for order in 0..=5 {
            let side = 1u64 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = morton_index_2d(x, y, order);
                    assert_eq!(morton_point_2d(d, order), (x, y));
                }
            }
        }
    }

    #[test]
    fn is_a_bijection() {
        let order = 4;
        let side = 1u64 << order;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = morton_index_2d(x, y, order) as usize;
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn z_order_has_jumps() {
        // Unlike Hilbert, Z-order has non-unit steps — the reason the
        // paper rejects it. Verify a jump exists on the 4x4 grid.
        let order = 2;
        let mut max_step = 0;
        let (mut px, mut py) = morton_point_2d(0, order);
        for d in 1..16 {
            let (x, y) = morton_point_2d(d, order);
            max_step = max_step.max(px.abs_diff(x) + py.abs_diff(y));
            (px, py) = (x, y);
        }
        assert!(max_step > 1, "expected at least one jump, got {max_step}");
    }

    #[test]
    fn high_order_round_trip() {
        let order = 31;
        for &(x, y) in &[(0u64, 0u64), ((1 << 31) - 1, 12345), (999_999_999, 1)] {
            let d = morton_index_2d(x, y, order);
            assert_eq!(morton_point_2d(d, order), (x, y));
        }
    }
}
