//! Space-filling curves and clustering metrics.
//!
//! The I-Hilbert method (paper §3.1.2) linearizes the cells of a field in
//! order of the Hilbert value of their centers: "a space filling curve
//! visits all the points in a k-dimensional grid exactly once and never
//! crosses itself". The paper chooses the Hilbert curve because it
//! "achieves the best clustering" among Z-order (Peano / bit-interleaving),
//! Gray-code, and Hilbert orderings (citing Faloutsos & Roseman 1989 and
//! Jagadish 1990).
//!
//! This crate provides:
//!
//! * [`hilbert_index_2d`] / [`hilbert_point_2d`] — fast 2-D Hilbert
//!   index ↔ coordinate conversion (the hot path of subfield building);
//! * [`hilbert_index_nd`] / [`hilbert_point_nd`] — arbitrary-dimension
//!   Hilbert transform (Skilling's algorithm; Bially 1969 is the paper's
//!   citation for higher dimensionalities);
//! * [`morton_index_2d`] — the Z-order curve;
//! * [`gray_index_2d`] — the Gray-code curve;
//! * [`Curve`] — an enum unifying the orderings (plus row-major scan) so
//!   the curve choice can be ablated;
//! * [`clustering`] — the run-count clustering metric that justifies the
//!   Hilbert choice experimentally.

//!
//! # Example
//!
//! ```
//! use cf_sfc::{hilbert_index_2d, hilbert_point_2d, Curve};
//!
//! // Position of grid cell (3, 5) on the order-4 (16x16) Hilbert curve…
//! let d = hilbert_index_2d(3, 5, 4);
//! // …and back.
//! assert_eq!(hilbert_point_2d(d, 4), (3, 5));
//!
//! // Consecutive curve positions are always grid neighbours.
//! let (x0, y0) = hilbert_point_2d(d, 4);
//! let (x1, y1) = hilbert_point_2d(d + 1, 4);
//! assert_eq!(x0.abs_diff(x1) + y0.abs_diff(y1), 1);
//!
//! // The unified interface used by the ablation benches.
//! assert_eq!(Curve::Hilbert.index(3, 5, 4), d);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod gray;
mod hilbert2d;
mod hilbertnd;
mod morton;

pub mod clustering;

pub use curve::Curve;
pub use gray::{gray_decode, gray_encode, gray_index_2d, gray_point_2d};
pub use hilbert2d::{hilbert_index_2d, hilbert_point_2d};
pub use hilbertnd::{hilbert_index_nd, hilbert_point_nd};
pub use morton::{morton_index_2d, morton_point_2d};

/// Maximum supported curve order (bits per coordinate) for 2-D curves.
///
/// With 31 bits per coordinate a 2-D index fits comfortably in `u64`.
pub const MAX_ORDER_2D: u32 = 31;
