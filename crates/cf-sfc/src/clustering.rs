//! Clustering quality metrics for space-filling curves.
//!
//! The paper picks the Hilbert curve because "it was shown experimentally
//! that the Hilbert curve achieves the best clustering among the three
//! above methods" (§3.1.2, citing Faloutsos & Roseman 1989; Jagadish
//! 1990). The standard metric is the number of *runs* — maximal
//! contiguous segments of the linear order — needed to cover a query
//! region: fewer runs means fewer random seeks when the linearized cells
//! are stored sequentially on disk.
//!
//! The same intuition drives subfield quality: a curve with good
//! clustering maps spatially-coherent (and hence, by field continuity,
//! value-coherent) cell groups to contiguous index ranges.

use crate::Curve;

/// Number of maximal contiguous runs the curve needs to cover the grid
/// rectangle `[x0, x1] × [y0, y1]` (inclusive bounds).
///
/// # Panics
///
/// Panics if the rectangle is inverted or outside the `2^order` grid.
pub fn runs_for_rect(curve: Curve, order: u32, x0: u64, y0: u64, x1: u64, y1: u64) -> usize {
    assert!(x0 <= x1 && y0 <= y1, "inverted rectangle");
    let side = 1u64 << order;
    assert!(x1 < side && y1 < side, "rectangle outside grid");
    let mut indices: Vec<u64> = (y0..=y1)
        .flat_map(|y| (x0..=x1).map(move |x| curve.index(x, y, order)))
        .collect();
    indices.sort_unstable();
    runs_in_sorted(&indices)
}

/// Number of maximal runs of consecutive integers in a sorted slice.
pub fn runs_in_sorted(sorted: &[u64]) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[1] != w[0] + 1).count()
}

/// Average number of runs over all `q × q` query rectangles on the grid.
///
/// This is the exhaustive version of the clustering experiment in the
/// papers the EDBT 2002 authors cite; it is exact but only feasible for
/// small orders (the bench uses sampled rectangles for larger grids).
pub fn average_runs_exhaustive(curve: Curve, order: u32, q: u64) -> f64 {
    let side = 1u64 << order;
    assert!(q >= 1 && q <= side, "query side out of range");
    let positions = side - q + 1;
    let mut total = 0usize;
    for y0 in 0..positions {
        for x0 in 0..positions {
            total += runs_for_rect(curve, order, x0, y0, x0 + q - 1, y0 + q - 1);
        }
    }
    total as f64 / (positions * positions) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_sorted_counts_segments() {
        assert_eq!(runs_in_sorted(&[]), 0);
        assert_eq!(runs_in_sorted(&[5]), 1);
        assert_eq!(runs_in_sorted(&[1, 2, 3]), 1);
        assert_eq!(runs_in_sorted(&[1, 2, 4, 5, 9]), 3);
    }

    #[test]
    fn full_grid_is_one_run_for_every_curve() {
        for curve in Curve::ALL {
            let side = (1u64 << 3) - 1;
            assert_eq!(runs_for_rect(curve, 3, 0, 0, side, side), 1);
        }
    }

    #[test]
    fn single_cell_is_one_run() {
        for curve in Curve::ALL {
            assert_eq!(runs_for_rect(curve, 4, 7, 3, 7, 3), 1);
        }
    }

    #[test]
    fn hilbert_clusters_best_on_average() {
        // Reproduces the comparison that justified the paper's curve
        // choice: over all 2x2..4x4 queries on a 16x16 grid, Hilbert needs
        // the fewest runs.
        let order = 4;
        for q in [2, 3, 4] {
            let hilbert = average_runs_exhaustive(Curve::Hilbert, order, q);
            let z = average_runs_exhaustive(Curve::ZOrder, order, q);
            let gray = average_runs_exhaustive(Curve::GrayCode, order, q);
            let row = average_runs_exhaustive(Curve::RowMajor, order, q);
            assert!(hilbert <= z, "q={q}: hilbert {hilbert} vs z {z}");
            assert!(hilbert <= gray, "q={q}: hilbert {hilbert} vs gray {gray}");
            assert!(hilbert < row, "q={q}: hilbert {hilbert} vs row {row}");
        }
    }

    #[test]
    fn row_major_runs_equal_row_count() {
        // A row-major scan needs one run per row of the rectangle
        // (unless the rectangle spans entire rows).
        assert_eq!(runs_for_rect(Curve::RowMajor, 4, 2, 3, 5, 7), 5);
        // Full-width rectangles collapse to a single run.
        assert_eq!(runs_for_rect(Curve::RowMajor, 2, 0, 1, 3, 2), 1);
    }
}
