//! Unified interface over the candidate cell orderings.

use crate::{
    gray_index_2d, gray_point_2d, hilbert_index_2d, hilbert_point_2d, morton_index_2d,
    morton_point_2d, MAX_ORDER_2D,
};

/// A linear ordering of the cells of a `2^order × 2^order` grid.
///
/// [`Curve::Hilbert`] is what the paper's I-Hilbert method uses; the other
/// variants exist so the choice can be ablated (the paper justifies
/// Hilbert by citing clustering studies — our `clustering` module and the
/// `ablation_curve` bench reproduce that comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Curve {
    /// Hilbert curve — best clustering, no jumps (the paper's choice).
    Hilbert,
    /// Z-order / Morton / bit-interleaving (the paper's "Peano curve").
    ZOrder,
    /// Gray-code curve (Faloutsos 1989).
    GrayCode,
    /// Plain row-major scan — the "no clustering effort" strawman; this is
    /// also the physical order a LinearScan file would naturally use.
    RowMajor,
}

impl Curve {
    /// All curve variants, for ablation sweeps.
    pub const ALL: [Curve; 4] = [
        Curve::Hilbert,
        Curve::ZOrder,
        Curve::GrayCode,
        Curve::RowMajor,
    ];

    /// Position of grid cell `(x, y)` along the curve.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER_2D` or a coordinate is `>= 2^order`.
    pub fn index(self, x: u64, y: u64, order: u32) -> u64 {
        match self {
            Curve::Hilbert => hilbert_index_2d(x, y, order),
            Curve::ZOrder => morton_index_2d(x, y, order),
            Curve::GrayCode => gray_index_2d(x, y, order),
            Curve::RowMajor => {
                assert!(order <= MAX_ORDER_2D);
                let side = 1u64 << order;
                assert!(x < side && y < side, "({x}, {y}) outside 2^{order} grid");
                y * side + x
            }
        }
    }

    /// Curve positions of a batch of grid points, appended to `out`.
    ///
    /// Equivalent to calling [`Curve::index`] per point, but the variant
    /// dispatch is hoisted out of the loop — the shape the parallel
    /// index build's per-chunk key extraction wants.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Curve::index`].
    pub fn index_batch(self, points: &[(u64, u64)], order: u32, out: &mut Vec<u64>) {
        out.reserve(points.len());
        match self {
            Curve::Hilbert => {
                out.extend(points.iter().map(|&(x, y)| hilbert_index_2d(x, y, order)))
            }
            Curve::ZOrder => out.extend(points.iter().map(|&(x, y)| morton_index_2d(x, y, order))),
            Curve::GrayCode => out.extend(points.iter().map(|&(x, y)| gray_index_2d(x, y, order))),
            Curve::RowMajor => {
                assert!(order <= MAX_ORDER_2D);
                let side = 1u64 << order;
                out.extend(points.iter().map(|&(x, y)| {
                    assert!(x < side && y < side, "({x}, {y}) outside 2^{order} grid");
                    y * side + x
                }));
            }
        }
    }

    /// Grid cell at position `d` along the curve.
    pub fn point(self, d: u64, order: u32) -> (u64, u64) {
        match self {
            Curve::Hilbert => hilbert_point_2d(d, order),
            Curve::ZOrder => morton_point_2d(d, order),
            Curve::GrayCode => gray_point_2d(d, order),
            Curve::RowMajor => {
                let side = 1u64 << order;
                (d % side, d / side)
            }
        }
    }

    /// Short human-readable name (used in bench output).
    pub fn name(self) -> &'static str {
        match self {
            Curve::Hilbert => "hilbert",
            Curve::ZOrder => "z-order",
            Curve::GrayCode => "gray",
            Curve::RowMajor => "row-major",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_curves_are_bijections() {
        let order = 3;
        let side = 1u64 << order;
        for curve in Curve::ALL {
            let mut seen = vec![false; (side * side) as usize];
            for x in 0..side {
                for y in 0..side {
                    let d = curve.index(x, y, order) as usize;
                    assert!(!seen[d], "{} revisits {d}", curve.name());
                    seen[d] = true;
                    assert_eq!(curve.point(d as u64, order), (x, y));
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn row_major_layout() {
        assert_eq!(Curve::RowMajor.index(0, 0, 2), 0);
        assert_eq!(Curve::RowMajor.index(3, 0, 2), 3);
        assert_eq!(Curve::RowMajor.index(0, 1, 2), 4);
        assert_eq!(Curve::RowMajor.point(7, 2), (3, 1));
    }

    #[test]
    fn index_batch_matches_per_point_index() {
        let order = 4;
        let side = 1u64 << order;
        let points: Vec<(u64, u64)> = (0..side)
            .flat_map(|x| (0..side).map(move |y| (x, y)))
            .collect();
        for curve in Curve::ALL {
            let mut batch = vec![u64::MAX; 3]; // appended after a prefix
            curve.index_batch(&points, order, &mut batch);
            assert_eq!(batch[..3], [u64::MAX; 3]);
            let single: Vec<u64> = points
                .iter()
                .map(|&(x, y)| curve.index(x, y, order))
                .collect();
            assert_eq!(batch[3..], single, "{}", curve.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Curve::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Curve::ALL.len());
    }
}
