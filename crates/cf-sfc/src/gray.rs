//! Gray-code curve (Faloutsos 1989).
//!
//! The third curve the paper considers in §3.1.2: interleave the
//! coordinate bits (as in Z-order) and then rank the result in Gray-code
//! order, i.e. the curve position is the *inverse Gray code* of the
//! Morton code. Successive positions then differ in exactly one bit of
//! the interleaved representation.

use crate::{morton_index_2d, morton_point_2d, MAX_ORDER_2D};

/// Gray code of `v`: adjacent integers map to words differing in one bit.
#[inline]
pub fn gray_encode(v: u64) -> u64 {
    v ^ (v >> 1)
}

/// Inverse of [`gray_encode`].
#[inline]
pub fn gray_decode(mut g: u64) -> u64 {
    let mut v = g;
    while g > 0 {
        g >>= 1;
        v ^= g;
    }
    v
}

/// Gray-code-curve index of grid cell `(x, y)`.
///
/// The cell's Morton code is interpreted as a Gray-code word; its rank in
/// Gray-code order is the curve position.
///
/// # Panics
///
/// Panics if `order > MAX_ORDER_2D` or a coordinate is out of range.
pub fn gray_index_2d(x: u64, y: u64, order: u32) -> u64 {
    gray_decode(morton_index_2d(x, y, order))
}

/// Inverse of [`gray_index_2d`].
pub fn gray_point_2d(d: u64, order: u32) -> (u64, u64) {
    assert!(
        order <= MAX_ORDER_2D,
        "order {order} exceeds {MAX_ORDER_2D}"
    );
    morton_point_2d(gray_encode(d), order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_round_trip() {
        for v in 0..1024u64 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
        assert_eq!(gray_decode(gray_encode(u64::MAX)), u64::MAX);
    }

    #[test]
    fn gray_neighbors_differ_in_one_bit() {
        for v in 0..1023u64 {
            let diff = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(diff.count_ones(), 1, "at v={v}");
        }
    }

    #[test]
    fn curve_round_trip_exhaustive() {
        for order in 0..=5 {
            let side = 1u64 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = gray_index_2d(x, y, order);
                    assert_eq!(gray_point_2d(d, order), (x, y));
                }
            }
        }
    }

    #[test]
    fn is_a_bijection() {
        let order = 4;
        let side = 1u64 << order;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = gray_index_2d(x, y, order) as usize;
                assert!(!seen[d]);
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn successive_cells_differ_in_one_interleaved_bit() {
        let order = 3;
        let n = 1u64 << (2 * order);
        for d in 0..n - 1 {
            let (x0, y0) = gray_point_2d(d, order);
            let (x1, y1) = gray_point_2d(d + 1, order);
            let m0 = morton_index_2d(x0, y0, order);
            let m1 = morton_index_2d(x1, y1, order);
            assert_eq!((m0 ^ m1).count_ones(), 1, "at d={d}");
        }
    }
}
