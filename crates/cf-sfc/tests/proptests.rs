//! Property-based tests for the space-filling curves.

use cf_sfc::{hilbert_index_2d, hilbert_index_nd, hilbert_point_2d, hilbert_point_nd, Curve};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hilbert_2d_round_trip(order in 1u32..16, seed in any::<u64>()) {
        let side = 1u64 << order;
        let x = seed % side;
        let y = (seed >> 32) % side;
        let d = hilbert_index_2d(x, y, order);
        prop_assert!(d < side * side);
        prop_assert_eq!(hilbert_point_2d(d, order), (x, y));
    }

    #[test]
    fn all_curves_round_trip(order in 1u32..12, seed in any::<u64>()) {
        let side = 1u64 << order;
        let x = seed % side;
        let y = (seed >> 32) % side;
        for curve in Curve::ALL {
            let d = curve.index(x, y, order);
            prop_assert!(d < side * side);
            prop_assert_eq!(curve.point(d, order), (x, y));
        }
    }

    #[test]
    fn hilbert_nd_round_trip(
        bits in 1u32..10,
        n in 1usize..5,
        seed in any::<u128>()
    ) {
        let mask = (1u64 << bits) - 1;
        let coords: Vec<u64> = (0..n)
            .map(|i| ((seed >> (i * 16)) as u64) & mask)
            .collect();
        let d = hilbert_index_nd(&coords, bits);
        prop_assert_eq!(hilbert_point_nd(d, n, bits), coords);
    }

    #[test]
    fn hilbert_unit_steps(order in 1u32..8, start in any::<u64>()) {
        // Pick a random window of 64 consecutive curve positions and
        // verify every step is a unit grid move.
        let n = 1u64 << (2 * order);
        let start = start % n.saturating_sub(64).max(1);
        let mut prev = hilbert_point_2d(start, order);
        for d in start + 1..(start + 64).min(n) {
            let cur = hilbert_point_2d(d, order);
            prop_assert_eq!(prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1), 1);
            prev = cur;
        }
    }

    #[test]
    fn hilbert_nd_unit_steps(bits in 1u32..6, n in 2usize..4, start in any::<u64>()) {
        let total = 1u128 << (n as u32 * bits);
        let window = 32u128;
        let start = u128::from(start) % total.saturating_sub(window).max(1);
        let mut prev = hilbert_point_nd(start, n, bits);
        for d in start + 1..(start + window).min(total) {
            let cur = hilbert_point_nd(d, n, bits);
            let manhattan: u64 = prev.iter().zip(&cur).map(|(&a, &b)| a.abs_diff(b)).sum();
            prop_assert_eq!(manhattan, 1);
            prev = cur;
        }
    }
}
