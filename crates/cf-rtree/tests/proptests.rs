//! Property-based tests: the R\*-tree must agree with a linear scan
//! under any sequence of inserts and removes.

use cf_geom::Aabb;
use cf_rtree::{bulk_load_str, FrozenTree, PagedRTree, RStarTree, RTreeConfig};
use cf_storage::StorageEngine;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { lo: f64, width: f64 },
    Remove { victim: usize },
    Query { lo: f64, width: f64 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..100.0f64, 0.0..10.0f64).prop_map(|(lo, width)| Op::Insert { lo, width }),
        1 => any::<usize>().prop_map(|victim| Op::Remove { victim }),
        2 => (-5.0..105.0f64, 0.0..20.0f64).prop_map(|(lo, width)| Op::Query { lo, width }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_agrees_with_linear_scan(ops in prop::collection::vec(op(), 1..120), fanout in 4usize..20) {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(fanout));
        let mut model: Vec<(Aabb<1>, u64)> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert { lo, width } => {
                    let b = Aabb::new([lo], [lo + width]);
                    tree.insert(b, next_id);
                    model.push((b, next_id));
                    next_id += 1;
                }
                Op::Remove { victim } => {
                    if !model.is_empty() {
                        let (b, id) = model.swap_remove(victim % model.len());
                        prop_assert!(tree.remove(&b, id));
                    }
                }
                Op::Query { lo, width } => {
                    let q = Aabb::new([lo], [lo + width]);
                    let mut got = tree.search_collect(&q);
                    got.sort_unstable();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|(b, _)| b.intersects(&q))
                        .map(|&(_, d)| d)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn bulk_load_equals_dynamic_results(
        items in prop::collection::vec((0.0..100.0f64, 0.0..5.0f64), 1..300),
        queries in prop::collection::vec((0.0..100.0f64, 0.0..10.0f64), 1..10),
    ) {
        let data: Vec<(Aabb<1>, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &(lo, w))| (Aabb::new([lo], [lo + w]), i as u64))
            .collect();
        let bulk = bulk_load_str(data.clone(), RTreeConfig::new(8));
        bulk.check_invariants();
        let mut dynamic: RStarTree<1> = RStarTree::new(RTreeConfig::new(8));
        for &(b, d) in &data {
            dynamic.insert(b, d);
        }
        for &(qlo, qw) in &queries {
            let q = Aabb::new([qlo], [qlo + qw]);
            let mut a = bulk.search_collect(&q);
            let mut b = dynamic.search_collect(&q);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn frozen_tree_matches_paged_results_and_visits(
        items in prop::collection::vec((0.0..100.0f64, 0.0..5.0f64), 0..250),
        queries in prop::collection::vec((-20.0..120.0f64, 0.0..15.0f64), 1..8),
        fanout in 4usize..16,
    ) {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(fanout));
        for (i, &(lo, w)) in items.iter().enumerate() {
            tree.insert(Aabb::new([lo], [lo + w]), i as u64);
        }
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        let frozen = paged.freeze(&engine).expect("freeze");
        let from_dynamic = FrozenTree::from_tree(&tree);

        // The random queries plus the edge cases: a zero-width point
        // probe and a band entirely outside the data range (empty
        // answer) — both must still agree, node-for-node.
        let mut qs: Vec<Aabb<1>> = queries
            .iter()
            .map(|&(lo, w)| Aabb::new([lo], [lo + w]))
            .collect();
        qs.push(Aabb::new([50.0], [50.0]));
        qs.push(Aabb::new([-1e6], [-1e6 + 1.0]));

        let (mut a, mut b, mut c, mut d) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for q in &qs {
            let sa = paged.search_into(&engine, q, &mut a).expect("search");
            let sb = frozen.search_into(q, &mut b);
            let sc = from_dynamic.search_into(q, &mut c);
            tree.search_into(q, &mut d);
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            d.sort_unstable();
            prop_assert_eq!(&a, &b, "frozen-from-paged results");
            prop_assert_eq!(&a, &c, "frozen-from-dynamic results");
            prop_assert_eq!(&a, &d, "dynamic results");
            // The frozen plane's visited-node count must equal the page
            // reads the paged filter step would have done.
            prop_assert_eq!(sa.nodes_visited, sb.nodes_visited);
            prop_assert_eq!(sb.nodes_visited, sc.nodes_visited);
            prop_assert_eq!(sb.results, a.len() as u64);
        }
    }

    #[test]
    fn paged_tree_round_trips(
        items in prop::collection::vec((0.0..100.0f64, 0.0..5.0f64), 1..200),
        queries in prop::collection::vec((0.0..100.0f64, 0.0..10.0f64), 1..8),
    ) {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(8));
        for (i, &(lo, w)) in items.iter().enumerate() {
            tree.insert(Aabb::new([lo], [lo + w]), i as u64);
        }
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        for &(qlo, qw) in &queries {
            let q = Aabb::new([qlo], [qlo + qw]);
            let mut a = paged.search_collect(&engine, &q).expect("search");
            let mut b = tree.search_collect(&q);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
