//! A frozen, cache-resident, read-optimized form of a built R\*-tree.
//!
//! The paged tree ([`crate::PagedRTree`]) is the faithful disk-resident
//! reproduction: every node is one 4 KiB page, every visit is a buffer
//! pool access. For a query plane serving heavy read traffic the index is
//! hot anyway, and what dominates is not page faults but pointer chasing
//! and per-entry decode cost. [`FrozenTree`] flattens a built tree into
//! contiguous level-by-level structure-of-arrays storage:
//!
//! * **SoA bounds** — `lo[]` and `hi[]` live in separate cache-aligned
//!   lane arrays (8 × f64 = one 64-byte cache line per lane), one pair
//!   per dimension, so the intersection scan streams bounds linearly
//!   instead of striding over interleaved `(lo, hi, child)` entries.
//! * **Implicit child offsets** — nodes are laid out in BFS order, so
//!   the children of a node are consecutive; each node stores only the
//!   id of its first child and the `j`-th entry's child is
//!   `first_child + j`. Leaf payloads sit in one contiguous `u64` array.
//! * **No per-node allocation** — the whole tree is six flat vectors;
//!   freezing never allocates per node, and searching allocates nothing.
//! * **Branchless chunked leaf scan** — entries are padded to full lanes
//!   with never-matching sentinel bounds (`lo = +∞, hi = −∞`), so the
//!   scan tests 8 entries per lane with pure arithmetic (compare, mask)
//!   and only branches on a non-zero 8-bit hit mask.
//!
//! A frozen search visits exactly the nodes the node-based traversals
//! visit (same parent-MBR pruning), so [`SearchStats::nodes_visited`]
//! equals the paged tree's page-read count for the same query — the
//! frozen plane keeps the paper's cost accounting while removing the
//! buffer-pool traffic.

use crate::node::ChildRef;
use crate::tree::{RStarTree, SearchStats};
use crate::PagedRTree;
use cf_geom::Aabb;
use cf_storage::{CfResult, Counter, PageId, StorageEngine};

/// Entries per bounds lane: 8 × f64 fills one 64-byte cache line.
const LANE: usize = 8;

/// A 64-byte-aligned lane of bounds, the unit of the chunked scan.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct Lane([f64; LANE]);

/// Sentinel lane that intersects nothing (padding slots).
const EMPTY_LANE_LO: Lane = Lane([f64::INFINITY; LANE]);
const EMPTY_LANE_HI: Lane = Lane([f64::NEG_INFINITY; LANE]);

/// A read-only R\*-tree flattened into level-by-level SoA arrays.
///
/// Build one with [`FrozenTree::from_tree`] (from the in-memory tree) or
/// [`FrozenTree::from_paged`] (reading a persisted tree's pages once);
/// both produce the same structure for the same logical tree.
#[derive(Debug, Clone)]
pub struct FrozenTree<const N: usize> {
    /// Per node: first slot (lane-aligned) in the bounds arrays.
    slot_base: Vec<u32>,
    /// Per node: number of real (non-padding) entries.
    entry_count: Vec<u32>,
    /// Per internal node: node id of the child of its first entry; the
    /// child of entry `j` is `first_child + j` (children are consecutive
    /// by construction). Unused (0) for leaves.
    first_child: Vec<u32>,
    /// Lower bounds, dimension-major: dimension `d` occupies lanes
    /// `[d * lanes_per_dim, (d + 1) * lanes_per_dim)`.
    lo: Vec<Lane>,
    /// Upper bounds, same layout as `lo`.
    hi: Vec<Lane>,
    /// Leaf payloads, indexed by `slot - leaf_slot_base`.
    payload: Vec<u64>,
    /// First slot of the first leaf node (leaves are the BFS suffix).
    leaf_slot_base: u32,
    /// First node id of the leaf level.
    first_leaf_node: u32,
    /// Lanes per dimension (`total_slots / LANE`).
    lanes_per_dim: usize,
    /// Number of data entries.
    len: usize,
    /// Tree height (1 = single leaf root).
    height: u32,
    /// `rtree_node_visits_total{plane="frozen"}` in the source engine's
    /// registry; `None` for trees frozen from memory
    /// ([`FrozenTree::from_tree`]), which have no engine to report to.
    nodes_counter: Option<Counter>,
}

/// Transient decoded node used while freezing.
struct FlatNode<const N: usize> {
    entries: Vec<(Aabb<N>, u64)>,
    is_leaf: bool,
}

impl<const N: usize> FrozenTree<N> {
    /// Freezes an in-memory [`RStarTree`].
    pub fn from_tree(tree: &RStarTree<N>) -> Self {
        Self::build_bfs(
            tree.len(),
            tree.height(),
            tree.root_index(),
            |idx: &usize| {
                let node = tree.node(*idx);
                Ok(FlatNode {
                    entries: node
                        .entries
                        .iter()
                        .map(|e| {
                            let child = match e.child {
                                ChildRef::Data(d) => d,
                                ChildRef::Node(n) => n as u64,
                            };
                            (e.mbr, child)
                        })
                        .collect(),
                    is_leaf: node.is_leaf(),
                })
            },
            |child| child as usize,
        )
        .expect("in-memory freeze performs no I/O")
    }

    /// Freezes a persisted [`PagedRTree`], reading each node page once
    /// through the buffer pool (the one-time cost of entering the frozen
    /// plane; subsequent searches touch no pages at all).
    pub fn from_paged(engine: &StorageEngine, paged: &PagedRTree<N>) -> CfResult<Self> {
        let mut tree = Self::build_bfs(
            paged.len(),
            paged.height(),
            paged.root_page_id(),
            |page: &PageId| {
                let mut entries = Vec::new();
                let mut leaf = false;
                paged.for_each_entry(engine, *page, |mbr, child, is_leaf| {
                    leaf = is_leaf;
                    entries.push((*mbr, child));
                })?;
                // A childless page is a (possibly empty) leaf root.
                if entries.is_empty() {
                    leaf = true;
                }
                Ok(FlatNode {
                    entries,
                    is_leaf: leaf,
                })
            },
            PageId,
        )?;
        tree.nodes_counter = Some(
            engine
                .metrics()
                .counter_with("rtree_node_visits_total", &[("plane", "frozen")]),
        );
        Ok(tree)
    }

    /// Shared BFS flattening: `decode` materializes a node from its
    /// source id, `to_id` maps a stored child reference back to one.
    fn build_bfs<Id, D, C>(len: usize, height: u32, root: Id, decode: D, to_id: C) -> CfResult<Self>
    where
        D: Fn(&Id) -> CfResult<FlatNode<N>>,
        C: Fn(u64) -> Id,
    {
        // Pass 1: BFS to fix node ids and slot bases. Children of each
        // node get consecutive ids, which is what makes child offsets
        // implicit.
        let mut queue: std::collections::VecDeque<Id> = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut nodes: Vec<FlatNode<N>> = Vec::new();
        while let Some(id) = queue.pop_front() {
            let node = decode(&id)?;
            if !node.is_leaf {
                for &(_, child) in &node.entries {
                    queue.push_back(to_id(child));
                }
            }
            nodes.push(node);
        }

        let num_nodes = nodes.len();
        let mut slot_base = Vec::with_capacity(num_nodes);
        let mut entry_count = Vec::with_capacity(num_nodes);
        let mut first_child = vec![0u32; num_nodes];
        let mut first_leaf_node = num_nodes as u32;
        let mut leaf_slot_base = 0u32;
        let mut slots = 0u32;
        {
            let mut next_child = 1u32; // node 0 is the root
            for (i, node) in nodes.iter().enumerate() {
                slot_base.push(slots);
                entry_count.push(node.entries.len() as u32);
                if node.is_leaf {
                    if (i as u32) < first_leaf_node {
                        first_leaf_node = i as u32;
                        leaf_slot_base = slots;
                    }
                } else {
                    first_child[i] = next_child;
                    next_child += node.entries.len() as u32;
                }
                // Pad every node to whole lanes.
                slots += (node.entries.len() as u32).div_ceil(LANE as u32) * LANE as u32;
            }
        }

        // Pass 2: fill the SoA arrays.
        let lanes_per_dim = (slots as usize) / LANE;
        let mut lo = vec![EMPTY_LANE_LO; lanes_per_dim * N];
        let mut hi = vec![EMPTY_LANE_HI; lanes_per_dim * N];
        let mut payload = vec![0u64; slots as usize - leaf_slot_base as usize];
        for (i, node) in nodes.iter().enumerate() {
            let base = slot_base[i] as usize;
            for (j, &(mbr, child)) in node.entries.iter().enumerate() {
                let slot = base + j;
                for d in 0..N {
                    lo[d * lanes_per_dim + slot / LANE].0[slot % LANE] = mbr.lo[d];
                    hi[d * lanes_per_dim + slot / LANE].0[slot % LANE] = mbr.hi[d];
                }
                if node.is_leaf {
                    payload[slot - leaf_slot_base as usize] = child;
                }
            }
        }

        Ok(Self {
            slot_base,
            entry_count,
            first_child,
            lo,
            hi,
            payload,
            leaf_slot_base,
            first_leaf_node,
            lanes_per_dim,
            len,
            height,
            nodes_counter: None,
        })
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf root).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of flattened nodes.
    pub fn num_nodes(&self) -> usize {
        self.slot_base.len()
    }

    /// Resident size of the flattened arrays in bytes (the memory the
    /// frozen plane pins in cache, reported by the bench).
    pub fn resident_bytes(&self) -> usize {
        self.slot_base.len() * 4
            + self.entry_count.len() * 4
            + self.first_child.len() * 4
            + (self.lo.len() + self.hi.len()) * std::mem::size_of::<Lane>()
            + self.payload.len() * 8
    }

    /// Tests one slot against the query, branchlessly per dimension.
    #[inline]
    fn lane_mask(&self, lane: usize, query: &Aabb<N>) -> u8 {
        let mut mask = 0xFFu8;
        for d in 0..N {
            let ll = &self.lo[d * self.lanes_per_dim + lane].0;
            let hh = &self.hi[d * self.lanes_per_dim + lane].0;
            let mut md = 0u8;
            for j in 0..LANE {
                // Same closed-box test as `Aabb::intersects`, evaluated
                // arithmetically: padding sentinels (+∞, −∞) fail it for
                // every finite or infinite query, so padded slots never
                // set their bit.
                md |= u8::from(ll[j] <= query.hi[d] && query.lo[d] <= hh[j]) << j;
            }
            mask &= md;
        }
        mask
    }

    /// Invokes `f(data, mbr)` for every stored entry whose box intersects
    /// `query`.
    ///
    /// Visits exactly the nodes a node-based traversal visits, so
    /// `nodes_visited` equals the paged tree's page reads for the same
    /// query — but no storage engine is touched.
    pub fn search(&self, query: &Aabb<N>, mut f: impl FnMut(u64, &Aabb<N>)) -> SearchStats {
        let mut stats = SearchStats::default();
        // The BFS layout means sibling subtrees sit at ascending node
        // ids; a small stack of node ids is all the traversal state.
        let mut stack: Vec<u32> = vec![0];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            let node = node as usize;
            let base = self.slot_base[node] as usize;
            let count = self.entry_count[node] as usize;
            let is_leaf = node >= self.first_leaf_node as usize;
            let lanes = count.div_ceil(LANE);
            for l in 0..lanes {
                let lane = base / LANE + l;
                let mut mask = self.lane_mask(lane, query);
                while mask != 0 {
                    let j = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let slot = lane * LANE + j;
                    let entry = slot - base;
                    if is_leaf {
                        stats.results += 1;
                        let mbr = self.slot_mbr(slot);
                        f(self.payload[slot - self.leaf_slot_base as usize], &mbr);
                    } else {
                        stack.push(self.first_child[node] + entry as u32);
                    }
                }
            }
        }
        if let Some(counter) = &self.nodes_counter {
            counter.add(stats.nodes_visited);
        }
        stats
    }

    /// Collects the payloads of all entries intersecting `query`.
    pub fn search_collect(&self, query: &Aabb<N>) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len.min(64));
        self.search(query, |d, _| out.push(d));
        out
    }

    /// Reusable-buffer variant of [`FrozenTree::search_collect`]: clears
    /// `out` and fills it, keeping its capacity across calls.
    pub fn search_into(&self, query: &Aabb<N>, out: &mut Vec<u64>) -> SearchStats {
        out.clear();
        self.search(query, |d, _| out.push(d))
    }

    /// Reassembles the box stored at a slot.
    #[inline]
    fn slot_mbr(&self, slot: usize) -> Aabb<N> {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for d in 0..N {
            lo[d] = self.lo[d * self.lanes_per_dim + slot / LANE].0[slot % LANE];
            hi[d] = self.hi[d * self.lanes_per_dim + slot / LANE].0[slot % LANE];
        }
        Aabb { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;

    fn iv(lo: f64, hi: f64) -> Aabb<1> {
        Aabb::new([lo], [hi])
    }

    fn build_tree(n: u64, fanout: usize) -> RStarTree<1> {
        let mut tree = RStarTree::new(RTreeConfig::new(fanout));
        for i in 0..n {
            tree.insert(iv(i as f64 * 0.7, i as f64 * 0.7 + 2.0), i);
        }
        tree
    }

    #[test]
    fn frozen_matches_dynamic_search() {
        let tree = build_tree(800, 16);
        let frozen = FrozenTree::from_tree(&tree);
        assert_eq!(frozen.len(), 800);
        assert_eq!(frozen.height(), tree.height());
        assert_eq!(frozen.num_nodes(), tree.node_count());
        for qlo in [-5.0, 0.0, 113.3, 400.0, 559.9, 1000.0] {
            let q = iv(qlo, qlo + 9.0);
            let mut got = frozen.search_collect(&q);
            got.sort_unstable();
            let mut want = tree.search_collect(&q);
            want.sort_unstable();
            assert_eq!(got, want, "query {qlo}");
        }
    }

    #[test]
    fn frozen_matches_paged_visit_counts() {
        let tree = build_tree(2000, 32);
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        let frozen = FrozenTree::from_paged(&engine, &paged).expect("freeze");
        assert_eq!(frozen.num_nodes(), paged.num_pages());
        for qlo in [0.0, 250.0, 700.0, 1399.5] {
            let q = iv(qlo, qlo + 3.0);
            let ps = paged.search(&engine, &q, |_, _| {}).expect("search");
            let fs = frozen.search(&q, |_, _| {});
            assert_eq!(fs.nodes_visited, ps.nodes_visited, "query {qlo}");
            assert_eq!(fs.results, ps.results, "query {qlo}");
        }
    }

    #[test]
    fn frozen_reports_mbrs() {
        let mut tree: RStarTree<2> = RStarTree::new(RTreeConfig::new(8));
        for i in 0..200u64 {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert(Aabb::new([x, y], [x + 0.5, y + 0.5]), i);
        }
        let frozen = FrozenTree::from_tree(&tree);
        let q = Aabb::new([2.2, 3.2], [6.8, 7.8]);
        let mut got: Vec<(u64, Aabb<2>)> = Vec::new();
        frozen.search(&q, |d, mbr| got.push((d, *mbr)));
        let mut want: Vec<(u64, Aabb<2>)> = Vec::new();
        tree.search(&q, |d, mbr| want.push((d, *mbr)));
        got.sort_by_key(|&(d, _)| d);
        want.sort_by_key(|&(d, _)| d);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let tree: RStarTree<1> = RStarTree::default();
        let frozen = FrozenTree::from_tree(&tree);
        assert!(frozen.is_empty());
        assert_eq!(frozen.search_collect(&iv(0.0, 10.0)), Vec::<u64>::new());
        let stats = frozen.search(&iv(0.0, 1.0), |_, _| {});
        assert_eq!(stats.nodes_visited, 1, "the empty root is still visited");

        let mut one: RStarTree<1> = RStarTree::default();
        one.insert(iv(3.0, 4.0), 77);
        let frozen = FrozenTree::from_tree(&one);
        assert_eq!(frozen.search_collect(&iv(3.5, 3.5)), vec![77]);
        assert_eq!(frozen.search_collect(&iv(5.0, 6.0)), Vec::<u64>::new());
    }

    #[test]
    fn search_into_reuses_buffer() {
        let tree = build_tree(300, 8);
        let frozen = FrozenTree::from_tree(&tree);
        let mut buf = Vec::new();
        let s1 = frozen.search_into(&iv(0.0, 50.0), &mut buf);
        assert_eq!(buf.len() as u64, s1.results);
        let cap = buf.capacity();
        let s2 = frozen.search_into(&iv(10.0, 20.0), &mut buf);
        assert_eq!(buf.len() as u64, s2.results);
        assert!(buf.capacity() >= cap, "capacity kept across calls");
    }

    #[test]
    fn node_visits_flow_into_the_engine_registry() {
        let tree = build_tree(2000, 32);
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        let frozen = FrozenTree::from_paged(&engine, &paged).expect("freeze");
        engine.reset_stats();

        let q = iv(250.0, 260.0);
        let ps = paged.search(&engine, &q, |_, _| {}).expect("search");
        let fs = frozen.search(&q, |_, _| {});
        let m = engine.metrics();
        assert_eq!(
            m.counter_value("rtree_node_visits_total", &[("plane", "paged")]),
            Some(ps.nodes_visited)
        );
        assert_eq!(
            m.counter_value("rtree_node_visits_total", &[("plane", "frozen")]),
            Some(fs.nodes_visited)
        );
        assert_eq!(
            m.counter_total("rtree_node_visits_total"),
            ps.nodes_visited + fs.nodes_visited
        );

        // In-memory freezes have no engine and stay silent.
        let silent = FrozenTree::from_tree(&tree);
        engine.reset_stats();
        silent.search(&q, |_, _| {});
        assert_eq!(m.counter_total("rtree_node_visits_total"), 0);
    }

    #[test]
    fn point_sized_boxes_on_lane_boundaries() {
        // 8, 16, 17 entries exercise exact-lane and lane+1 padding.
        for n in [8u64, 16, 17, 170] {
            let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(170));
            for i in 0..n {
                tree.insert(iv(i as f64, i as f64), i);
            }
            let frozen = FrozenTree::from_tree(&tree);
            for i in 0..n {
                assert_eq!(
                    frozen.search_collect(&iv(i as f64, i as f64)),
                    vec![i],
                    "n={n} i={i}"
                );
            }
            assert_eq!(frozen.search_collect(&iv(-10.0, -1.0)), Vec::<u64>::new());
        }
    }
}
