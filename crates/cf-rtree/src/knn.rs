//! k-nearest-neighbor search (best-first branch-and-bound).
//!
//! Classic Hjaltason–Samet incremental NN over an R-tree: a priority
//! queue ordered by minimum distance holds both nodes and data entries;
//! popping a data entry yields the next-nearest result. Used by the Q1
//! layer to answer "nearest sample/cell" questions (e.g. locating the
//! cell to start a TIN walk from) and exposed on both tree forms.

use crate::node::ChildRef;
use crate::tree::RStarTree;
use crate::PagedRTree;
use cf_storage::StorageEngine;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One KNN result: payload and squared distance from the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Data payload of the entry.
    pub data: u64,
    /// Squared Euclidean distance from the query point to the entry's
    /// box (0 if the point is inside).
    pub dist_sq: f64,
}

/// Heap item: min-heap by distance via reversed ordering.
enum Item<const N: usize> {
    Node { dist_sq: f64, target: u64 },
    Entry { dist_sq: f64, data: u64 },
}

impl<const N: usize> Item<N> {
    fn dist(&self) -> f64 {
        match self {
            Item::Node { dist_sq, .. } | Item::Entry { dist_sq, .. } => *dist_sq,
        }
    }
}

impl<const N: usize> PartialEq for Item<N> {
    fn eq(&self, other: &Self) -> bool {
        self.dist() == other.dist()
    }
}
impl<const N: usize> Eq for Item<N> {}
impl<const N: usize> PartialOrd for Item<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const N: usize> Ord for Item<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the nearest first.
        other
            .dist()
            .partial_cmp(&self.dist())
            .unwrap_or(Ordering::Equal)
            // Ties: expand data entries before nodes for earlier output.
            .then_with(|| match (self, other) {
                (Item::Entry { .. }, Item::Node { .. }) => Ordering::Greater,
                (Item::Node { .. }, Item::Entry { .. }) => Ordering::Less,
                _ => Ordering::Equal,
            })
    }
}

impl<const N: usize> RStarTree<N> {
    /// The `k` entries nearest to `point` (by box distance), nearest
    /// first. Returns fewer than `k` when the tree is smaller.
    pub fn nearest(&self, point: &[f64; N], k: usize) -> Vec<Neighbor> {
        let mut heap: BinaryHeap<Item<N>> = BinaryHeap::new();
        heap.push(Item::Node {
            dist_sq: 0.0,
            target: self.root_index() as u64,
        });
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            if out.len() >= k {
                break;
            }
            match item {
                Item::Entry { dist_sq, data } => out.push(Neighbor { data, dist_sq }),
                Item::Node { target, .. } => {
                    let node = self.node(target as usize);
                    for e in &node.entries {
                        let dist_sq = e.mbr.distance_sq_to_point(point);
                        match e.child {
                            ChildRef::Data(data) => heap.push(Item::Entry { dist_sq, data }),
                            ChildRef::Node(c) => heap.push(Item::Node {
                                dist_sq,
                                target: c as u64,
                            }),
                        }
                    }
                }
            }
        }
        out
    }
}

impl<const N: usize> PagedRTree<N> {
    /// The `k` entries nearest to `point`, nearest first, reading node
    /// pages through the buffer pool. Returns the neighbors and the
    /// number of node pages visited.
    pub fn nearest(
        &self,
        engine: &StorageEngine,
        point: &[f64; N],
        k: usize,
    ) -> cf_storage::CfResult<(Vec<Neighbor>, u64)> {
        let mut heap: BinaryHeap<Item<N>> = BinaryHeap::new();
        heap.push(Item::Node {
            dist_sq: 0.0,
            target: self.root_page_id().0,
        });
        let mut out = Vec::with_capacity(k);
        let mut visited = 0u64;
        while let Some(item) = heap.pop() {
            if out.len() >= k {
                break;
            }
            match item {
                Item::Entry { dist_sq, data } => out.push(Neighbor { data, dist_sq }),
                Item::Node { target, .. } => {
                    visited += 1;
                    self.for_each_entry(
                        engine,
                        cf_storage::PageId(target),
                        |mbr, child, is_leaf| {
                            let dist_sq = mbr.distance_sq_to_point(point);
                            if is_leaf {
                                heap.push(Item::Entry {
                                    dist_sq,
                                    data: child,
                                });
                            } else {
                                heap.push(Item::Node {
                                    dist_sq,
                                    target: child,
                                });
                            }
                        },
                    )?;
                }
            }
        }
        Ok((out, visited))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeConfig;
    use cf_geom::Aabb;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build_points(n: usize, seed: u64) -> (RStarTree<2>, Vec<[f64; 2]>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RStarTree::new(RTreeConfig::new(16));
        let mut pts = Vec::new();
        for i in 0..n {
            let p = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
            tree.insert(Aabb::point(p), i as u64);
            pts.push(p);
        }
        (tree, pts)
    }

    fn brute_force(pts: &[[f64; 2]], q: [f64; 2], k: usize) -> Vec<u64> {
        let mut order: Vec<(f64, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2);
                (d, i as u64)
            })
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        order.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let (tree, pts) = build_points(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let q = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
            for k in [1, 5, 17] {
                let got: Vec<u64> = tree.nearest(&q, k).iter().map(|n| n.data).collect();
                let want = brute_force(&pts, q, k);
                // Distances (not ids) must agree — ties may permute ids.
                let gd: Vec<f64> = got
                    .iter()
                    .map(|&i| {
                        let p = pts[i as usize];
                        (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)
                    })
                    .collect();
                let wd: Vec<f64> = want
                    .iter()
                    .map(|&i| {
                        let p = pts[i as usize];
                        (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)
                    })
                    .collect();
                for (a, b) in gd.iter().zip(&wd) {
                    assert!((a - b).abs() < 1e-9, "k={k} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn knn_results_are_sorted_and_bounded() {
        let (tree, _) = build_points(200, 9);
        let res = tree.nearest(&[50.0, 50.0], 20);
        assert_eq!(res.len(), 20);
        for w in res.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq + 1e-12);
        }
        // k larger than the tree.
        let res = tree.nearest(&[0.0, 0.0], 500);
        assert_eq!(res.len(), 200);
        // Empty tree.
        let empty: RStarTree<2> = RStarTree::default();
        assert!(empty.nearest(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn paged_knn_matches_in_memory() {
        let (tree, _) = build_points(400, 12);
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let q = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
            let a: Vec<f64> = tree.nearest(&q, 7).iter().map(|n| n.dist_sq).collect();
            let (res, visited) = paged.nearest(&engine, &q, 7).expect("nearest");
            let b: Vec<f64> = res.iter().map(|n| n.dist_sq).collect();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9);
            }
            // Best-first search prunes: far fewer pages than the tree has.
            assert!(visited < paged.num_pages() as u64);
        }
    }
}
