//! R\* node split: ChooseSplitAxis + ChooseSplitIndex.
//!
//! Beckmann et al., §4.2: for every axis, entries are sorted by lower and
//! by upper box bound; for each sort, all distributions placing the first
//! `m - 1 + k` entries in the first group are considered. The split axis
//! is the one minimizing total margin over its distributions; along that
//! axis, the distribution minimizing overlap (ties broken by total area)
//! wins.

use crate::node::NodeEntry;
use cf_geom::Aabb;

/// Outcome of a split: the two entry groups.
pub struct Split<const N: usize> {
    /// Entries of the first group (stays in the original node).
    pub first: Vec<NodeEntry<N>>,
    /// Entries of the second group (moves to the new node).
    pub second: Vec<NodeEntry<N>>,
}

/// Splits an overflowing entry list (`max_entries + 1` entries) into two
/// groups per the R\* heuristics.
///
/// `min_entries` is the minimum fill of each group.
pub fn rstar_split<const N: usize>(mut entries: Vec<NodeEntry<N>>, min_entries: usize) -> Split<N> {
    let total = entries.len();
    debug_assert!(
        total >= 2 * min_entries,
        "cannot split {total} into two x {min_entries}"
    );
    let dists = total - 2 * min_entries + 1;

    // ChooseSplitAxis: minimize the margin sum over all distributions of
    // both sorts of each axis.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..N {
        let mut margin = 0.0;
        for sort_by_upper in [false, true] {
            sort_entries(&mut entries, axis, sort_by_upper);
            let (prefix, suffix) = prefix_suffix_mbrs(&entries);
            for k in 0..dists {
                let split_at = min_entries + k;
                margin += prefix[split_at - 1].margin() + suffix[split_at].margin();
            }
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    // ChooseSplitIndex along the best axis: minimize overlap, then area.
    let mut best: Option<(bool, usize, f64, f64)> = None; // (upper, split_at, overlap, area)
    for sort_by_upper in [false, true] {
        sort_entries(&mut entries, best_axis, sort_by_upper);
        let (prefix, suffix) = prefix_suffix_mbrs(&entries);
        for k in 0..dists {
            let split_at = min_entries + k;
            let g1 = prefix[split_at - 1];
            let g2 = suffix[split_at];
            let overlap = g1.intersection_volume(&g2);
            let area = g1.volume() + g2.volume();
            let better = match &best {
                None => true,
                Some((_, _, bo, ba)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((sort_by_upper, split_at, overlap, area));
            }
        }
    }
    let (upper, split_at, _, _) = best.expect("at least one distribution");
    sort_entries(&mut entries, best_axis, upper);
    let second = entries.split_off(split_at);
    Split {
        first: entries,
        second,
    }
}

fn sort_entries<const N: usize>(entries: &mut [NodeEntry<N>], axis: usize, by_upper: bool) {
    entries.sort_by(|a, b| {
        let (ka, kb) = if by_upper {
            (a.mbr.hi[axis], b.mbr.hi[axis])
        } else {
            (a.mbr.lo[axis], b.mbr.lo[axis])
        };
        ka.partial_cmp(&kb)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Stable tiebreak on the other bound keeps splits deterministic.
            .then_with(|| {
                let (ta, tb) = if by_upper {
                    (a.mbr.lo[axis], b.mbr.lo[axis])
                } else {
                    (a.mbr.hi[axis], b.mbr.hi[axis])
                };
                ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
            })
    });
}

/// `prefix[i]` = hull of entries `0..=i`; `suffix[i]` = hull of `i..`.
fn prefix_suffix_mbrs<const N: usize>(entries: &[NodeEntry<N>]) -> (Vec<Aabb<N>>, Vec<Aabb<N>>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Aabb::EMPTY;
    for e in entries {
        acc.merge(&e.mbr);
        prefix.push(acc);
    }
    let mut suffix = vec![Aabb::EMPTY; n];
    let mut acc = Aabb::EMPTY;
    for i in (0..n).rev() {
        acc.merge(&entries[i].mbr);
        suffix[i] = acc;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ChildRef;

    fn entry1(lo: f64, hi: f64, id: u64) -> NodeEntry<1> {
        NodeEntry {
            mbr: Aabb::new([lo], [hi]),
            child: ChildRef::Data(id),
        }
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clearly separated 1-D clusters must end up in different
        // groups with zero overlap.
        let mut entries = Vec::new();
        for i in 0..5 {
            entries.push(entry1(i as f64 * 0.1, i as f64 * 0.1 + 0.05, i));
        }
        for i in 0..5 {
            entries.push(entry1(
                100.0 + i as f64 * 0.1,
                100.0 + i as f64 * 0.1 + 0.05,
                5 + i,
            ));
        }
        let split = rstar_split(entries, 4);
        assert_eq!(split.first.len() + split.second.len(), 10);
        assert!(split.first.len() >= 4 && split.second.len() >= 4);
        let m1 = Aabb::hull(split.first.iter().map(|e| e.mbr));
        let m2 = Aabb::hull(split.second.iter().map(|e| e.mbr));
        assert_eq!(m1.intersection_volume(&m2), 0.0);
        // Every id still present exactly once.
        let mut ids: Vec<u64> = split
            .first
            .iter()
            .chain(&split.second)
            .map(|e| e.child.data())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_respects_min_entries() {
        let entries: Vec<NodeEntry<1>> = (0..11)
            .map(|i| entry1(i as f64, i as f64 + 0.5, i))
            .collect();
        let split = rstar_split(entries, 4);
        assert!(split.first.len() >= 4);
        assert!(split.second.len() >= 4);
        assert_eq!(split.first.len() + split.second.len(), 11);
    }

    #[test]
    fn split_2d_chooses_separating_axis() {
        // Entries form two groups separated along y; the split must use
        // that axis (groups have zero overlap).
        let mut entries: Vec<NodeEntry<2>> = Vec::new();
        for i in 0..6 {
            let x = i as f64;
            entries.push(NodeEntry {
                mbr: Aabb::new([x, 0.0], [x + 0.5, 1.0]),
                child: ChildRef::Data(i as u64),
            });
            entries.push(NodeEntry {
                mbr: Aabb::new([x, 50.0], [x + 0.5, 51.0]),
                child: ChildRef::Data(100 + i as u64),
            });
        }
        let split = rstar_split(entries, 5);
        let m1 = Aabb::hull(split.first.iter().map(|e| e.mbr));
        let m2 = Aabb::hull(split.second.iter().map(|e| e.mbr));
        assert_eq!(m1.intersection_volume(&m2), 0.0);
    }

    #[test]
    fn split_of_identical_boxes_is_balanced_enough() {
        // Degenerate case: all MBRs identical; split must still satisfy
        // the fill bounds.
        let entries: Vec<NodeEntry<1>> = (0..9).map(|i| entry1(1.0, 2.0, i)).collect();
        let split = rstar_split(entries, 3);
        assert!(split.first.len() >= 3 && split.second.len() >= 3);
    }
}
