//! The R\*-tree persisted to disk pages.
//!
//! Each node occupies exactly one 4 KiB page (the paper's setting: node
//! size = page size = 4 KB). Searches fault node pages through the
//! buffer pool, so every reported page access is a real traversal cost.
//!
//! Page layout (little-endian):
//!
//! ```text
//! offset 0  u32   level (0 = leaf)
//! offset 4  u32   entry count
//! offset 8  entry[count], each:
//!             f64 lo[N], f64 hi[N], u64 child
//! ```
//!
//! `child` is a page id for internal nodes and an opaque payload for
//! leaves (the value indexes pack cell indexes or subfield record ranges
//! into it).
//!
//! Besides bulk persistence ([`PagedRTree::persist`]), the tree supports
//! **incremental maintenance** directly against pages:
//! [`PagedRTree::insert`] (choose-subtree + R\* split, read-modify-write
//! along the root-to-leaf path) and [`PagedRTree::remove`]. Incremental
//! deletes do not condense underfull pages (as in many production GiST /
//! R-tree implementations); ancestor MBRs are shrunk opportunistically
//! and always remain supersets of their subtrees, which preserves search
//! correctness.

use crate::node::{ChildRef, NodeEntry};
use crate::split::rstar_split;
use crate::tree::{entry_size, RStarTree, SearchStats, NODE_HEADER_SIZE};
use cf_geom::Aabb;
use cf_storage::{codec, CfError, CfResult, Counter, PageBuf, PageId, StorageEngine, PAGE_SIZE};

/// An R\*-tree stored on pages of a [`StorageEngine`].
#[derive(Debug, Clone)]
pub struct PagedRTree<const N: usize> {
    root_page: PageId,
    height: u32,
    len: usize,
    num_pages: usize,
    /// The contiguous page run [`PagedRTree::persist`] wrote this tree
    /// onto, when known — `None` after [`PagedRTree::from_parts`] (the
    /// catalog does not record allocations). Lets a rebuild hand the
    /// dead tree back to the engine's freelist.
    run: Option<(PageId, usize)>,
    /// `rtree_node_visits_total{plane="paged"}` in the engine's registry;
    /// `None` until attached (trees persisted through [`PagedRTree::persist`]
    /// attach automatically, catalog reopens via
    /// [`PagedRTree::attach_metrics`]).
    nodes_counter: Option<Counter>,
}

/// Decoded form of one node page.
struct RawNode<const N: usize> {
    level: u32,
    entries: Vec<(Aabb<N>, u64)>,
}

impl<const N: usize> RawNode<N> {
    fn mbr(&self) -> Aabb<N> {
        Aabb::hull(self.entries.iter().map(|&(b, _)| b))
    }
}

impl<const N: usize> PagedRTree<N> {
    /// Maximum entries that fit a page for this dimension.
    pub const fn page_fanout() -> usize {
        (PAGE_SIZE - NODE_HEADER_SIZE) / entry_size(N)
    }

    /// Serializes `tree` onto freshly allocated pages of `engine`.
    ///
    /// Nodes are written level by level, leaves first, so the leaf level
    /// is physically contiguous (as a packed disk-resident index would
    /// be).
    ///
    /// # Panics
    ///
    /// Panics if the tree's fanout exceeds the page capacity.
    pub fn persist(tree: &RStarTree<N>, engine: &StorageEngine) -> CfResult<Self> {
        assert!(
            tree.config().max_entries <= Self::page_fanout(),
            "tree fanout {} exceeds page capacity {}",
            tree.config().max_entries,
            Self::page_fanout()
        );

        // Collect reachable nodes grouped by level.
        let root_idx = tree.root_index();
        let height = tree.height();
        let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); height as usize];
        let mut stack = vec![root_idx];
        while let Some(idx) = stack.pop() {
            let node = tree.node(idx);
            by_level[node.level as usize].push(idx);
            if !node.is_leaf() {
                for e in &node.entries {
                    stack.push(e.child.node());
                }
            }
        }

        // Assign page ids level by level (leaves first) from one
        // contiguous run.
        let total: usize = by_level.iter().map(|v| v.len()).sum();
        let first = engine.allocate_run(total)?;
        let mut page_of = std::collections::HashMap::with_capacity(total);
        let mut next = first.0;
        for level in &by_level {
            for &idx in level {
                page_of.insert(idx, PageId(next));
                next += 1;
            }
        }

        // Write every node.
        let mut buf: PageBuf = [0u8; PAGE_SIZE];
        for level in &by_level {
            for &idx in level {
                let node = tree.node(idx);
                buf.fill(0);
                codec::put_u32(&mut buf, 0, node.level);
                codec::put_u32(&mut buf, 4, node.entries.len() as u32);
                let mut off = NODE_HEADER_SIZE;
                for e in &node.entries {
                    for d in 0..N {
                        off = codec::put_f64(&mut buf, off, e.mbr.lo[d]);
                    }
                    for d in 0..N {
                        off = codec::put_f64(&mut buf, off, e.mbr.hi[d]);
                    }
                    let child = match e.child {
                        ChildRef::Data(v) => v,
                        ChildRef::Node(c) => page_of[&c].0,
                    };
                    off = codec::put_u64(&mut buf, off, child);
                }
                // Buffered: bulk persistence goes through the pool's
                // write-back path; callers flush/sync for durability.
                engine.write_page_buffered(page_of[&idx], &buf)?;
            }
        }

        let mut tree = Self {
            root_page: page_of[&root_idx],
            height,
            len: tree.len(),
            num_pages: total,
            run: Some((first, total)),
            nodes_counter: None,
        };
        tree.attach_metrics(engine);
        Ok(tree)
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Id of the root page (entry point for custom traversals).
    pub fn root_page_id(&self) -> PageId {
        self.root_page
    }

    /// Invokes `f(mbr, child, is_leaf)` for every entry of the node at
    /// `page` (one buffered page read). `child` is a page id when
    /// `is_leaf` is false and the data payload otherwise.
    pub fn for_each_entry(
        &self,
        engine: &StorageEngine,
        page: PageId,
        mut f: impl FnMut(&Aabb<N>, u64, bool),
    ) -> CfResult<()> {
        let node = Self::read_node(engine, page)?;
        let is_leaf = node.level == 0;
        for (mbr, child) in &node.entries {
            f(mbr, *child, is_leaf);
        }
        Ok(())
    }

    /// Dismantles the handle into catalog fields
    /// `(root_page, height, len, num_pages)` for persistence in a
    /// database catalog; [`PagedRTree::from_parts`] is the inverse.
    pub fn to_parts(&self) -> (u64, u32, u64, u64) {
        (
            self.root_page.0,
            self.height,
            self.len as u64,
            self.num_pages as u64,
        )
    }

    /// Reattaches to a tree previously persisted in this engine (or in a
    /// file-backed engine reopened by a later process) from its catalog
    /// fields. The caller is responsible for passing fields that came
    /// from [`PagedRTree::to_parts`] on the same storage.
    pub fn from_parts(root_page: u64, height: u32, len: u64, num_pages: u64) -> Self {
        Self {
            root_page: PageId(root_page),
            height,
            len: len as usize,
            num_pages: num_pages as usize,
            run: None,
            nodes_counter: None,
        }
    }

    /// The contiguous page run this tree was persisted onto, as
    /// `(first page, page count)`, or `None` when unknown (trees
    /// reattached through [`PagedRTree::from_parts`]). Pages later
    /// allocated by incremental splits are *not* part of the run; a
    /// rebuild that frees the run leaks them until a full rebuild of
    /// the storage.
    pub fn page_run(&self) -> Option<(PageId, usize)> {
        self.run
    }

    /// Binds this tree's node-visit counter
    /// (`rtree_node_visits_total{plane="paged"}`) to `engine`'s metrics
    /// registry. [`PagedRTree::persist`] does this automatically; call it
    /// after [`PagedRTree::from_parts`] so catalog-reopened trees report
    /// into the engine they were reattached to.
    pub fn attach_metrics(&mut self, engine: &StorageEngine) {
        self.nodes_counter = Some(
            engine
                .metrics()
                .counter_with("rtree_node_visits_total", &[("plane", "paged")]),
        );
    }

    /// Tree height (1 = a single leaf page).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Flattens this tree into a [`crate::FrozenTree`] for cache-resident
    /// query serving, reading each node page once. Shorthand for
    /// [`crate::FrozenTree::from_paged`].
    pub fn freeze(&self, engine: &StorageEngine) -> CfResult<crate::FrozenTree<N>> {
        crate::FrozenTree::from_paged(engine, self)
    }

    /// Pages occupied by the index (its disk size).
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    // ------------------------------------------------------------------
    // Node page I/O
    // ------------------------------------------------------------------

    /// Validates a node header decoded from raw page bytes: entry
    /// counts past the page fanout or absurd levels mean the page is
    /// not (or no longer) an R-tree node of this dimension.
    fn check_header(page: PageId, level: u32, count: usize) -> CfResult<()> {
        if count > Self::page_fanout() {
            return Err(CfError::corrupt(
                page,
                format!(
                    "R-tree node entry count {count} exceeds page fanout {}",
                    Self::page_fanout()
                ),
            ));
        }
        if level >= 64 {
            return Err(CfError::corrupt(
                page,
                format!("implausible R-tree node level {level}"),
            ));
        }
        Ok(())
    }

    fn read_node(engine: &StorageEngine, page: PageId) -> CfResult<RawNode<N>> {
        engine.try_with_page(page, |buf| {
            let level = codec::get_u32(buf, 0);
            let count = codec::get_u32(buf, 4) as usize;
            Self::check_header(page, level, count)?;
            let mut entries = Vec::with_capacity(count);
            let mut off = NODE_HEADER_SIZE;
            for _ in 0..count {
                let mut lo = [0.0; N];
                let mut hi = [0.0; N];
                for slot in lo.iter_mut() {
                    *slot = codec::get_f64(buf, off);
                    off += 8;
                }
                for slot in hi.iter_mut() {
                    *slot = codec::get_f64(buf, off);
                    off += 8;
                }
                let child = codec::get_u64(buf, off);
                off += 8;
                entries.push((Aabb::new(lo, hi), child));
            }
            Ok(RawNode { level, entries })
        })
    }

    fn write_node(engine: &StorageEngine, page: PageId, node: &RawNode<N>) -> CfResult<()> {
        debug_assert!(node.entries.len() <= Self::page_fanout());
        let mut buf: PageBuf = [0u8; PAGE_SIZE];
        codec::put_u32(&mut buf, 0, node.level);
        codec::put_u32(&mut buf, 4, node.entries.len() as u32);
        let mut off = NODE_HEADER_SIZE;
        for (mbr, child) in &node.entries {
            for d in 0..N {
                off = codec::put_f64(&mut buf, off, mbr.lo[d]);
            }
            for d in 0..N {
                off = codec::put_f64(&mut buf, off, mbr.hi[d]);
            }
            off = codec::put_u64(&mut buf, off, *child);
        }
        engine.write_page(page, &buf)
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    /// Inserts an entry directly into the paged tree.
    ///
    /// Descends by the R\* choose-subtree rule (minimum overlap
    /// enlargement above the leaves, minimum area enlargement higher
    /// up), splits overflowing pages with the R\* margin/overlap split,
    /// and grows a new root page when the root splits. Every touched
    /// node is one page read/write through the buffer pool.
    pub fn insert(&mut self, engine: &StorageEngine, mbr: Aabb<N>, data: u64) -> CfResult<()> {
        assert!(!mbr.is_empty(), "cannot insert an empty MBR");
        // Descend to the leaf, keeping the path and chosen entry slots.
        let mut path: Vec<(PageId, RawNode<N>, usize)> = Vec::new();
        let mut cur = self.root_page;
        loop {
            let node = Self::read_node(engine, cur)?;
            if node.level == 0 {
                path.push((cur, node, usize::MAX));
                break;
            }
            let choice = Self::choose_entry(&node, &mbr);
            let child = PageId(node.entries[choice].1);
            path.push((cur, node, choice));
            cur = child;
        }

        // Insert into the leaf, then walk up handling overflow.
        let mut pending: Option<(Aabb<N>, u64)> = Some((mbr, data));
        let mut child_hull: Option<Aabb<N>> = None;
        while let Some((page, mut node, choice)) = path.pop() {
            // Refresh the MBR of the child we descended through.
            if let Some(hull) = child_hull.take() {
                node.entries[choice].0 = hull;
            }
            if let Some((e_mbr, e_child)) = pending.take() {
                node.entries.push((e_mbr, e_child));
                if node.entries.len() > Self::page_fanout() {
                    let sibling = self.split_page(engine, page, &mut node)?;
                    pending = Some(sibling);
                }
            }
            if pending.is_none() && child_hull.is_none() {
                // Plain MBR refresh / insert without split.
                Self::write_node(engine, page, &node)?;
            }
            child_hull = Some(node.mbr());
            if pending.is_some() && path.is_empty() {
                // Root split: grow the tree.
                let (s_mbr, s_page) = pending.take().expect("checked above");
                let old_root_hull = child_hull.take().expect("set above");
                let new_root = RawNode {
                    level: node.level + 1,
                    entries: vec![(old_root_hull, page.0), (s_mbr, s_page)],
                };
                let new_root_page = engine.allocate_page()?;
                Self::write_node(engine, new_root_page, &new_root)?;
                self.root_page = new_root_page;
                self.height += 1;
                self.num_pages += 1;
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Splits an overflowing decoded node: the first group is written
    /// back to `page`, the second to a freshly allocated page; returns
    /// the sibling's `(mbr, page id)` entry for the parent.
    fn split_page(
        &mut self,
        engine: &StorageEngine,
        page: PageId,
        node: &mut RawNode<N>,
    ) -> CfResult<(Aabb<N>, u64)> {
        let min_entries = (Self::page_fanout() * 2 / 5).max(2);
        let entries: Vec<NodeEntry<N>> = node
            .entries
            .drain(..)
            .map(|(mbr, child)| NodeEntry {
                mbr,
                // Payload is opaque to the split heuristics.
                child: ChildRef::Data(child),
            })
            .collect();
        let split = rstar_split(entries, min_entries);
        node.entries = split
            .first
            .into_iter()
            .map(|e| (e.mbr, e.child.data()))
            .collect();
        let sibling = RawNode {
            level: node.level,
            entries: split
                .second
                .into_iter()
                .map(|e| (e.mbr, e.child.data()))
                .collect(),
        };
        Self::write_node(engine, page, node)?;
        let sibling_page = engine.allocate_page()?;
        Self::write_node(engine, sibling_page, &sibling)?;
        self.num_pages += 1;
        Ok((sibling.mbr(), sibling_page.0))
    }

    /// Choose-subtree on a decoded node.
    fn choose_entry(node: &RawNode<N>, mbr: &Aabb<N>) -> usize {
        if node.level == 1 {
            // Children are leaves: minimum overlap enlargement.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (j, &(b, _)) in node.entries.iter().enumerate() {
                let enlarged = b.union(mbr);
                let mut overlap_delta = 0.0;
                for (k, &(other, _)) in node.entries.iter().enumerate() {
                    if k != j {
                        overlap_delta +=
                            enlarged.intersection_volume(&other) - b.intersection_volume(&other);
                    }
                }
                let key = (overlap_delta, b.enlargement(mbr), b.volume());
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            best
        } else {
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (j, &(b, _)) in node.entries.iter().enumerate() {
                let key = (b.enlargement(mbr), b.volume());
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            best
        }
    }

    /// Removes one entry matching `(mbr, data)` exactly; returns whether
    /// an entry was removed.
    ///
    /// Underfull pages are not condensed; ancestor MBRs are shrunk where
    /// possible and otherwise left as (correct) supersets.
    pub fn remove(&mut self, engine: &StorageEngine, mbr: &Aabb<N>, data: u64) -> CfResult<bool> {
        let Some(path) = self.find_leaf_path(engine, self.root_page, mbr, data)? else {
            return Ok(false);
        };
        // path: (page, chosen entry index) from root to leaf; last entry
        // index refers to the matching entry in the leaf.
        let mut child_hull: Option<Aabb<N>> = None;
        for (depth, &(page, entry_idx)) in path.iter().enumerate().rev() {
            let mut node = Self::read_node(engine, page)?;
            if depth == path.len() - 1 {
                node.entries.remove(entry_idx);
            } else {
                let hull = child_hull.take().expect("child processed first");
                if !hull.is_empty() {
                    node.entries[entry_idx].0 = hull;
                }
                // An empty child keeps its stale (superset) MBR.
            }
            Self::write_node(engine, page, &node)?;
            child_hull = Some(node.mbr());
        }
        self.len -= 1;
        Ok(true)
    }

    /// DFS for the leaf holding `(mbr, data)`; returns the path as
    /// `(page, entry index)` pairs ending with the matching leaf slot.
    fn find_leaf_path(
        &self,
        engine: &StorageEngine,
        page: PageId,
        mbr: &Aabb<N>,
        data: u64,
    ) -> CfResult<Option<Vec<(PageId, usize)>>> {
        let node = Self::read_node(engine, page)?;
        if node.level == 0 {
            let idx = node
                .entries
                .iter()
                .position(|&(b, d)| d == data && b == *mbr);
            return Ok(idx.map(|idx| vec![(page, idx)]));
        }
        for (j, &(b, child)) in node.entries.iter().enumerate() {
            if b.contains(mbr) {
                if let Some(mut rest) = self.find_leaf_path(engine, PageId(child), mbr, data)? {
                    rest.insert(0, (page, j));
                    return Ok(Some(rest));
                }
            }
        }
        Ok(None)
    }

    /// Invokes `f(data, mbr)` for every entry intersecting `query`.
    ///
    /// Every visited node costs one logical page read through the buffer
    /// pool; `SearchStats::nodes_visited` equals that count.
    pub fn search(
        &self,
        engine: &StorageEngine,
        query: &Aabb<N>,
        mut f: impl FnMut(u64, &Aabb<N>),
    ) -> CfResult<SearchStats> {
        let mut stats = SearchStats::default();
        let mut stack = vec![self.root_page];
        while let Some(page_id) = stack.pop() {
            stats.nodes_visited += 1;
            engine.try_with_page(page_id, |page| {
                let level = codec::get_u32(page, 0);
                let count = codec::get_u32(page, 4) as usize;
                Self::check_header(page_id, level, count)?;
                let mut off = NODE_HEADER_SIZE;
                for _ in 0..count {
                    let mut lo = [0.0; N];
                    let mut hi = [0.0; N];
                    for slot in lo.iter_mut() {
                        *slot = codec::get_f64(page, off);
                        off += 8;
                    }
                    for slot in hi.iter_mut() {
                        *slot = codec::get_f64(page, off);
                        off += 8;
                    }
                    let child = codec::get_u64(page, off);
                    off += 8;
                    let mbr = Aabb::new(lo, hi);
                    if mbr.intersects(query) {
                        if level == 0 {
                            stats.results += 1;
                            f(child, &mbr);
                        } else {
                            stack.push(PageId(child));
                        }
                    }
                }
                Ok(())
            })?;
        }
        if let Some(counter) = &self.nodes_counter {
            counter.add(stats.nodes_visited);
        }
        Ok(stats)
    }

    /// Collects the payloads of all entries intersecting `query`.
    pub fn search_collect(&self, engine: &StorageEngine, query: &Aabb<N>) -> CfResult<Vec<u64>> {
        let mut out = Vec::with_capacity(self.len.min(64));
        self.search(engine, query, |d, _| out.push(d))?;
        Ok(out)
    }

    /// Reusable-buffer variant of [`PagedRTree::search_collect`]: clears
    /// `out` and fills it, keeping its capacity across calls.
    pub fn search_into(
        &self,
        engine: &StorageEngine,
        query: &Aabb<N>,
        out: &mut Vec<u64>,
    ) -> CfResult<SearchStats> {
        out.clear();
        self.search(engine, query, |d, _| out.push(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;

    fn iv(lo: f64, hi: f64) -> Aabb<1> {
        Aabb::new([lo], [hi])
    }

    fn build_tree(n: u64) -> RStarTree<1> {
        let mut tree = RStarTree::new(RTreeConfig::new(16));
        for i in 0..n {
            tree.insert(iv(i as f64, i as f64 + 1.5), i);
        }
        tree
    }

    #[test]
    fn paged_search_matches_in_memory() {
        let tree = build_tree(1000);
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        assert_eq!(paged.len(), 1000);
        assert_eq!(paged.height(), tree.height());

        for qlo in [0.0, 123.4, 500.0, 999.0, 2000.0] {
            let q = iv(qlo, qlo + 7.0);
            let mut got = paged.search_collect(&engine, &q).expect("search");
            got.sort_unstable();
            let mut want = tree.search_collect(&q);
            want.sort_unstable();
            assert_eq!(got, want, "query {qlo}");
        }
    }

    #[test]
    fn search_cost_is_logarithmic_not_linear() {
        let tree = build_tree(10_000);
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        engine.clear_cache();
        engine.reset_stats();
        let stats = paged
            .search(&engine, &iv(5000.0, 5001.0), |_, _| {})
            .expect("search");
        // A point-ish query on 10k sorted intervals should touch a tiny
        // fraction of the index pages.
        assert!(
            stats.nodes_visited < paged.num_pages() as u64 / 10,
            "visited {} of {} pages",
            stats.nodes_visited,
            paged.num_pages()
        );
        // Logical reads through the pool equal visited nodes.
        assert_eq!(engine.io_stats().logical_reads(), stats.nodes_visited);
    }

    #[test]
    fn paged_2d_round_trip() {
        let mut tree: RStarTree<2> = RStarTree::new(RTreeConfig::new(8));
        for i in 0..300u64 {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert(Aabb::new([x, y], [x + 0.9, y + 0.9]), i);
        }
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        let q = Aabb::new([3.5, 3.5], [6.5, 6.5]);
        let mut got = paged.search_collect(&engine, &q).expect("search");
        got.sort_unstable();
        let mut want = tree.search_collect(&q);
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn empty_tree_persists() {
        let tree: RStarTree<1> = RStarTree::default();
        let engine = StorageEngine::in_memory();
        let paged = PagedRTree::persist(&tree, &engine).expect("persist");
        assert!(paged.is_empty());
        assert_eq!(
            paged
                .search_collect(&engine, &iv(0.0, 1.0))
                .expect("search"),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn fanout_constants() {
        assert_eq!(PagedRTree::<1>::page_fanout(), 170);
        assert_eq!(PagedRTree::<2>::page_fanout(), 102);
        assert_eq!(PagedRTree::<3>::page_fanout(), 73);
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_fanout_rejected() {
        let tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(500));
        let engine = StorageEngine::in_memory();
        let _ = PagedRTree::persist(&tree, &engine).expect("persist");
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    #[test]
    fn incremental_insert_from_empty() {
        let engine = StorageEngine::in_memory();
        let tree: RStarTree<1> = RStarTree::default();
        let mut paged = PagedRTree::persist(&tree, &engine).expect("persist");
        for i in 0..2000u64 {
            paged
                .insert(&engine, iv(i as f64, i as f64 + 1.5), i)
                .expect("insert");
        }
        assert_eq!(paged.len(), 2000);
        assert!(paged.height() >= 2);

        // Agreement with a brute-force model.
        for qlo in [0.0, 555.5, 1999.0, 5000.0] {
            let q = iv(qlo, qlo + 10.0);
            let mut got = paged.search_collect(&engine, &q).expect("search");
            got.sort_unstable();
            let want: Vec<u64> = (0..2000u64)
                .filter(|&i| i as f64 <= q.hi[0] && q.lo[0] <= i as f64 + 1.5)
                .collect();
            assert_eq!(got, want, "query {qlo}");
        }
    }

    #[test]
    fn incremental_insert_into_persisted_tree() {
        let tree = build_tree(500);
        let engine = StorageEngine::in_memory();
        let mut paged = PagedRTree::persist(&tree, &engine).expect("persist");
        for i in 500..800u64 {
            paged
                .insert(&engine, iv(i as f64, i as f64 + 1.5), i)
                .expect("insert");
        }
        assert_eq!(paged.len(), 800);
        let mut got = paged
            .search_collect(&engine, &iv(0.0, 1000.0))
            .expect("search");
        got.sort_unstable();
        assert_eq!(got, (0..800).collect::<Vec<u64>>());
    }

    #[test]
    fn incremental_remove() {
        let tree = build_tree(300);
        let engine = StorageEngine::in_memory();
        let mut paged = PagedRTree::persist(&tree, &engine).expect("persist");
        for i in (0..300u64).step_by(3) {
            assert!(paged
                .remove(&engine, &iv(i as f64, i as f64 + 1.5), i)
                .expect("remove"));
        }
        assert_eq!(paged.len(), 200);
        assert!(
            !paged.remove(&engine, &iv(0.0, 1.5), 0).expect("remove"),
            "already removed"
        );
        let mut got = paged
            .search_collect(&engine, &iv(-10.0, 1000.0))
            .expect("search");
        got.sort_unstable();
        let want: Vec<u64> = (0..300).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mixed_incremental_ops_match_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let engine = StorageEngine::in_memory();
        let tree: RStarTree<2> = RStarTree::default();
        let mut paged: PagedRTree<2> = PagedRTree::persist(&tree, &engine).expect("persist");
        let mut model: Vec<(Aabb<2>, u64)> = Vec::new();
        let mut next = 0u64;
        for _ in 0..1500 {
            if model.is_empty() || rng.gen_bool(0.7) {
                let x: f64 = rng.gen_range(0.0..100.0);
                let y: f64 = rng.gen_range(0.0..100.0);
                let b = Aabb::new(
                    [x, y],
                    [x + rng.gen_range(0.0..4.0), y + rng.gen_range(0.0..4.0)],
                );
                paged.insert(&engine, b, next).expect("insert");
                model.push((b, next));
                next += 1;
            } else {
                let victim = rng.gen_range(0..model.len());
                let (b, d) = model.swap_remove(victim);
                assert!(paged.remove(&engine, &b, d).expect("remove"));
            }
        }
        assert_eq!(paged.len(), model.len());
        for _ in 0..25 {
            let x: f64 = rng.gen_range(0.0..100.0);
            let y: f64 = rng.gen_range(0.0..100.0);
            let q = Aabb::new([x, y], [x + 15.0, y + 15.0]);
            let mut got = paged.search_collect(&engine, &q).expect("search");
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|&(_, d)| d)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn incremental_inserts_stay_page_bounded() {
        // Every page keeps at most `page_fanout` entries after many
        // inserts (the split invariant) — verified by searching with a
        // universe query and checking visit counts stay plausible.
        let engine = StorageEngine::in_memory();
        let tree: RStarTree<1> = RStarTree::default();
        let mut paged = PagedRTree::persist(&tree, &engine).expect("persist");
        let n = 3000u64;
        for i in 0..n {
            // Clustered values stress the split paths.
            let v = (i % 100) as f64 + (i as f64) * 1e-4;
            paged.insert(&engine, iv(v, v + 0.5), i).expect("insert");
        }
        let stats = paged
            .search(&engine, &iv(-1.0, 200.0), |_, _| {})
            .expect("search");
        assert_eq!(stats.results, n);
        // A tree with fanout 170 holding 3000 entries needs at least
        // ceil(3000/170) = 18 leaf pages and visits every page once.
        assert!(stats.nodes_visited >= 18);
        assert!(stats.nodes_visited as usize <= paged.num_pages());
    }
}
