//! R\*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990).
//!
//! The paper indexes value intervals — 1-D minimum bounding rectangles —
//! in a 1-D R\*-tree (§3: "the intervals of the value domain of subfields
//! can be indexed using traditional spatial access methods, like
//! R\*-tree"). This crate implements the full R\*-tree from scratch,
//! generic over dimension `N`:
//!
//! * `N = 1` — value intervals: the I-All and I-Hilbert indexes;
//! * `N = 2` — spatial MBRs: conventional (Q1) queries over cells;
//! * `N = k` — value-domain boxes of vector fields (paper §5 future work).
//!
//! Features:
//!
//! * [`RStarTree`] — in-memory dynamic tree with the R\* insertion
//!   heuristics: ChooseSubtree with minimum-overlap enlargement at the
//!   leaf level, **forced reinsertion** on first overflow per level, and
//!   the margin-driven ChooseSplitAxis / minimum-overlap
//!   ChooseSplitIndex split.
//! * Deletion with tree condensation.
//! * [`bulk_load_str`] — packed bulk loading in linearized order
//!   (Kamel & Faloutsos, CIKM 1993 — reference [14] of the paper, the
//!   same work its cost model `P = L + 0.5` comes from).
//! * [`PagedRTree`] — the tree serialized to 4 KiB pages of a
//!   [`cf_storage::StorageEngine`]; searches fault node pages through
//!   the buffer pool so query cost is measured in real page accesses.
//! * [`FrozenTree`] — a read-optimized flattening of a built tree into
//!   contiguous cache-aligned SoA arrays (separate `lo[]`/`hi[]` lanes,
//!   implicit child offsets, branchless chunked leaf scan) for serving
//!   queries out of memory while keeping the same visit counts.

//!
//! # Example
//!
//! ```
//! use cf_geom::Aabb;
//! use cf_rtree::{PagedRTree, RStarTree, RTreeConfig};
//! use cf_storage::{CfResult, StorageEngine};
//!
//! fn main() -> CfResult<()> {
//!     // Index 1-D value intervals (the paper's use of the R*-tree).
//!     let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::page_sized::<1>());
//!     for i in 0..1000u64 {
//!         let lo = i as f64;
//!         tree.insert(Aabb::new([lo], [lo + 1.5]), i);
//!     }
//!     let hits = tree.search_collect(&Aabb::new([10.2], [11.0]));
//!     assert!(hits.contains(&9) && hits.contains(&10));
//!
//!     // Persist to 4 KiB pages and search through the buffer pool.
//!     let engine = StorageEngine::in_memory();
//!     let paged = PagedRTree::persist(&tree, &engine)?;
//!     let paged_hits = paged.search_collect(&engine, &Aabb::new([10.2], [11.0]))?;
//!     assert_eq!(paged_hits.len(), hits.len());
//!     Ok(())
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod frozen;
mod knn;
mod node;
mod paged;
mod split;
mod tree;

pub use bulk::bulk_load_str;
pub use frozen::FrozenTree;
pub use knn::Neighbor;
pub use node::{ChildRef, Node, NodeEntry};
pub use paged::PagedRTree;
pub use tree::{RStarTree, RTreeConfig, SearchStats};
