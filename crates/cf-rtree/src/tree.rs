//! The in-memory dynamic R\*-tree.

use crate::node::{ChildRef, Node, NodeEntry};
use crate::split::rstar_split;
use cf_geom::Aabb;
use std::collections::VecDeque;

/// On-page node header size: `level: u32` + `count: u32`.
pub(crate) const NODE_HEADER_SIZE: usize = 8;

/// On-page entry size for dimension `N`: `2N` f64 bounds + `u64` child.
pub(crate) const fn entry_size(n: usize) -> usize {
    16 * n + 8
}

/// Tuning parameters of the tree.
#[derive(Debug, Clone)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`), R\* recommends 40 % of `M`.
    pub min_entries: usize,
    /// Entries removed by forced reinsertion (`p`), R\* recommends 30 %.
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Config with `M = max_entries` and the R\* recommended ratios.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "max_entries must be at least 4");
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        Self {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Config whose fanout exactly fills a 4 KiB disk page for dimension
    /// `N` — the faithful reproduction of the paper's disk-based index
    /// (each R\*-tree node is one page).
    pub fn page_sized<const N: usize>() -> Self {
        let fanout = (cf_storage::PAGE_SIZE - NODE_HEADER_SIZE) / entry_size(N);
        Self::new(fanout)
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self::new(64)
    }
}

/// Counters reported by a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Nodes visited (equals page reads for the paged tree).
    pub nodes_visited: u64,
    /// Data entries reported.
    pub results: u64,
}

/// An in-memory R\*-tree over `N`-dimensional boxes with `u64` payloads.
#[derive(Debug, Clone)]
pub struct RStarTree<const N: usize> {
    nodes: Vec<Node<N>>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    config: RTreeConfig,
}

impl<const N: usize> Default for RStarTree<N> {
    fn default() -> Self {
        Self::new(RTreeConfig::default())
    }
}

impl<const N: usize> RStarTree<N> {
    /// Creates an empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        Self {
            nodes: vec![Node::new(0)],
            free: Vec::new(),
            root: 0,
            len: 0,
            config,
        }
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> u32 {
        self.nodes[self.root].level + 1
    }

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// MBR of the whole tree ([`Aabb::EMPTY`] when empty).
    pub fn mbr(&self) -> Aabb<N> {
        self.nodes[self.root].mbr()
    }

    fn alloc_node(&mut self, node: Node<N>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a data item with the given bounding box.
    pub fn insert(&mut self, mbr: Aabb<N>, data: u64) {
        assert!(!mbr.is_empty(), "cannot insert an empty MBR");
        self.len += 1;
        let mut reinserted = vec![false; self.nodes[self.root].level as usize + 2];
        let mut queue: VecDeque<(Aabb<N>, ChildRef, u32)> = VecDeque::new();
        queue.push_back((mbr, ChildRef::Data(data), 0));
        while let Some((mbr, child, level)) = queue.pop_front() {
            self.insert_one(mbr, child, level, &mut reinserted, &mut queue);
        }
    }

    fn insert_one(
        &mut self,
        mbr: Aabb<N>,
        child: ChildRef,
        level: u32,
        reinserted: &mut Vec<bool>,
        queue: &mut VecDeque<(Aabb<N>, ChildRef, u32)>,
    ) {
        // Descend to the node at `level` along the R* choose-subtree path.
        let mut path = vec![self.root];
        while self.nodes[*path.last().expect("non-empty path")].level > level {
            let cur = *path.last().expect("non-empty path");
            path.push(self.choose_subtree(cur, &mbr));
        }
        let target = *path.last().expect("non-empty path");
        debug_assert_eq!(self.nodes[target].level, level, "descended to wrong level");
        self.nodes[target].entries.push(NodeEntry { mbr, child });

        // Walk back up: treat overflows, refresh parent MBRs.
        for i in (0..path.len()).rev() {
            let node_idx = path[i];
            if self.nodes[node_idx].entries.len() > self.config.max_entries {
                let lvl = self.nodes[node_idx].level as usize;
                if lvl >= reinserted.len() {
                    reinserted.resize(lvl + 1, false);
                }
                let is_root = node_idx == self.root;
                if !is_root && !reinserted[lvl] {
                    reinserted[lvl] = true;
                    self.force_reinsert(node_idx, queue);
                } else {
                    self.split_child(&path, i);
                }
            }
            if i > 0 {
                self.refresh_parent_mbr(path[i - 1], node_idx);
            }
        }
    }

    /// R\* ChooseSubtree: pick the child of `node_idx` to descend into.
    fn choose_subtree(&self, node_idx: usize, mbr: &Aabb<N>) -> usize {
        let node = &self.nodes[node_idx];
        debug_assert!(!node.is_leaf());
        let children_are_leaves = node.level == 1;
        if children_are_leaves {
            // Minimum overlap enlargement; to bound the O(M²) cost, only
            // the 32 entries with least area enlargement are considered
            // (the "nearly minimum overlap cost" optimization of the R*
            // paper).
            const CANDIDATES: usize = 32;
            let mut order: Vec<usize> = (0..node.entries.len()).collect();
            if node.entries.len() > CANDIDATES {
                order.sort_by(|&a, &b| {
                    let ea = node.entries[a].mbr.enlargement(mbr);
                    let eb = node.entries[b].mbr.enlargement(mbr);
                    ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
                });
                order.truncate(CANDIDATES);
            }
            let mut best = order[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for &j in &order {
                let enlarged = node.entries[j].mbr.union(mbr);
                let mut overlap_delta = 0.0;
                for (k, other) in node.entries.iter().enumerate() {
                    if k == j {
                        continue;
                    }
                    overlap_delta += enlarged.intersection_volume(&other.mbr)
                        - node.entries[j].mbr.intersection_volume(&other.mbr);
                }
                let key = (
                    overlap_delta,
                    node.entries[j].mbr.enlargement(mbr),
                    node.entries[j].mbr.volume(),
                );
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            node.entries[best].child.node()
        } else {
            // Minimum area enlargement, ties by area.
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (j, e) in node.entries.iter().enumerate() {
                let key = (e.mbr.enlargement(mbr), e.mbr.volume());
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            node.entries[best].child.node()
        }
    }

    /// Forced reinsertion: remove the `p` entries whose centers are
    /// farthest from the node's MBR center and queue them for
    /// reinsertion, closest first ("close reinsert").
    fn force_reinsert(&mut self, node_idx: usize, queue: &mut VecDeque<(Aabb<N>, ChildRef, u32)>) {
        let level = self.nodes[node_idx].level;
        let center = self.nodes[node_idx].mbr().center();
        let mut entries = std::mem::take(&mut self.nodes[node_idx].entries);
        entries.sort_by(|a, b| {
            let da = dist_sq(&a.mbr.center(), &center);
            let db = dist_sq(&b.mbr.center(), &center);
            // Descending: farthest first.
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
        });
        let p = self
            .config
            .reinsert_count
            .min(entries.len() - self.config.min_entries);
        let removed: Vec<NodeEntry<N>> = entries.drain(..p).collect();
        self.nodes[node_idx].entries = entries;
        // Close reinsert: enqueue in increasing distance from center.
        for e in removed.into_iter().rev() {
            queue.push_back((e.mbr, e.child, level));
        }
    }

    /// Splits the node at `path[i]`, attaching the new node to its parent
    /// (or growing a new root).
    fn split_child(&mut self, path: &[usize], i: usize) {
        let node_idx = path[i];
        let level = self.nodes[node_idx].level;
        let entries = std::mem::take(&mut self.nodes[node_idx].entries);
        let split = rstar_split(entries, self.config.min_entries);
        self.nodes[node_idx].entries = split.first;
        let new_node = Node {
            level,
            entries: split.second,
        };
        let new_mbr = new_node.mbr();
        let new_idx = self.alloc_node(new_node);

        if node_idx == self.root {
            let old_mbr = self.nodes[node_idx].mbr();
            let new_root = Node {
                level: level + 1,
                entries: vec![
                    NodeEntry {
                        mbr: old_mbr,
                        child: ChildRef::Node(node_idx),
                    },
                    NodeEntry {
                        mbr: new_mbr,
                        child: ChildRef::Node(new_idx),
                    },
                ],
            };
            self.root = self.alloc_node(new_root);
        } else {
            let parent = path[i - 1];
            self.nodes[parent].entries.push(NodeEntry {
                mbr: new_mbr,
                child: ChildRef::Node(new_idx),
            });
            // Parent overflow (if any) is handled when the upward walk
            // reaches it.
        }
    }

    fn refresh_parent_mbr(&mut self, parent: usize, child: usize) {
        let child_mbr = self.nodes[child].mbr();
        let parent_node = &mut self.nodes[parent];
        for e in parent_node.entries.iter_mut() {
            if e.child == ChildRef::Node(child) {
                e.mbr = child_mbr;
                return;
            }
        }
        // The child may have been detached by a concurrent condense step;
        // that cannot happen during insertion.
        unreachable!("child {child} not found under parent {parent}");
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes one entry matching `(mbr, data)` exactly.
    ///
    /// Returns `false` (tree unchanged) when no such entry exists.
    pub fn remove(&mut self, mbr: &Aabb<N>, data: u64) -> bool {
        let Some(path) = self.find_leaf(self.root, mbr, data, &mut Vec::new()) else {
            return false;
        };
        let leaf = *path.last().expect("non-empty path");
        let pos = self.nodes[leaf]
            .entries
            .iter()
            .position(|e| e.child == ChildRef::Data(data) && e.mbr == *mbr)
            .expect("find_leaf returned a leaf containing the entry");
        self.nodes[leaf].entries.remove(pos);
        self.len -= 1;
        self.condense(path);
        true
    }

    fn find_leaf(
        &self,
        node_idx: usize,
        mbr: &Aabb<N>,
        data: u64,
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        path.push(node_idx);
        let node = &self.nodes[node_idx];
        if node.is_leaf() {
            if node
                .entries
                .iter()
                .any(|e| e.child == ChildRef::Data(data) && e.mbr == *mbr)
            {
                return Some(path.clone());
            }
        } else {
            for e in &node.entries {
                if e.mbr.contains(mbr) {
                    if let Some(found) = self.find_leaf(e.child.node(), mbr, data, path) {
                        return Some(found);
                    }
                }
            }
        }
        path.pop();
        None
    }

    /// CondenseTree: eliminate underfull nodes along the removal path and
    /// reinsert their orphaned entries.
    fn condense(&mut self, path: Vec<usize>) {
        let mut orphans: Vec<(Aabb<N>, ChildRef, u32)> = Vec::new();
        for i in (1..path.len()).rev() {
            let node_idx = path[i];
            let parent = path[i - 1];
            if self.nodes[node_idx].entries.len() < self.config.min_entries {
                // Detach from parent and orphan all entries.
                let pos = self.nodes[parent]
                    .entries
                    .iter()
                    .position(|e| e.child == ChildRef::Node(node_idx))
                    .expect("node must be linked under its path parent");
                self.nodes[parent].entries.remove(pos);
                let level = self.nodes[node_idx].level;
                for e in std::mem::take(&mut self.nodes[node_idx].entries) {
                    orphans.push((e.mbr, e.child, level));
                }
                self.free.push(node_idx);
            } else {
                self.refresh_parent_mbr(parent, node_idx);
            }
        }
        // Reinsert orphans at their original levels.
        for (mbr, child, level) in orphans {
            let mut reinserted = vec![false; self.nodes[self.root].level as usize + 2];
            let mut queue = VecDeque::new();
            queue.push_back((mbr, child, level));
            while let Some((mbr, child, level)) = queue.pop_front() {
                self.insert_one(mbr, child, level, &mut reinserted, &mut queue);
            }
        }
        // Shrink the root while it is an internal node with one child.
        while !self.nodes[self.root].is_leaf() && self.nodes[self.root].entries.len() == 1 {
            let child = self.nodes[self.root].entries[0].child.node();
            self.free.push(self.root);
            self.root = child;
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Invokes `f(data, mbr)` for every stored entry whose box intersects
    /// `query`, returning search statistics.
    pub fn search(&self, query: &Aabb<N>, mut f: impl FnMut(u64, &Aabb<N>)) -> SearchStats {
        let mut stats = SearchStats::default();
        let mut stack = vec![self.root];
        while let Some(node_idx) = stack.pop() {
            stats.nodes_visited += 1;
            let node = &self.nodes[node_idx];
            for e in &node.entries {
                if e.mbr.intersects(query) {
                    match e.child {
                        ChildRef::Data(d) => {
                            stats.results += 1;
                            f(d, &e.mbr);
                        }
                        ChildRef::Node(c) => stack.push(c),
                    }
                }
            }
        }
        stats
    }

    /// Collects the payloads of all entries intersecting `query`.
    pub fn search_collect(&self, query: &Aabb<N>) -> Vec<u64> {
        // Pre-size from the tree's population: selective queries stay
        // cheap (capped) and broad ones avoid regrowth doublings.
        let mut out = Vec::with_capacity(self.len.min(64));
        self.search(query, |d, _| out.push(d));
        out
    }

    /// Reusable-buffer variant of [`RStarTree::search_collect`]: clears
    /// `out` and fills it with the matching payloads, keeping its
    /// capacity across calls (the batch executor's hot loop).
    pub fn search_into(&self, query: &Aabb<N>, out: &mut Vec<u64>) -> SearchStats {
        out.clear();
        self.search(query, |d, _| out.push(d))
    }

    /// Iterates over every `(mbr, data)` pair in the tree.
    pub fn iter_entries(&self) -> Vec<(Aabb<N>, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(node_idx) = stack.pop() {
            for e in &self.nodes[node_idx].entries {
                match e.child {
                    ChildRef::Data(d) => out.push((e.mbr, d)),
                    ChildRef::Node(c) => stack.push(c),
                }
            }
        }
        out
    }

    /// Total number of nodes (for space accounting and the paged writer).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    pub(crate) fn root_index(&self) -> usize {
        self.root
    }

    pub(crate) fn node(&self, idx: usize) -> &Node<N> {
        &self.nodes[idx]
    }

    /// Assembles a tree from pre-built nodes (bulk loader only).
    pub(crate) fn from_parts(
        nodes: Vec<Node<N>>,
        root: usize,
        len: usize,
        config: RTreeConfig,
    ) -> Self {
        Self {
            nodes,
            free: Vec::new(),
            root,
            len,
            config,
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (used heavily by tests)
    // ------------------------------------------------------------------

    /// Verifies structural invariants, panicking with a description of
    /// the first violation. Returns the number of data entries found.
    pub fn check_invariants(&self) -> usize {
        let root = &self.nodes[self.root];
        assert!(
            root.entries.len() <= self.config.max_entries,
            "root overflows"
        );
        let count = self.check_node(self.root);
        assert_eq!(
            count, self.len,
            "len mismatch: counted {count}, len {}",
            self.len
        );
        count
    }

    fn check_node(&self, node_idx: usize) -> usize {
        let node = &self.nodes[node_idx];
        if node_idx != self.root {
            assert!(
                node.entries.len() >= self.config.min_entries,
                "node {node_idx} underfull: {} < {}",
                node.entries.len(),
                self.config.min_entries
            );
        }
        assert!(
            node.entries.len() <= self.config.max_entries,
            "node {node_idx} overfull"
        );
        if node.is_leaf() {
            for e in &node.entries {
                assert!(matches!(e.child, ChildRef::Data(_)), "leaf holds node ref");
            }
            node.entries.len()
        } else {
            let mut count = 0;
            for e in &node.entries {
                let child = e.child.node();
                assert_eq!(
                    self.nodes[child].level,
                    node.level - 1,
                    "level discontinuity under node {node_idx}"
                );
                assert_eq!(
                    self.nodes[child].mbr(),
                    e.mbr,
                    "stale parent MBR for child {child}"
                );
                count += self.check_node(child);
            }
            count
        }
    }
}

fn dist_sq<const N: usize>(a: &[f64; N], b: &[f64; N]) -> f64 {
    (0..N).map(|d| (a[d] - b[d]) * (a[d] - b[d])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Aabb<1> {
        Aabb::new([lo], [hi])
    }

    #[test]
    fn empty_tree_search() {
        let tree: RStarTree<1> = RStarTree::default();
        assert!(tree.is_empty());
        assert_eq!(tree.search_collect(&iv(0.0, 1.0)), Vec::<u64>::new());
        assert_eq!(tree.height(), 1);
        tree.check_invariants();
    }

    #[test]
    fn insert_and_search_small() {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(4));
        for i in 0..20u64 {
            tree.insert(iv(i as f64, i as f64 + 0.5), i);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 20);
        assert!(tree.height() > 1);

        let mut hits = tree.search_collect(&iv(5.2, 7.1));
        hits.sort_unstable();
        assert_eq!(hits, vec![5, 6, 7]);

        // Point query at an interval boundary (closed semantics).
        let hits = tree.search_collect(&iv(3.5, 3.5));
        assert_eq!(hits, vec![3]);
    }

    #[test]
    fn search_matches_linear_scan_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(8));
        let mut items: Vec<(f64, f64, u64)> = Vec::new();
        for i in 0..500u64 {
            let lo: f64 = rng.gen_range(0.0..100.0);
            let hi = lo + rng.gen_range(0.0..5.0);
            items.push((lo, hi, i));
            tree.insert(iv(lo, hi), i);
        }
        tree.check_invariants();
        for _ in 0..50 {
            let qlo: f64 = rng.gen_range(-5.0..105.0);
            let qhi = qlo + rng.gen_range(0.0..10.0);
            let q = iv(qlo, qhi);
            let mut got = tree.search_collect(&q);
            got.sort_unstable();
            let mut want: Vec<u64> = items
                .iter()
                .filter(|&&(lo, hi, _)| lo <= qhi && qlo <= hi)
                .map(|&(_, _, d)| d)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn search_matches_linear_scan_2d() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut tree: RStarTree<2> = RStarTree::new(RTreeConfig::new(16));
        let mut items = Vec::new();
        for i in 0..800u64 {
            let x: f64 = rng.gen_range(0.0..100.0);
            let y: f64 = rng.gen_range(0.0..100.0);
            let b = Aabb::new(
                [x, y],
                [x + rng.gen_range(0.0..3.0), y + rng.gen_range(0.0..3.0)],
            );
            items.push((b, i));
            tree.insert(b, i);
        }
        tree.check_invariants();
        for _ in 0..30 {
            let x: f64 = rng.gen_range(0.0..100.0);
            let y: f64 = rng.gen_range(0.0..100.0);
            let q = Aabb::new([x, y], [x + 10.0, y + 10.0]);
            let mut got = tree.search_collect(&q);
            got.sort_unstable();
            let mut want: Vec<u64> = items
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|&(_, d)| d)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn duplicate_boxes_are_all_found() {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(4));
        for i in 0..50u64 {
            tree.insert(iv(1.0, 2.0), i);
        }
        tree.check_invariants();
        let mut got = tree.search_collect(&iv(1.5, 1.5));
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn remove_and_research() {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(4));
        for i in 0..100u64 {
            tree.insert(iv(i as f64, i as f64 + 1.0), i);
        }
        // Remove the even entries.
        for i in (0..100u64).step_by(2) {
            assert!(tree.remove(&iv(i as f64, i as f64 + 1.0), i), "remove {i}");
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 50);
        // Removing again fails.
        assert!(!tree.remove(&iv(0.0, 1.0), 0));
        let mut got = tree.search_collect(&iv(0.0, 100.0));
        got.sort_unstable();
        assert_eq!(got, (1..100).step_by(2).collect::<Vec<u64>>());
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut tree: RStarTree<2> = RStarTree::new(RTreeConfig::new(4));
        let boxes: Vec<Aabb<2>> = (0..60)
            .map(|i| {
                let x = (i % 8) as f64;
                let y = (i / 8) as f64;
                Aabb::new([x, y], [x + 0.5, y + 0.5])
            })
            .collect();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, i as u64);
        }
        for (i, b) in boxes.iter().enumerate() {
            assert!(tree.remove(b, i as u64));
            tree.check_invariants();
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn page_sized_config_matches_layout() {
        let c1 = RTreeConfig::page_sized::<1>();
        // (4096 - 8) / 24 = 170
        assert_eq!(c1.max_entries, 170);
        let c2 = RTreeConfig::page_sized::<2>();
        // (4096 - 8) / 40 = 102
        assert_eq!(c2.max_entries, 102);
    }

    #[test]
    fn large_insert_respects_invariants() {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(16));
        for i in 0..5000u64 {
            // Clustered values to force overlap-heavy structure.
            let base = (i % 10) as f64 * 10.0;
            let lo = base + (i as f64 * 0.001) % 5.0;
            tree.insert(iv(lo, lo + 0.2), i);
        }
        assert_eq!(tree.check_invariants(), 5000);
    }

    #[test]
    fn search_stats_count_visits() {
        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::new(4));
        for i in 0..100u64 {
            tree.insert(iv(i as f64, i as f64 + 0.5), i);
        }
        let stats = tree.search(&iv(0.0, 0.1), |_, _| {});
        assert!(stats.nodes_visited >= tree.height() as u64);
        assert_eq!(stats.results, 1);
        // A full-range query touches every node.
        let stats = tree.search(&iv(-1.0, 101.0), |_, _| {});
        assert_eq!(stats.nodes_visited as usize, tree.node_count());
        assert_eq!(stats.results, 100);
    }

    #[test]
    #[should_panic(expected = "empty MBR")]
    fn insert_empty_mbr_panics() {
        let mut tree: RStarTree<1> = RStarTree::default();
        tree.insert(Aabb::EMPTY, 0);
    }
}
