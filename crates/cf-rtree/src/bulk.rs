//! Packed bulk loading (Kamel & Faloutsos, CIKM 1993).
//!
//! The paper's cost model for subfields comes from the same work ("On
//! packing R-trees", its reference [14]); the loader sorts entries by the
//! Hilbert value of their box centers and packs nodes to capacity,
//! producing a near-minimal-overlap tree in O(n log n). Used as the
//! fast-build ablation against dynamic R\* insertion.

use crate::node::{ChildRef, Node, NodeEntry};
use crate::tree::{RStarTree, RTreeConfig};
use cf_geom::Aabb;
use cf_sfc::hilbert_index_nd;

/// Bits of quantization per dimension for the Hilbert sort key.
const SORT_BITS: u32 = 16;

/// Builds a packed tree from `(mbr, data)` pairs.
///
/// Entries are ordered by the Hilbert value of their centers (plain
/// center order when `N == 1`) and packed bottom-up into nodes of
/// `config.max_entries`; a final underfull node per level borrows from
/// its left sibling so every node satisfies the minimum fill.
pub fn bulk_load_str<const N: usize>(
    mut items: Vec<(Aabb<N>, u64)>,
    config: RTreeConfig,
) -> RStarTree<N> {
    if items.is_empty() {
        return RStarTree::new(config);
    }
    let len = items.len();

    // Sort by Hilbert value of the quantized center.
    let hull = Aabb::hull(items.iter().map(|(b, _)| *b));
    let max_coord = (1u64 << SORT_BITS) - 1;
    let quantize = |b: &Aabb<N>| -> u128 {
        let c = b.center();
        let mut q = [0u64; 8];
        for d in 0..N {
            let extent = hull.extent(d);
            let t = if extent > 0.0 {
                ((c[d] - hull.lo[d]) / extent).clamp(0.0, 1.0)
            } else {
                0.0
            };
            q[d] = (t * max_coord as f64) as u64;
        }
        hilbert_index_nd(&q[..N], SORT_BITS)
    };
    items.sort_by_cached_key(|(b, _)| quantize(b));

    // Pack leaves.
    let mut nodes: Vec<Node<N>> = Vec::new();
    let mut level_nodes: Vec<usize> = Vec::new();
    for chunk in balanced_chunks(len, config.max_entries, config.min_entries) {
        let entries: Vec<NodeEntry<N>> = items[chunk]
            .iter()
            .map(|&(mbr, data)| NodeEntry {
                mbr,
                child: ChildRef::Data(data),
            })
            .collect();
        nodes.push(Node { level: 0, entries });
        level_nodes.push(nodes.len() - 1);
    }

    // Pack internal levels until a single root remains.
    let mut level = 0u32;
    while level_nodes.len() > 1 {
        level += 1;
        let mut next_level = Vec::new();
        for chunk in balanced_chunks(level_nodes.len(), config.max_entries, config.min_entries) {
            let entries: Vec<NodeEntry<N>> = level_nodes[chunk]
                .iter()
                .map(|&child| NodeEntry {
                    mbr: nodes[child].mbr(),
                    child: ChildRef::Node(child),
                })
                .collect();
            nodes.push(Node { level, entries });
            next_level.push(nodes.len() - 1);
        }
        level_nodes = next_level;
    }

    let root = level_nodes[0];
    RStarTree::from_parts(nodes, root, len, config)
}

/// Splits `0..n` into chunks of at most `max` items where every chunk has
/// at least `min` items (assuming `n >= 1`; a single chunk smaller than
/// `min` is allowed only when `n < min`, i.e. the root case).
fn balanced_chunks(n: usize, max: usize, min: usize) -> Vec<std::ops::Range<usize>> {
    debug_assert!(min <= max / 2 + 1, "min {min} too large for max {max}");
    let mut out = Vec::new();
    let mut start = 0;
    while start < n {
        let remaining = n - start;
        let take = if remaining > max && remaining - max < min {
            // Leave enough for the final chunk to meet the minimum.
            remaining - min
        } else {
            remaining.min(max)
        };
        out.push(start..start + take);
        start += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Aabb<1> {
        Aabb::new([lo], [hi])
    }

    #[test]
    fn balanced_chunks_respect_bounds() {
        for n in 1..200 {
            let chunks = balanced_chunks(n, 10, 4);
            let total: usize = chunks.iter().map(|c| c.len()).sum();
            assert_eq!(total, n);
            for (i, c) in chunks.iter().enumerate() {
                assert!(c.len() <= 10);
                if chunks.len() > 1 {
                    assert!(c.len() >= 4, "n={n} chunk {i} has {}", c.len());
                }
            }
        }
    }

    #[test]
    fn empty_bulk_load() {
        let tree = bulk_load_str::<1>(Vec::new(), RTreeConfig::new(8));
        assert!(tree.is_empty());
        tree.check_invariants();
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<(Aabb<1>, u64)> = (0..2000u64)
            .map(|i| {
                let lo: f64 = rng.gen_range(0.0..1000.0);
                (iv(lo, lo + rng.gen_range(0.0..2.0)), i)
            })
            .collect();
        let tree = bulk_load_str(items.clone(), RTreeConfig::new(16));
        assert_eq!(tree.check_invariants(), 2000);
        for _ in 0..40 {
            let qlo: f64 = rng.gen_range(0.0..1000.0);
            let q = iv(qlo, qlo + 5.0);
            let mut got = tree.search_collect(&q);
            got.sort_unstable();
            let mut want: Vec<u64> = items
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|&(_, d)| d)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn bulk_load_2d_invariants_and_height() {
        let items: Vec<(Aabb<2>, u64)> = (0..1000u64)
            .map(|i| {
                let x = (i % 32) as f64;
                let y = (i / 32) as f64;
                (Aabb::new([x, y], [x + 1.0, y + 1.0]), i)
            })
            .collect();
        let tree = bulk_load_str(items, RTreeConfig::new(10));
        assert_eq!(tree.check_invariants(), 1000);
        // Packed tree of 1000 entries with fanout 10: height 3.
        assert_eq!(tree.height(), 3);
    }

    #[test]
    fn packed_tree_is_smaller_than_dynamic() {
        use crate::RStarTree;
        let items: Vec<(Aabb<1>, u64)> = (0..3000u64)
            .map(|i| (iv(i as f64, i as f64 + 1.0), i))
            .collect();
        let packed = bulk_load_str(items.clone(), RTreeConfig::new(16));
        let mut dynamic: RStarTree<1> = RStarTree::new(RTreeConfig::new(16));
        for (b, d) in items {
            dynamic.insert(b, d);
        }
        assert!(packed.node_count() <= dynamic.node_count());
    }
}
