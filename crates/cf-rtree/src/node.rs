//! Arena nodes of the in-memory R\*-tree.

use cf_geom::Aabb;

/// What a node entry points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// An internal child node (arena index).
    Node(usize),
    /// A data item stored at a leaf. The payload is an opaque `u64`; the
    /// value indexes pack record indexes or `(start, end)` record ranges
    /// into it.
    Data(u64),
}

impl ChildRef {
    /// The arena index of a node child.
    ///
    /// # Panics
    ///
    /// Panics when called on a data entry.
    pub fn node(self) -> usize {
        match self {
            ChildRef::Node(i) => i,
            ChildRef::Data(d) => panic!("expected node child, found data {d}"),
        }
    }

    /// The payload of a data entry.
    ///
    /// # Panics
    ///
    /// Panics when called on a node child.
    pub fn data(self) -> u64 {
        match self {
            ChildRef::Data(d) => d,
            ChildRef::Node(i) => panic!("expected data entry, found node {i}"),
        }
    }
}

/// A single slot of a node: a bounding box and what it covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEntry<const N: usize> {
    /// Minimum bounding rectangle of the child/data.
    pub mbr: Aabb<N>,
    /// Child node or data payload.
    pub child: ChildRef,
}

/// An R\*-tree node.
///
/// `level == 0` is a leaf (entries are data); higher levels are internal
/// (entries are children at `level - 1`).
#[derive(Debug, Clone)]
pub struct Node<const N: usize> {
    /// Height of the node above the leaves.
    pub level: u32,
    /// Occupied slots.
    pub entries: Vec<NodeEntry<N>>,
}

impl<const N: usize> Node<N> {
    /// Creates an empty node at the given level.
    pub fn new(level: u32) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// Returns `true` for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The MBR covering all entries ([`Aabb::EMPTY`] for an empty node).
    pub fn mbr(&self) -> Aabb<N> {
        Aabb::hull(self.entries.iter().map(|e| e.mbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_ref_accessors() {
        assert_eq!(ChildRef::Node(3).node(), 3);
        assert_eq!(ChildRef::Data(42).data(), 42);
    }

    #[test]
    #[should_panic(expected = "expected node child")]
    fn data_is_not_a_node() {
        let _ = ChildRef::Data(1).node();
    }

    #[test]
    #[should_panic(expected = "expected data entry")]
    fn node_is_not_data() {
        let _ = ChildRef::Node(1).data();
    }

    #[test]
    fn node_mbr_is_hull_of_entries() {
        let mut node: Node<1> = Node::new(0);
        assert!(node.mbr().is_empty());
        node.entries.push(NodeEntry {
            mbr: Aabb::new([0.0], [1.0]),
            child: ChildRef::Data(0),
        });
        node.entries.push(NodeEntry {
            mbr: Aabb::new([5.0], [9.0]),
            child: ChildRef::Data(1),
        });
        assert_eq!(node.mbr(), Aabb::new([0.0], [9.0]));
        assert!(node.is_leaf());
    }
}
