//! A minimal wall-clock benchmark harness exposing the subset of the
//! `criterion` API the workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases `criterion = { package = "cf-criterion" }` to this crate.
//! Semantics: each `bench_function` warms up for `warm_up_time`, then
//! measures batches until `measurement_time` elapses, and prints
//! `group/id: mean ± spread (iters)` on stdout. No plots, no stats
//! beyond mean/min/max — enough for the relative comparisons the
//! figure benches make.
//!
//! Like the real crate, `cargo bench -- --test` runs every benchmark in
//! *test mode*: a single pass per benchmark with no warm-up or timing
//! budget, so CI can smoke-test the bench binaries in seconds. In test
//! mode the per-group `sample_size`/`measurement_time`/`warm_up_time`
//! overrides are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode =
            std::env::args().any(|a| a == "--test") || std::env::var_os("CF_BENCH_TEST").is_some();
        if test_mode {
            Self {
                sample_size: 1,
                measurement_time: Duration::ZERO,
                warm_up_time: Duration::ZERO,
                test_mode,
            }
        } else {
            Self {
                sample_size: 20,
                measurement_time: Duration::from_secs(2),
                warm_up_time: Duration::from_millis(300),
                test_mode,
            }
        }
    }
}

impl Criterion {
    /// No-op (kept for API compatibility; this harness never plots).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named benchmark id, optionally two-part (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Two-part id, rendered `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark (ignored in test mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Total measurement budget per benchmark (ignored in test mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !self.test_mode {
            self.measurement_time = d;
        }
        self
    }

    /// Warm-up budget per benchmark (ignored in test mode).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !self.test_mode {
            self.warm_up_time = d;
        }
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: self.sample_size,
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut bencher);
        if self.test_mode {
            let line = match bencher.result {
                Some(_) => format!("Testing {}/{}: ok", self.name, id.0),
                None => format!(
                    "Testing {}/{}: no routine (b.iter never called)",
                    self.name, id.0
                ),
            };
            println!("{line}");
            return self;
        }
        let line = match bencher.result {
            Some(m) => format!(
                "{}/{}: {} .. {} (mean {}, {} iters)",
                self.name,
                id.0,
                fmt_ns(m.min_ns),
                fmt_ns(m.max_ns),
                fmt_ns(m.mean_ns),
                m.iters
            ),
            None => format!(
                "{}/{}: no measurement (b.iter never called)",
                self.name, id.0
            ),
        };
        println!("{line}");
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

/// Runs the measured routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: usize,
    test_mode: bool,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Test mode (`cargo bench -- --test`): a single pass proves
            // the routine runs; no warm-up, no timing loop.
            let t0 = Instant::now();
            black_box(routine());
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            self.result = Some(Measurement {
                mean_ns: ns,
                min_ns: ns,
                max_ns: ns,
                iters: 1,
            });
            return;
        }
        // Warm-up: also estimates a batch size so each sample is at
        // least ~1% of the measurement budget and timer noise amortizes.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.samples as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut total_iters = 0u64;
        let mut total = Duration::ZERO;
        let (mut min_ns, mut max_ns) = (f64::INFINITY, 0.0f64);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            let ns = dt.as_secs_f64() * 1e9 / batch as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total += dt;
            total_iters += batch;
            if Instant::now() > deadline {
                break;
            }
        }
        self.result = Some(Measurement {
            mean_ns: total.as_secs_f64() * 1e9 / total_iters as f64,
            min_ns,
            max_ns,
            iters: total_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    let mut s = String::new();
    if ns < 1e3 {
        let _ = write!(s, "{ns:.1} ns");
    } else if ns < 1e6 {
        let _ = write!(s, "{:.2} µs", ns / 1e3);
    } else if ns < 1e9 {
        let _ = write!(s, "{:.2} ms", ns / 1e6);
    } else {
        let _ = write!(s, "{:.3} s", ns / 1e9);
    }
    s
}

/// Declares a bench group runner (`criterion_group!{name = n; config = c; targets = f, g}`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut acc = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                acc
            })
        });
        g.finish();
    }

    #[test]
    fn test_mode_runs_once_and_ignores_overrides() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 1,
            measurement_time: Duration::ZERO,
            warm_up_time: Duration::ZERO,
        };
        let mut g = c.benchmark_group("smoke");
        // Overrides must not re-enable a multi-second budget.
        g.sample_size(100)
            .measurement_time(Duration::from_secs(60))
            .warm_up_time(Duration::from_secs(10));
        let mut calls = 0u64;
        let t0 = Instant::now();
        g.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert_eq!(calls, 1, "test mode runs the routine exactly once");
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn ids_render_both_forms() {
        assert_eq!(BenchmarkId::new("m", "q=0.1").0, "m/q=0.1");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }
}
