//! Property-based tests for the geometry primitives.

use cf_geom::{Aabb, Interval, Point2, Polygon, Triangle};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1e3..1e3f64
}

fn interval() -> impl Strategy<Value = Interval> {
    (finite_coord(), finite_coord()).prop_map(|(a, b)| Interval::spanning(a, b))
}

fn aabb2() -> impl Strategy<Value = Aabb<2>> {
    (
        finite_coord(),
        finite_coord(),
        finite_coord(),
        finite_coord(),
    )
        .prop_map(|(x0, y0, x1, y1)| Aabb::from_points(Point2::new(x0, y0), Point2::new(x1, y1)))
}

fn point2() -> impl Strategy<Value = Point2> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #[test]
    fn interval_union_contains_operands(a in interval(), b in interval()) {
        let u = a.union(b);
        prop_assert!(u.contains_interval(a));
        prop_assert!(u.contains_interval(b));
    }

    #[test]
    fn interval_intersection_symmetric_and_contained(a in interval(), b in interval()) {
        prop_assert_eq!(a.intersects(b), b.intersects(a));
        if let Some(i) = a.intersection(b) {
            prop_assert!(a.contains_interval(i));
            prop_assert!(b.contains_interval(i));
            prop_assert!(a.intersects(b));
        } else {
            prop_assert!(!a.intersects(b));
        }
    }

    #[test]
    fn interval_normalize_round_trip(iv in interval(), t in 0.0..1.0f64) {
        prop_assume!(iv.width() > 1e-9);
        let v = iv.denormalize(t);
        prop_assert!((iv.normalize(v) - t).abs() < 1e-9);
    }

    #[test]
    fn aabb_union_monotone_volume(a in aabb2(), b in aabb2()) {
        let u = a.union(&b);
        prop_assert!(u.volume() + 1e-9 >= a.volume());
        prop_assert!(u.volume() + 1e-9 >= b.volume());
        prop_assert!(u.contains(&a) && u.contains(&b));
    }

    #[test]
    fn aabb_intersection_volume_bounded(a in aabb2(), b in aabb2()) {
        let iv = a.intersection_volume(&b);
        prop_assert!(iv >= 0.0);
        prop_assert!(iv <= a.volume() + 1e-6);
        prop_assert!(iv <= b.volume() + 1e-6);
        prop_assert_eq!(iv > 0.0, b.intersection_volume(&a) > 0.0);
    }

    #[test]
    fn aabb_enlargement_nonnegative(a in aabb2(), b in aabb2()) {
        prop_assert!(a.enlargement(&b) >= -1e-9);
        if a.contains(&b) {
            prop_assert!(a.enlargement(&b).abs() < 1e-9);
        }
    }

    #[test]
    fn barycentric_coordinates_sum_to_one(
        a in point2(), b in point2(), c in point2(), p in point2()
    ) {
        let t = Triangle::new(a, b, c);
        prop_assume!(!t.is_degenerate());
        prop_assume!(t.area() > 1e-3);
        let l = t.barycentric(p).unwrap();
        prop_assert!((l[0] + l[1] + l[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn triangle_contains_centroid(a in point2(), b in point2(), c in point2()) {
        let t = Triangle::new(a, b, c);
        prop_assume!(t.area() > 1e-3);
        prop_assert!(t.contains(t.centroid()));
        let ct = t.centroid();
        prop_assert!(t.bbox().contains_point(&[ct.x, ct.y]));
    }

    #[test]
    fn clip_never_increases_area(
        a in point2(), b in point2(), c in point2(),
        nx in -1.0..1.0f64, ny in -1.0..1.0f64, d in -100.0..100.0f64
    ) {
        let poly: Polygon = Triangle::new(a, b, c).into();
        let clipped = poly.clip_halfplane(|p| nx * p.x + ny * p.y + d);
        prop_assert!(clipped.area() <= poly.area() + 1e-6);
    }

    #[test]
    fn clip_complement_partitions_area(
        a in point2(), b in point2(), c in point2(),
        nx in -1.0..1.0f64, ny in -1.0..1.0f64, d in -100.0..100.0f64
    ) {
        let poly: Polygon = Triangle::new(a, b, c).into();
        prop_assume!(poly.area() > 1e-3);
        let keep = |p: Point2| nx * p.x + ny * p.y + d;
        let inside = poly.clip_halfplane(keep);
        let outside = poly.clip_halfplane(|p| -keep(p));
        let total = inside.area() + outside.area();
        prop_assert!(
            (total - poly.area()).abs() < 1e-6 * poly.area().max(1.0),
            "inside={} outside={} poly={}", inside.area(), outside.area(), poly.area()
        );
    }

    #[test]
    fn circumcircle_is_equidistant(a in point2(), b in point2(), c in point2()) {
        let t = Triangle::new(a, b, c);
        prop_assume!(t.area() > 1e-2);
        if let Some((center, r2)) = t.circumcircle() {
            for v in t.vertices {
                prop_assert!((center.distance_sq(v) - r2).abs() < 1e-4 * r2.max(1.0));
            }
        }
    }
}
