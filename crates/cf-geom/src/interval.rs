//! Closed 1-D value intervals.
//!
//! The EDBT 2002 paper associates every cell (and every subfield) with the
//! closed interval of all explicit *and* implicit field values it contains.
//! These intervals are what the value-domain index stores.

use crate::Aabb;
use std::fmt;

/// A closed interval `[lo, hi]` on the field value domain.
///
/// Invariant: `lo <= hi` for any interval built through the constructors.
/// An interval where `lo == hi` is valid and represents a constant cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Minimum value contained in the interval.
    pub lo: f64,
    /// Maximum value contained in the interval.
    pub hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid interval: lo={lo} > hi={hi}");
        Self { lo, hi }
    }

    /// Creates the degenerate interval `[v, v]`.
    #[inline]
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// Creates the interval spanning two values given in any order.
    #[inline]
    pub fn spanning(a: f64, b: f64) -> Self {
        if a <= b {
            Self::new(a, b)
        } else {
            Self::new(b, a)
        }
    }

    /// The smallest interval containing every value in a non-empty slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn hull(values: &[f64]) -> Option<Self> {
        let (&first, rest) = values.split_first()?;
        let mut lo = first;
        let mut hi = first;
        for &v in rest {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some(Self::new(lo, hi))
    }

    /// Width of the interval, `hi - lo`.
    #[inline]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// The paper's *interval size*: `maximum − minimum + base`.
    ///
    /// The paper defines `I = max − min + 1` so that a constant cell
    /// (min == max) has size 1 rather than 0. The additive `base` is a
    /// scale-dependent constant; `base = 1.0` reproduces the paper, while
    /// normalized-domain workloads may pass a smaller resolution unit.
    #[inline]
    pub fn size_with_base(self, base: f64) -> f64 {
        self.width() + base
    }

    /// Returns `true` when `self` and `other` share at least one value
    /// (closed-interval semantics, matching the paper's "intersect").
    #[inline]
    pub fn intersects(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` when `v` lies inside the closed interval.
    #[inline]
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` when every value of `other` lies inside `self`.
    #[inline]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The smallest interval containing both `self` and `other`.
    #[inline]
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The overlap of `self` and `other`, or `None` if disjoint.
    #[inline]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn center(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Affine map of `v ∈ [lo, hi]` onto `[0, 1]`.
    ///
    /// Returns `0.5` for a degenerate interval so that normalization of a
    /// constant field is well-defined.
    #[inline]
    pub fn normalize(self, v: f64) -> f64 {
        let w = self.width();
        if w == 0.0 {
            0.5
        } else {
            (v - self.lo) / w
        }
    }

    /// Inverse of [`Interval::normalize`]: maps `t ∈ [0, 1]` onto the
    /// interval.
    #[inline]
    pub fn denormalize(self, t: f64) -> f64 {
        self.lo + t * self.width()
    }
}

impl From<Interval> for Aabb<1> {
    #[inline]
    fn from(iv: Interval) -> Self {
        Aabb::new([iv.lo], [iv.hi])
    }
}

impl From<Aabb<1>> for Interval {
    #[inline]
    fn from(b: Aabb<1>) -> Self {
        Interval::new(b.lo[0], b.hi[0])
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_enforce_order() {
        let iv = Interval::spanning(5.0, 2.0);
        assert_eq!(iv, Interval::new(2.0, 5.0));
        assert_eq!(Interval::point(3.0).width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn new_rejects_reversed_bounds() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn hull_of_values() {
        assert_eq!(Interval::hull(&[]), None);
        assert_eq!(
            Interval::hull(&[3.0, -1.0, 2.0]),
            Some(Interval::new(-1.0, 3.0))
        );
        assert_eq!(Interval::hull(&[7.0]), Some(Interval::point(7.0)));
    }

    #[test]
    fn paper_interval_size_definition() {
        // Paper §3.1.2: I = max − min + 1; constant cell → 1.
        assert_eq!(Interval::new(20.0, 40.0).size_with_base(1.0), 21.0);
        assert_eq!(Interval::point(30.0).size_with_base(1.0), 1.0);
    }

    #[test]
    fn closed_intersection_semantics() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0); // touch at a point
        let c = Interval::new(1.5, 3.0);
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        assert!(!a.intersects(c));
        assert_eq!(a.intersection(b), Some(Interval::point(1.0)));
        assert_eq!(a.intersection(c), None);
    }

    #[test]
    fn union_and_containment() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        let u = a.union(b);
        assert_eq!(u, Interval::new(0.0, 3.0));
        assert!(u.contains_interval(a));
        assert!(u.contains_interval(b));
        assert!(u.contains(1.5));
        assert!(!a.contains_interval(u));
    }

    #[test]
    fn normalization_round_trip() {
        let iv = Interval::new(10.0, 30.0);
        assert_eq!(iv.normalize(20.0), 0.5);
        assert_eq!(iv.denormalize(0.25), 15.0);
        for v in [10.0, 17.3, 30.0] {
            assert!((iv.denormalize(iv.normalize(v)) - v).abs() < 1e-12);
        }
        // Degenerate interval normalizes to the center of [0, 1].
        assert_eq!(Interval::point(5.0).normalize(5.0), 0.5);
    }

    #[test]
    fn aabb_round_trip() {
        let iv = Interval::new(-2.0, 7.0);
        let b: Aabb<1> = iv.into();
        assert_eq!(Interval::from(b), iv);
    }
}
