//! Triangles and barycentric coordinates.
//!
//! TIN cells are triangles whose vertices carry sample values; linear
//! interpolation inside a triangle is exactly the barycentric combination
//! of its vertex values (paper §2.1: "in the 2-D TIN with a linear
//! interpolation, we take three vertices of the triangle containing the
//! given point to apply the function").

use crate::{Aabb, Point2, EPSILON};

/// A triangle in the 2-D spatial domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// The three vertices.
    pub vertices: [Point2; 3],
}

impl Triangle {
    /// Creates a triangle from three vertices (any orientation).
    #[inline]
    pub const fn new(a: Point2, b: Point2, c: Point2) -> Self {
        Self {
            vertices: [a, b, c],
        }
    }

    /// Signed area: positive for counter-clockwise vertex order.
    #[inline]
    pub fn signed_area(&self) -> f64 {
        let [a, b, c] = self.vertices;
        0.5 * a.cross(b, c)
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Returns `true` for a degenerate (zero-area, collinear) triangle.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.area() < EPSILON
    }

    /// Centroid (the "center position of cells" used for Hilbert ordering
    /// of TIN cells in the paper).
    #[inline]
    pub fn centroid(&self) -> Point2 {
        let [a, b, c] = self.vertices;
        Point2::new((a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0)
    }

    /// Axis-aligned bounding box.
    #[inline]
    pub fn bbox(&self) -> Aabb<2> {
        Aabb::hull_of_points(&self.vertices)
    }

    /// Barycentric coordinates `(λ0, λ1, λ2)` of `p` with respect to the
    /// triangle's vertices, or `None` for a degenerate triangle.
    ///
    /// The coordinates sum to 1 and are all in `[0, 1]` iff `p` lies
    /// inside the triangle.
    pub fn barycentric(&self, p: Point2) -> Option<[f64; 3]> {
        let [a, b, c] = self.vertices;
        let denom = a.cross(b, c);
        if denom.abs() < EPSILON {
            return None;
        }
        let l0 = p.cross(b, c) / denom;
        let l1 = p.cross(c, a) / denom;
        let l2 = 1.0 - l0 - l1;
        Some([l0, l1, l2])
    }

    /// Returns `true` when `p` lies inside or on the boundary of the
    /// triangle (with a small tolerance).
    pub fn contains(&self, p: Point2) -> bool {
        match self.barycentric(p) {
            Some(l) => l.iter().all(|&x| x >= -1e-9),
            None => false,
        }
    }

    /// Linear interpolation of per-vertex values at point `p`.
    ///
    /// Returns `None` for a degenerate triangle. `p` need not lie inside
    /// the triangle; the linear function is extrapolated outside.
    pub fn interpolate(&self, values: [f64; 3], p: Point2) -> Option<f64> {
        let l = self.barycentric(p)?;
        Some(l[0] * values[0] + l[1] * values[1] + l[2] * values[2])
    }

    /// The circumcircle as `(center, radius_squared)`, or `None` for a
    /// degenerate triangle. Used by the Delaunay in-circle predicate.
    pub fn circumcircle(&self) -> Option<(Point2, f64)> {
        let [a, b, c] = self.vertices;
        let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
        if d.abs() < EPSILON {
            return None;
        }
        let a2 = a.x * a.x + a.y * a.y;
        let b2 = b.x * b.x + b.y * b.y;
        let c2 = c.x * c.x + c.y * c.y;
        let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
        let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
        let center = Point2::new(ux, uy);
        Some((center, center.distance_sq(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_right() -> Triangle {
        Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        )
    }

    #[test]
    fn area_and_orientation() {
        let t = unit_right();
        assert!((t.area() - 0.5).abs() < 1e-12);
        assert!(t.signed_area() > 0.0); // CCW
        let flipped = Triangle::new(t.vertices[0], t.vertices[2], t.vertices[1]);
        assert!(flipped.signed_area() < 0.0);
        assert_eq!(flipped.area(), t.area());
    }

    #[test]
    fn degenerate_detection() {
        let line = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        );
        assert!(line.is_degenerate());
        assert_eq!(line.barycentric(Point2::new(0.5, 0.5)), None);
        assert!(!unit_right().is_degenerate());
    }

    #[test]
    fn barycentric_at_vertices_and_centroid() {
        let t = unit_right();
        let l = t.barycentric(t.vertices[0]).unwrap();
        assert!((l[0] - 1.0).abs() < 1e-12 && l[1].abs() < 1e-12 && l[2].abs() < 1e-12);
        let lc = t.barycentric(t.centroid()).unwrap();
        for x in lc {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn containment() {
        let t = unit_right();
        assert!(t.contains(Point2::new(0.25, 0.25)));
        assert!(t.contains(Point2::new(0.5, 0.5))); // on hypotenuse
        assert!(!t.contains(Point2::new(0.6, 0.6)));
        assert!(!t.contains(Point2::new(-0.1, 0.1)));
    }

    #[test]
    fn linear_interpolation_is_exact_for_planes() {
        // Field w(x, y) = 3 + 2x − y is linear, so barycentric
        // interpolation must reproduce it anywhere.
        let w = |p: Point2| 3.0 + 2.0 * p.x - p.y;
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.5),
            Point2::new(0.5, 3.0),
        );
        let vals = [w(t.vertices[0]), w(t.vertices[1]), w(t.vertices[2])];
        for p in [
            Point2::new(0.8, 0.9),
            t.centroid(),
            Point2::new(5.0, -2.0), // extrapolation
        ] {
            let got = t.interpolate(vals, p).unwrap();
            assert!((got - w(p)).abs() < 1e-10, "at {p}: {got} vs {}", w(p));
        }
    }

    #[test]
    fn circumcircle_passes_through_vertices() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(1.0, 3.0),
        );
        let (c, r2) = t.circumcircle().unwrap();
        for v in t.vertices {
            assert!((c.distance_sq(v) - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn bbox_covers_vertices() {
        let t = unit_right();
        let b = t.bbox();
        assert_eq!(b, Aabb::new([0.0, 0.0], [1.0, 1.0]));
    }
}
