//! Axis-aligned bounding boxes generic over dimension.
//!
//! The R\*-tree stores `Aabb<N>` keys: `N = 1` for value intervals (the
//! paper's use), `N = 2` for spatial MBRs of cells, and `N = k` for the
//! vector-field extension where a subfield's key is a box in the
//! k-dimensional value domain.

use crate::Point2;

/// An axis-aligned box `[lo, hi]` in `N` dimensions (closed on all sides).
///
/// Invariant: `lo[d] <= hi[d]` for every dimension `d` of any box built
/// through the constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const N: usize> {
    /// Minimum corner.
    pub lo: [f64; N],
    /// Maximum corner.
    pub hi: [f64; N],
}

impl<const N: usize> Aabb<N> {
    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics if `lo[d] > hi[d]` for any dimension.
    #[inline]
    pub fn new(lo: [f64; N], hi: [f64; N]) -> Self {
        for d in 0..N {
            assert!(
                lo[d] <= hi[d],
                "invalid Aabb in dim {d}: lo={} > hi={}",
                lo[d],
                hi[d]
            );
        }
        Self { lo, hi }
    }

    /// The degenerate box containing a single point.
    #[inline]
    pub fn point(p: [f64; N]) -> Self {
        Self { lo: p, hi: p }
    }

    /// A box positioned so union-identity holds: `EMPTY.union(b) == b`.
    ///
    /// Its corners are `+inf`/`-inf`; it intersects nothing and contains
    /// nothing. Useful as a fold seed when computing hulls.
    pub const EMPTY: Aabb<N> = Aabb {
        lo: [f64::INFINITY; N],
        hi: [f64::NEG_INFINITY; N],
    };

    /// Returns `true` if this is the [`Aabb::EMPTY`] sentinel (or any box
    /// with an inverted extent).
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..N).any(|d| self.lo[d] > self.hi[d])
    }

    /// Extent along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// Hyper-volume (area for `N = 2`, length for `N = 1`).
    ///
    /// Returns `0.0` for empty boxes.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..N).map(|d| self.extent(d)).product()
    }

    /// Margin: the sum of extents over all dimensions.
    ///
    /// This is the quantity (half-perimeter in 2-D) minimized by the
    /// R\*-tree split-axis selection.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..N).map(|d| self.extent(d)).sum()
    }

    /// Center point of the box.
    #[inline]
    pub fn center(&self) -> [f64; N] {
        let mut c = [0.0; N];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = 0.5 * (self.lo[d] + self.hi[d]);
        }
        c
    }

    /// Returns `true` when the closed boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Aabb<N>) -> bool {
        (0..N).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Returns `true` when `p` lies inside the closed box.
    #[inline]
    pub fn contains_point(&self, p: &[f64; N]) -> bool {
        (0..N).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Aabb<N>) -> bool {
        (0..N).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Aabb<N>) -> Aabb<N> {
        let mut lo = [0.0; N];
        let mut hi = [0.0; N];
        for d in 0..N {
            lo[d] = self.lo[d].min(other.lo[d]);
            hi[d] = self.hi[d].max(other.hi[d]);
        }
        Aabb { lo, hi }
    }

    /// Volume of the overlap region (0 when disjoint).
    #[inline]
    pub fn intersection_volume(&self, other: &Aabb<N>) -> f64 {
        let mut v = 1.0;
        for d in 0..N {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Volume increase required for `self` to absorb `other`.
    ///
    /// This is the R-tree insertion heuristic "least enlargement".
    #[inline]
    pub fn enlargement(&self, other: &Aabb<N>) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Grows the box in place to absorb `other`.
    #[inline]
    pub fn merge(&mut self, other: &Aabb<N>) {
        for d in 0..N {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Smallest box containing every box yielded by the iterator.
    ///
    /// Returns [`Aabb::EMPTY`] for an empty iterator.
    pub fn hull<I: IntoIterator<Item = Aabb<N>>>(boxes: I) -> Aabb<N> {
        boxes.into_iter().fold(Aabb::EMPTY, |acc, b| acc.union(&b))
    }

    /// Squared Euclidean distance from `p` to the nearest point of the box
    /// (0 if `p` is inside).
    pub fn distance_sq_to_point(&self, p: &[f64; N]) -> f64 {
        let mut acc = 0.0;
        for (d, &v) in p.iter().enumerate() {
            let delta = if v < self.lo[d] {
                self.lo[d] - v
            } else if v > self.hi[d] {
                v - self.hi[d]
            } else {
                0.0
            };
            acc += delta * delta;
        }
        acc
    }
}

impl Aabb<2> {
    /// Builds a 2-D box from two corner points given in any order.
    pub fn from_points(a: Point2, b: Point2) -> Self {
        Aabb::new([a.x.min(b.x), a.y.min(b.y)], [a.x.max(b.x), a.y.max(b.y)])
    }

    /// Smallest 2-D box containing every point in the slice.
    ///
    /// Returns [`Aabb::EMPTY`] for an empty slice.
    pub fn hull_of_points(points: &[Point2]) -> Self {
        points
            .iter()
            .fold(Aabb::EMPTY, |acc, p| acc.union(&Aabb::point([p.x, p.y])))
    }

    /// Center of the box as a [`Point2`].
    pub fn center_point(&self) -> Point2 {
        let c = self.center();
        Point2::new(c[0], c[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_margin_center() {
        let b = Aabb::new([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.margin(), 5.0);
        assert_eq!(b.center(), [1.0, 1.5]);
        let iv = Aabb::new([1.0], [4.0]);
        assert_eq!(iv.volume(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid Aabb")]
    fn new_rejects_inverted() {
        let _ = Aabb::new([1.0, 0.0], [0.0, 1.0]);
    }

    #[test]
    fn empty_is_union_identity() {
        let b = Aabb::new([1.0, 2.0], [3.0, 4.0]);
        assert_eq!(Aabb::EMPTY.union(&b), b);
        assert_eq!(b.union(&Aabb::EMPTY), b);
        assert!(Aabb::<2>::EMPTY.is_empty());
        assert_eq!(Aabb::<2>::EMPTY.volume(), 0.0);
        assert_eq!(Aabb::<2>::EMPTY.margin(), 0.0);
        assert!(!Aabb::<2>::EMPTY.intersects(&b));
    }

    #[test]
    fn closed_intersection_semantics() {
        let a = Aabb::new([0.0, 0.0], [1.0, 1.0]);
        let touching = Aabb::new([1.0, 0.0], [2.0, 1.0]);
        let disjoint = Aabb::new([1.5, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&touching));
        assert!(!a.intersects(&disjoint));
        // Touching boxes overlap with zero volume.
        assert_eq!(a.intersection_volume(&touching), 0.0);
        let overlapping = Aabb::new([0.5, 0.5], [1.5, 2.0]);
        assert!((a.intersection_volume(&overlapping) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let outer = Aabb::new([0.0, 0.0], [10.0, 10.0]);
        let inner = Aabb::new([2.0, 2.0], [3.0, 3.0]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains_point(&[0.0, 10.0]));
        assert!(!outer.contains_point(&[10.1, 5.0]));
    }

    #[test]
    fn enlargement_heuristic() {
        let a = Aabb::new([0.0, 0.0], [1.0, 1.0]);
        let inside = Aabb::new([0.2, 0.2], [0.8, 0.8]);
        assert_eq!(a.enlargement(&inside), 0.0);
        let outside = Aabb::new([2.0, 0.0], [3.0, 1.0]);
        // Union is [0,0]..[3,1] with volume 3; enlargement = 2.
        assert!((a.enlargement(&outside) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hull_of_boxes_and_points() {
        let h = Aabb::hull(vec![
            Aabb::new([0.0], [1.0]),
            Aabb::new([5.0], [6.0]),
            Aabb::new([-1.0], [0.0]),
        ]);
        assert_eq!(h, Aabb::new([-1.0], [6.0]));

        let pts = [
            Point2::new(1.0, 5.0),
            Point2::new(-2.0, 0.0),
            Point2::new(3.0, 2.0),
        ];
        let hb = Aabb::hull_of_points(&pts);
        assert_eq!(hb, Aabb::new([-2.0, 0.0], [3.0, 5.0]));
        assert_eq!(Aabb::hull_of_points(&[]), Aabb::EMPTY);
    }

    #[test]
    fn distance_to_point() {
        let b = Aabb::new([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(b.distance_sq_to_point(&[0.5, 0.5]), 0.0);
        assert_eq!(b.distance_sq_to_point(&[2.0, 1.0]), 1.0);
        assert_eq!(b.distance_sq_to_point(&[2.0, 2.0]), 2.0);
    }

    #[test]
    fn merge_in_place() {
        let mut a = Aabb::new([0.0], [1.0]);
        a.merge(&Aabb::new([3.0], [4.0]));
        assert_eq!(a, Aabb::new([0.0], [4.0]));
    }

    #[test]
    fn from_points_any_order() {
        let b = Aabb::from_points(Point2::new(3.0, 1.0), Point2::new(1.0, 4.0));
        assert_eq!(b, Aabb::new([1.0, 1.0], [3.0, 4.0]));
        assert_eq!(b.center_point(), Point2::new(2.0, 2.5));
    }
}
