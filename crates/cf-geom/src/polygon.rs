//! Simple polygons and half-plane clipping.
//!
//! The estimation step of a field value query (paper §3.2, algorithm
//! `Estimate`) computes the *exact* answer regions: the sub-region of each
//! candidate cell where the interpolated value lies inside the query
//! interval. With linear interpolation that region is the cell clipped by
//! two half-planes (`w ≥ a` and `w ≤ b`), which Sutherland–Hodgman
//! clipping computes exactly.

use crate::{Aabb, Point2};

/// A simple polygon given by its vertices in order (either orientation).
///
/// An empty vertex list represents the empty region; polygons with fewer
/// than three vertices have zero area.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polygon {
    /// Vertices in boundary order.
    pub vertices: Vec<Point2>,
}

impl Polygon {
    /// Creates a polygon from vertices in boundary order.
    pub fn new(vertices: Vec<Point2>) -> Self {
        Self { vertices }
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        Self {
            vertices: Vec::new(),
        }
    }

    /// Returns `true` when the polygon has no area-bearing boundary.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Signed area by the shoelace formula (positive for CCW order).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        0.5 * acc
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid of the polygon (area-weighted), or `None` if the polygon
    /// has no area.
    pub fn centroid(&self) -> Option<Point2> {
        let a = self.signed_area();
        if a.abs() < 1e-300 {
            return None;
        }
        let n = self.vertices.len();
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Some(Point2::new(cx / (6.0 * a), cy / (6.0 * a)))
    }

    /// Axis-aligned bounding box of the polygon.
    pub fn bbox(&self) -> Aabb<2> {
        Aabb::hull_of_points(&self.vertices)
    }

    /// Clips the polygon to the half-plane `{p : keep(p) >= 0}` where
    /// `keep` is an affine function of position.
    ///
    /// See [`clip_polygon_halfplane`].
    pub fn clip_halfplane(&self, keep: impl Fn(Point2) -> f64) -> Polygon {
        clip_polygon_halfplane(self, keep)
    }
}

impl From<crate::Triangle> for Polygon {
    fn from(t: crate::Triangle) -> Self {
        Polygon::new(t.vertices.to_vec())
    }
}

/// Sutherland–Hodgman clipping of `poly` against the half-plane
/// `{p : keep(p) >= 0}`.
///
/// `keep` must be an *affine* function of position (a linear field plus a
/// constant); intersection points on edges are then computed exactly by
/// linear interpolation of `keep` values. This is precisely the situation
/// of the estimation step: for a linearly-interpolated cell the functions
/// `w(p) − a` and `b − w(p)` are affine.
pub fn clip_polygon_halfplane(poly: &Polygon, keep: impl Fn(Point2) -> f64) -> Polygon {
    let n = poly.vertices.len();
    if n == 0 {
        return Polygon::empty();
    }
    let mut out = Vec::with_capacity(n + 2);
    for i in 0..n {
        let cur = poly.vertices[i];
        let next = poly.vertices[(i + 1) % n];
        let kc = keep(cur);
        let kn = keep(next);
        if kc >= 0.0 {
            out.push(cur);
        }
        // Edge crosses the boundary: emit the intersection point.
        if (kc > 0.0 && kn < 0.0) || (kc < 0.0 && kn > 0.0) {
            let t = kc / (kc - kn);
            out.push(cur.lerp(next, t));
        }
    }
    Polygon::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triangle;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn shoelace_area() {
        assert!((unit_square().area() - 1.0).abs() < 1e-12);
        assert!(unit_square().signed_area() > 0.0);
        let t: Polygon = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(0.0, 2.0),
        )
        .into();
        assert!((t.area() - 2.0).abs() < 1e-12);
        assert_eq!(Polygon::empty().area(), 0.0);
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().centroid().unwrap();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
        assert_eq!(Polygon::empty().centroid(), None);
    }

    #[test]
    fn clip_keeps_half_of_square() {
        // Keep x >= 0.5.
        let clipped = unit_square().clip_halfplane(|p| p.x - 0.5);
        assert!((clipped.area() - 0.5).abs() < 1e-12);
        for v in &clipped.vertices {
            assert!(v.x >= 0.5 - 1e-12);
        }
    }

    #[test]
    fn clip_fully_inside_and_outside() {
        let sq = unit_square();
        let all = sq.clip_halfplane(|p| p.x + 10.0);
        assert!((all.area() - 1.0).abs() < 1e-12);
        let none = sq.clip_halfplane(|p| -p.x - 10.0);
        assert!(none.is_empty());
    }

    #[test]
    fn clip_with_affine_field_band() {
        // Field w(x, y) = x + y over the unit square; the band
        // 0.5 <= w <= 1.5 removes two corner triangles of area 1/8 each.
        let sq = unit_square();
        let band = sq
            .clip_halfplane(|p| (p.x + p.y) - 0.5)
            .clip_halfplane(|p| 1.5 - (p.x + p.y));
        assert!((band.area() - 0.75).abs() < 1e-12, "area={}", band.area());
    }

    #[test]
    fn clip_boundary_vertices_are_kept() {
        // A vertex exactly on the boundary (keep == 0) is retained once.
        let tri: Polygon = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        )
        .into();
        let clipped = tri.clip_halfplane(|p| p.y); // keep y >= 0: whole triangle
        assert!((clipped.area() - tri.area()).abs() < 1e-12);
        assert_eq!(clipped.vertices.len(), 3);
    }

    #[test]
    fn bbox_of_polygon() {
        let b = unit_square().bbox();
        assert_eq!(b, Aabb::new([0.0, 0.0], [1.0, 1.0]));
    }
}
