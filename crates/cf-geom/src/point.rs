//! 2-D points in the spatial domain of a field.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the 2-D spatial domain of a field.
///
/// Fields in the EDBT 2002 paper are functions over a spatial domain;
/// every workload in this workspace uses a 2-D domain (terrain DEMs and
/// urban-noise TINs), so the spatial point type is fixed at two
/// dimensions. Value-domain geometry is handled separately by
/// [`Interval`](crate::Interval) / [`Aabb`](crate::Aabb).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point2::distance`]; use when only comparisons are
    /// needed (e.g. circumcircle tests).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// 2-D cross product `(b - self) × (c - self)`.
    ///
    /// Positive when `self → b → c` turns counter-clockwise; this is the
    /// orientation predicate used by the Delaunay triangulator and the
    /// polygon clipper.
    #[inline]
    pub fn cross(self, b: Point2, c: Point2) -> f64 {
        (b.x - self.x) * (c.y - self.y) - (b.y - self.y) * (c.x - self.x)
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`).
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        self.lerp(other, 0.5)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let ccw = Point2::new(0.0, 1.0);
        let cw = Point2::new(0.0, -1.0);
        assert!(a.cross(b, ccw) > 0.0);
        assert!(a.cross(b, cw) < 0.0);
        let collinear = Point2::new(2.0, 0.0);
        assert_eq!(a.cross(b, collinear), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point2::new(2.0, 4.0));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(0.5, -1.0);
        assert_eq!(a + b, Point2::new(1.5, 1.0));
        assert_eq!(a - b, Point2::new(0.5, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
    }

    #[test]
    fn finiteness_check() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }
}
