//! Geometry primitives shared across the `contfield` workspace.
//!
//! This crate is dependency-free and provides the small set of geometric
//! types the continuous-field database is built on:
//!
//! * [`Point2`] — a point in the 2-D spatial domain.
//! * [`Aabb`] — an axis-aligned bounding box generic over dimension `N`,
//!   used both for spatial MBRs (`N = 2`) and value-domain MBRs
//!   (`N = 1` for scalar fields, `N = k` for vector fields).
//! * [`Interval`] — a closed 1-D value interval, the unit the EDBT 2002
//!   paper indexes ("the interval of all possible values inside a cell").
//! * [`Triangle`] — a triangle with barycentric-coordinate helpers, the
//!   cell shape of TINs and the unit of exact iso-band extraction.
//! * [`Polygon`] — a simple polygon with Sutherland–Hodgman half-plane
//!   clipping, used by the estimation step to compute exact answer
//!   regions of field value queries.

//!
//! # Example
//!
//! ```
//! use cf_geom::{Interval, Point2, Polygon, Triangle};
//!
//! // The value interval of a cell with sample values 20, 35, 30:
//! let iv = Interval::hull(&[20.0, 35.0, 30.0]).unwrap();
//! assert!(iv.intersects(Interval::new(33.0, 40.0)));
//!
//! // The estimation step in miniature: clip a triangle to the band
//! // where an affine field w(x, y) = x is between 0.25 and 0.5.
//! let tri: Polygon = Triangle::new(
//!     Point2::new(0.0, 0.0),
//!     Point2::new(1.0, 0.0),
//!     Point2::new(0.0, 1.0),
//! ).into();
//! let region = tri
//!     .clip_halfplane(|p| p.x - 0.25)
//!     .clip_halfplane(|p| 0.5 - p.x);
//! assert!(region.area() > 0.0 && region.area() < tri.area());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod interval;
mod point;
mod polygon;
mod triangle;

pub use aabb::Aabb;
pub use interval::Interval;
pub use point::Point2;
pub use polygon::{clip_polygon_halfplane, Polygon};
pub use triangle::Triangle;

/// Tolerance used for geometric predicates on `f64` coordinates.
///
/// The workloads in this workspace operate on normalized domains
/// (coordinates and values in roughly `[0, 1]` or small integer ranges),
/// so an absolute epsilon is appropriate.
pub const EPSILON: f64 = 1e-12;
