//! A dependency-free blocking HTTP endpoint for the telemetry plane.
//!
//! [`MetricsServer`] wraps a `std::net::TcpListener` and serves seven
//! routes, one request per connection (`Connection: close`):
//!
//! * `/metrics` — the Prometheus text snapshot from
//!   [`MetricsRegistry::render_text`](crate::MetricsRegistry::render_text)
//! * `/traces` — the Chrome-trace dump plus retained slow-query
//!   reports, from [`export::trace_dump_json`](crate::export::trace_dump_json)
//! * `/slo` — the sliding-window SLO snapshot (bucket counts, windowed
//!   p50/p99, objectives with burn rates) from
//!   [`SloTracker::to_json`](crate::SloTracker::to_json)
//! * `/explain/recent` — the retained ring of per-query EXPLAIN
//!   records as a JSON array
//! * `/heatmap` — the spatial heatmap's per-bucket counts from
//!   [`HeatMap::to_json`](crate::HeatMap::to_json)
//! * `/workload` — the flight recorder's retained query ring from
//!   [`FlightRecorder::to_json`](crate::FlightRecorder::to_json)
//! * `/` — a plain-text index of the above
//!
//! This is deliberately *not* a general HTTP server: it reads one
//! request line, ignores headers, and answers. That is exactly what a
//! Prometheus scrape, `curl`, or the `fielddb top` client needs, and it
//! keeps the crate dependency-free. [`http_get`] is the matching
//! minimal client.

use crate::export::trace_dump_json;
use crate::MetricsRegistry;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-connection socket timeout: a stalled peer cannot wedge the
/// single-threaded serve loop for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The blocking telemetry HTTP server. See the module docs for routes.
#[derive(Debug)]
pub struct MetricsServer {
    listener: TcpListener,
}

impl MetricsServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free
    /// port — read it back with [`MetricsServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves requests from `registry`, blocking the calling thread.
    /// With `max_requests = Some(n)` the loop returns cleanly after
    /// answering `n` requests — the hook the CLI smoke test and CI use
    /// to shut the server down deterministically. `None` serves
    /// forever. Returns the number of requests answered.
    pub fn serve(&self, registry: &MetricsRegistry, max_requests: Option<u64>) -> io::Result<u64> {
        let mut served = 0u64;
        while max_requests.map(|n| served < n).unwrap_or(true) {
            let (stream, _) = self.listener.accept()?;
            // A bad peer fails its own request, not the server.
            if let Err(err) = handle(stream, registry) {
                if err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut
                {
                    continue;
                }
                return Err(err);
            }
            served += 1;
        }
        Ok(served)
    }
}

fn handle(stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line
        .split_whitespace()
        .nth(1)
        .unwrap_or("/")
        .to_owned();
    // Drain headers so the peer sees a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut stream = reader.into_inner();
    let (status, content_type, body) = route(&path, registry);
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(path: &str, registry: &MetricsRegistry) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_text(),
        ),
        "/traces" => {
            let tracer = registry.tracer();
            (
                "200 OK",
                "application/json; charset=utf-8",
                trace_dump_json(&tracer.events(), &tracer.slow_reports()),
            )
        }
        "/slo" => (
            "200 OK",
            "application/json; charset=utf-8",
            registry.slo().to_json().render(),
        ),
        "/explain/recent" => (
            "200 OK",
            "application/json; charset=utf-8",
            crate::Json::Arr(
                registry
                    .tracer()
                    .recent_explains()
                    .iter()
                    .map(|e| e.to_json())
                    .collect(),
            )
            .render(),
        ),
        "/heatmap" => (
            "200 OK",
            "application/json; charset=utf-8",
            registry.heat().to_json().render(),
        ),
        "/workload" => (
            "200 OK",
            "application/json; charset=utf-8",
            registry.recorder().to_json().render(),
        ),
        "/" => (
            "200 OK",
            "text/plain; charset=utf-8",
            "fielddb telemetry endpoint\n\
             /metrics         Prometheus text snapshot\n\
             /traces          Chrome-trace JSON (traceEvents + slowQueries)\n\
             /slo             sliding-window SLO snapshot (buckets, p50/p99, burn rates)\n\
             /explain/recent  ring of per-query EXPLAIN records\n\
             /heatmap         spatial heatmap buckets (examined/qualifying/pages)\n\
             /workload        flight-recorder query ring (replayable workload)\n"
                .to_owned(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no such route: {path}\n"),
        ),
    }
}

/// Minimal blocking HTTP GET against a [`MetricsServer`] (or anything
/// speaking HTTP/1.1 with `Connection: close`). Returns the body;
/// non-2xx statuses become errors carrying the status line.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut stream = stream;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let ok = status_line
        .split_whitespace()
        .nth(1)
        .map(|code| code.starts_with('2'))
        .unwrap_or(false);
    if !ok {
        return Err(io::Error::other(format!("HTTP error: {status_line}")));
    }
    Ok(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::parse_prometheus;
    use crate::Json;

    fn serve_n(
        registry: std::sync::Arc<MetricsRegistry>,
        n: u64,
    ) -> (SocketAddr, std::thread::JoinHandle<io::Result<u64>>) {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.serve(&registry, Some(n)));
        (addr, handle)
    }

    #[test]
    fn serves_metrics_and_shuts_down() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.counter("scrapes_total").add(41);
        let (addr, handle) = serve_n(reg, 2);
        let body = http_get(addr, "/metrics").expect("scrape");
        let snap = parse_prometheus(&body).expect("parseable snapshot");
        assert_eq!(snap.value("scrapes_total"), Some(41.0));
        let index = http_get(addr, "/").expect("index");
        assert!(index.contains("/metrics"), "{index}");
        // max_requests reached → serve() returns.
        assert_eq!(handle.join().expect("no panic").expect("serve"), 2);
    }

    #[test]
    fn serves_trace_dump_as_json() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.tracer().set_enabled(true);
        let qid = reg.tracer().next_query_id();
        drop(reg.tracer().span(qid, "query"));
        let (addr, handle) = serve_n(reg.clone(), 1);
        let body = http_get(addr, "/traces").expect("scrape");
        let doc = Json::parse(&body).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(events.len(), 1, "{body}");
        #[cfg(feature = "obs-off")]
        assert!(events.is_empty(), "{body}");
        assert!(doc.get("slowQueries").is_some(), "{body}");
        handle.join().expect("no panic").expect("serve");
    }

    #[test]
    fn serves_slo_and_explain_rings_as_json() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.slo().add_objective("p99-2ms", 2_000_000, 0.99);
        reg.slo().record_ns(1_000);
        reg.tracer().set_enabled(true);
        reg.tracer().finish_query_explained(
            0,
            1_000,
            &[],
            Some(crate::ExplainRecord {
                query_id: 0,
                index: crate::Label::new("I-Hilbert"),
                plan: "probe",
                plane: "paged",
                curve: crate::Label::new("hilbert"),
                band_lo: 0.0,
                band_hi: 1.0,
                subfields: 1,
                cells_examined: 4,
                cells_qualifying: 4,
                filter_pages: 1,
                refine_pages: 1,
                filter_ns: 400,
                refine_ns: 500,
                total_ns: 1_000,
                epoch: 0,
                pool_hits: 2,
                pool_misses: 0,
            }),
        );
        let (addr, handle) = serve_n(reg, 2);
        let slo = http_get(addr, "/slo").expect("slo");
        let doc = Json::parse(&slo).expect("valid slo json");
        assert!(doc.get("buckets").and_then(Json::as_arr).is_some(), "{slo}");
        assert!(doc.get("p99_ns").is_some(), "{slo}");
        let objectives = doc
            .get("objectives")
            .and_then(Json::as_arr)
            .expect("objectives");
        assert_eq!(objectives.len(), 1, "{slo}");
        let recent = http_get(addr, "/explain/recent").expect("explain");
        let doc = Json::parse(&recent).expect("valid explain json");
        let arr = doc.as_arr().expect("array");
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(arr.len(), 1, "{recent}");
            assert_eq!(arr[0].get("plan").and_then(Json::as_str), Some("probe"));
        }
        #[cfg(feature = "obs-off")]
        assert!(arr.is_empty(), "{recent}");
        handle.join().expect("no panic").expect("serve");
    }

    #[test]
    fn serves_heatmap_and_workload_as_json() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.heat().set_cell_domain(256);
        reg.heat()
            .table(crate::HeatKind::Examined)
            .bump_range(0, 64);
        reg.recorder()
            .record(0.25, 0.75, "frozen", "hilbert", 0, 0xBEEF);
        let (addr, handle) = serve_n(reg, 2);
        let heat = http_get(addr, "/heatmap").expect("heatmap");
        let doc = Json::parse(&heat).expect("valid heatmap json");
        assert_eq!(doc.get("buckets").and_then(Json::as_f64), Some(64.0));
        let kinds = doc.get("kinds").and_then(Json::as_arr).expect("kinds");
        assert_eq!(kinds.len(), 3, "{heat}");
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(kinds[0].get("total").and_then(Json::as_f64), Some(64.0));
        let workload = http_get(addr, "/workload").expect("workload");
        let doc = Json::parse(&workload).expect("valid workload json");
        assert_eq!(doc.get("version").and_then(Json::as_f64), Some(1.0));
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(1.0));
        #[cfg(feature = "obs-off")]
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(0.0));
        handle.join().expect("no panic").expect("serve");
    }

    #[test]
    fn unknown_route_is_404_and_does_not_kill_the_server() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let (addr, handle) = serve_n(reg, 2);
        let err = http_get(addr, "/nope").expect_err("404 should error");
        assert!(err.to_string().contains("404"), "{err}");
        // The server answered the 404 and still serves the next request.
        http_get(addr, "/metrics").expect("scrape after 404");
        handle.join().expect("no panic").expect("serve");
    }
}
