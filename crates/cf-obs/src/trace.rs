//! Per-query tracing: span events, a bounded ring buffer, and the
//! slow-query profiler.
//!
//! A [`Tracer`] hands out monotonically increasing query ids and
//! records [`TraceEvent`]s — one per query phase, carrying the page
//! count and wall nanoseconds of the phase — into a bounded ring.
//! Queries whose total wall time crosses the configured threshold get a
//! [`SlowQueryReport`] with their full phase breakdown, kept in a
//! second, smaller ring for the CLI / examples to drain.
//!
//! The hot path is allocation-free: phase events are assembled on the
//! caller's stack, span nesting depth lives in a thread-local `Cell`,
//! and when tracing is disabled the cost per query is one relaxed
//! atomic load. Under the `obs-off` feature every recording entry point
//! compiles to a no-op.

use crate::explain::{ExplainRecord, EXPLAIN_RING_CAPACITY};
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Maximum span events retained in the trace ring.
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Maximum slow-query reports retained.
pub const SLOW_RING_CAPACITY: usize = 64;

/// One traced query phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Query id the phase belongs to.
    pub query_id: u64,
    /// Phase name (`"filter"`, `"refine"`, ...).
    pub phase: &'static str,
    /// Logical pages read during the phase.
    pub pages: u64,
    /// Wall nanoseconds spent in the phase.
    pub nanos: u64,
    /// Span nesting depth at record time (0 = top level).
    pub depth: u32,
}

/// The full phase breakdown of a query that crossed the slow-query
/// threshold.
#[derive(Debug, Clone)]
pub struct SlowQueryReport {
    /// Query id.
    pub query_id: u64,
    /// Total wall nanoseconds of the query.
    pub total_ns: u64,
    /// Phase events, in execution order.
    pub phases: Vec<TraceEvent>,
    /// The structured EXPLAIN record of the offending query, when the
    /// pipeline assembled one.
    pub explain: Option<ExplainRecord>,
}

impl fmt::Display for SlowQueryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slow query #{}: {:.1} us total",
            self.query_id,
            self.total_ns as f64 / 1e3
        )?;
        for p in &self.phases {
            write!(
                f,
                "; {}: {} pages, {:.1} us",
                p.phase,
                p.pages,
                p.nanos as f64 / 1e3
            )?;
        }
        Ok(())
    }
}

thread_local! {
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A started wall clock. Under `obs-off` starting and reading it are
/// free (it always reads zero), so instrumented code needs no `cfg`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    #[inline]
    pub fn start() -> Self {
        Self {
            #[cfg(not(feature = "obs-off"))]
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`] (saturating; 0 under
    /// `obs-off`).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.start.elapsed().as_nanos() as u64
        }
        #[cfg(feature = "obs-off")]
        {
            0
        }
    }
}

/// Per-query trace state. Lives inside a
/// [`MetricsRegistry`](crate::MetricsRegistry); access it via
/// `registry.tracer()`.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    /// Threshold in nanoseconds; `u64::MAX` disables slow-query
    /// capture. Shared behind an `Arc` so the SLO tracker's adaptive
    /// mode can steer it (see [`crate::SloTracker::set_adaptive`]).
    slow_threshold_ns: Arc<AtomicU64>,
    next_query: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
    slow: Mutex<VecDeque<SlowQueryReport>>,
    explains: Mutex<VecDeque<ExplainRecord>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            slow_threshold_ns: Arc::new(AtomicU64::new(u64::MAX)),
            next_query: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
            explains: Mutex::new(VecDeque::new()),
        }
    }
}

impl Tracer {
    /// Turns span recording on or off. Off (the default) costs one
    /// relaxed load per query.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being recorded. Always `false` under `obs-off`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "obs-off")]
        {
            false
        }
        #[cfg(not(feature = "obs-off"))]
        {
            self.enabled.load(Ordering::Relaxed)
        }
    }

    /// Sets the slow-query threshold; queries at least this slow get a
    /// full [`SlowQueryReport`]. Requires tracing to be enabled.
    pub fn set_slow_threshold(&self, threshold: std::time::Duration) {
        self.slow_threshold_ns
            .store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Current slow-query threshold in nanoseconds (`u64::MAX` = off).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// The shared threshold cell, for wiring into the SLO tracker's
    /// adaptive mode.
    pub(crate) fn threshold_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.slow_threshold_ns)
    }

    /// Claims the next query id.
    #[inline]
    pub fn next_query_id(&self) -> u64 {
        self.next_query.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one phase event into the bounded ring (no-op when
    /// disabled).
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.events.lock().expect("trace ring poisoned");
        if ring.len() >= TRACE_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Opens a hierarchical span: the returned guard records a
    /// [`TraceEvent`] when dropped, tagged with the nesting depth at
    /// open time. Attach a page count with [`Span::set_pages`].
    pub fn span(&self, query_id: u64, phase: &'static str) -> Span<'_> {
        let depth = SPAN_DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        Span {
            tracer: self,
            query_id,
            phase,
            pages: 0,
            depth,
            clock: Stopwatch::start(),
        }
    }

    /// Finishes a query: when tracing is enabled, checks `total_ns`
    /// against the slow threshold and, if crossed, captures the full
    /// phase breakdown (this outlier path may allocate).
    pub fn finish_query(&self, query_id: u64, total_ns: u64, phases: &[TraceEvent]) {
        self.finish_query_explained(query_id, total_ns, phases, None);
    }

    /// [`Tracer::finish_query`] with the query's EXPLAIN record: the
    /// record is pushed into the bounded EXPLAIN ring, and attached to
    /// the [`SlowQueryReport`] if the query crossed the slow threshold.
    pub fn finish_query_explained(
        &self,
        query_id: u64,
        total_ns: u64,
        phases: &[TraceEvent],
        explain: Option<ExplainRecord>,
    ) {
        if !self.is_enabled() {
            return;
        }
        if let Some(rec) = explain {
            let mut ring = self.explains.lock().expect("explain ring poisoned");
            if ring.len() >= EXPLAIN_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(rec);
        }
        if total_ns < self.slow_threshold_ns() {
            return;
        }
        let mut ring = self.slow.lock().expect("slow ring poisoned");
        if ring.len() >= SLOW_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(SlowQueryReport {
            query_id,
            total_ns,
            phases: phases.to_vec(),
            explain,
        });
    }

    /// Snapshot of the span-event ring (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Snapshot of the retained slow-query reports (oldest first)
    /// without draining them — the HTTP `/traces` endpoint uses this so
    /// repeated scrapes see the same outliers.
    pub fn slow_reports(&self) -> Vec<SlowQueryReport> {
        self.slow
            .lock()
            .expect("slow ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Drains every pending slow-query report (oldest first).
    pub fn take_slow_reports(&self) -> Vec<SlowQueryReport> {
        self.slow
            .lock()
            .expect("slow ring poisoned")
            .drain(..)
            .collect()
    }

    /// Snapshot of the retained EXPLAIN records (oldest first) without
    /// draining them — the HTTP `/explain/recent` endpoint uses this.
    pub fn recent_explains(&self) -> Vec<ExplainRecord> {
        self.explains
            .lock()
            .expect("explain ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// The most recently recorded EXPLAIN record, if any.
    pub fn last_explain(&self) -> Option<ExplainRecord> {
        self.explains
            .lock()
            .expect("explain ring poisoned")
            .back()
            .copied()
    }

    /// Clears every ring; enablement, threshold and the query-id
    /// sequence are preserved.
    pub fn clear(&self) {
        self.events.lock().expect("trace ring poisoned").clear();
        self.slow.lock().expect("slow ring poisoned").clear();
        self.explains.lock().expect("explain ring poisoned").clear();
    }
}

/// A live hierarchical span; see [`Tracer::span`].
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    query_id: u64,
    phase: &'static str,
    pages: u64,
    depth: u32,
    clock: Stopwatch,
}

impl Span<'_> {
    /// Attaches the phase's logical page count to the event recorded on
    /// drop.
    pub fn set_pages(&mut self, pages: u64) {
        self.pages = pages;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        self.tracer.record(TraceEvent {
            query_id: self.query_id,
            phase: self.phase,
            pages: self.pages,
            nanos: self.clock.elapsed_ns(),
            depth: self.depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(not(feature = "obs-off"))]
    use std::time::Duration;

    fn ev(query_id: u64, phase: &'static str, nanos: u64) -> TraceEvent {
        TraceEvent {
            query_id,
            phase,
            pages: 0,
            nanos,
            depth: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::default();
        t.record(ev(0, "filter", 10));
        t.finish_query(0, u64::MAX, &[ev(0, "filter", 10)]);
        assert!(t.events().is_empty());
        assert!(t.take_slow_reports().is_empty());
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let t = Tracer::default();
        t.set_enabled(true);
        for i in 0..(TRACE_RING_CAPACITY as u64 + 10) {
            t.record(ev(i, "filter", i));
        }
        let events = t.events();
        assert_eq!(events.len(), TRACE_RING_CAPACITY);
        assert_eq!(events.first().map(|e| e.query_id), Some(10));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn slow_queries_cross_the_threshold_only() {
        let t = Tracer::default();
        t.set_enabled(true);
        t.set_slow_threshold(Duration::from_nanos(100));
        t.finish_query(1, 99, &[ev(1, "filter", 99)]);
        t.finish_query(2, 100, &[ev(2, "filter", 60), ev(2, "refine", 40)]);
        let reports = t.take_slow_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].query_id, 2);
        assert_eq!(reports[0].phases.len(), 2);
        // Drained.
        assert!(t.take_slow_reports().is_empty());
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn spans_record_on_drop_with_nesting_depth() {
        let t = Tracer::default();
        t.set_enabled(true);
        let qid = t.next_query_id();
        {
            let _outer = t.span(qid, "query");
            let mut inner = t.span(qid, "filter");
            inner.set_pages(7);
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].phase, "filter");
        assert_eq!(events[0].pages, 7);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].phase, "query");
        assert_eq!(events[1].depth, 0);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn everything_is_inert_under_obs_off() {
        let t = Tracer::default();
        t.set_enabled(true);
        assert!(!t.is_enabled());
        t.record(ev(0, "filter", 1));
        assert!(t.events().is_empty());
        t.finish_query_explained(0, u64::MAX, &[], Some(sample_explain(0)));
        assert!(t.recent_explains().is_empty());
        assert!(t.last_explain().is_none());
    }

    fn sample_explain(query_id: u64) -> crate::ExplainRecord {
        crate::ExplainRecord {
            query_id,
            index: crate::explain::Label::new("I-Hilbert"),
            plan: "probe",
            plane: "paged",
            curve: crate::explain::Label::new("hilbert"),
            band_lo: 0.1,
            band_hi: 0.2,
            subfields: 3,
            cells_examined: 10,
            cells_qualifying: 7,
            filter_pages: 1,
            refine_pages: 2,
            filter_ns: 100,
            refine_ns: 200,
            total_ns: 350,
            epoch: 0,
            pool_hits: 3,
            pool_misses: 0,
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn explain_ring_is_bounded_and_attaches_to_slow_reports() {
        use crate::explain::EXPLAIN_RING_CAPACITY;
        let t = Tracer::default();
        t.set_enabled(true);
        t.set_slow_threshold(Duration::from_nanos(300));
        for i in 0..(EXPLAIN_RING_CAPACITY as u64 + 5) {
            t.finish_query_explained(i, 350, &[ev(i, "filter", 100)], Some(sample_explain(i)));
        }
        let explains = t.recent_explains();
        assert_eq!(explains.len(), EXPLAIN_RING_CAPACITY);
        assert_eq!(explains.first().map(|e| e.query_id), Some(5));
        assert_eq!(
            t.last_explain().map(|e| e.query_id),
            Some(EXPLAIN_RING_CAPACITY as u64 + 4)
        );
        let slow = t.take_slow_reports();
        let last = slow.last().expect("slow captured");
        assert_eq!(
            last.explain.map(|e| e.query_id),
            Some(EXPLAIN_RING_CAPACITY as u64 + 4)
        );
        // Fast queries still record their EXPLAIN without a report.
        t.clear();
        t.finish_query_explained(99, 10, &[], Some(sample_explain(99)));
        assert_eq!(t.recent_explains().len(), 1);
        assert!(t.take_slow_reports().is_empty());
    }

    #[test]
    fn report_display_is_readable() {
        let r = SlowQueryReport {
            query_id: 3,
            total_ns: 123_400,
            phases: vec![TraceEvent {
                query_id: 3,
                phase: "filter",
                pages: 5,
                nanos: 23_400,
                depth: 0,
            }],
            explain: None,
        };
        let s = r.to_string();
        assert!(s.contains("slow query #3"), "{s}");
        assert!(s.contains("filter: 5 pages"), "{s}");
    }
}
