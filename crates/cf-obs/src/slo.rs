//! Sliding-window latency SLO tracking.
//!
//! A [`SloTracker`] keeps a ring of [`SLO_WINDOW_SLOTS`] fixed-bucket
//! latency histograms. The ring is rotated on a **logical clock** — one
//! tick per recorded observation, a new slot every `rotate_every`
//! ticks — so the window semantics are deterministic and independent of
//! wall time: the "window" is always the last
//! `SLO_WINDOW_SLOTS × rotate_every` observations (at most; recycled
//! slots are cleared lazily on first write).
//!
//! Windowed quantiles are estimated by merging the bucket counts of
//! every live slot and walking the cumulative distribution:
//!
//! > `q(φ)` = the upper bound of the first bucket whose cumulative
//! > count reaches `⌈φ · total⌉`; an estimate landing in the overflow
//! > (+Inf) bucket reports 4× the last finite bound (one more step of
//! > the power-of-4 bucket ladder).
//!
//! That rule is exactly recomputable offline from the bucket counts the
//! tracker exports — `/slo` serves them and the property tests in this
//! module re-derive the quantile independently.
//!
//! Latency **objectives** (`name`, `threshold_ns`, `target`) ride the
//! same observation stream: each observation above the threshold bumps
//! a breach counter, and the burn rate reports how fast the error
//! budget `1 − target` is being consumed (burn rate 1.0 = exactly on
//! budget, >1 = burning faster than the objective allows).
//!
//! When **adaptive slow-query capture** is enabled the tracker stores
//! the current windowed p99 into the tracer's slow-threshold cell at
//! every slot rotation, so the profiler traces exactly the queries
//! slower than the last window's p99 instead of a hand-tuned constant.
//!
//! Under `obs-off`, [`SloTracker::record_ns`] compiles to a no-op and
//! every estimate reports zero.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of histogram slots in the sliding window.
pub const SLO_WINDOW_SLOTS: usize = 8;

/// Default observations per slot before the ring rotates.
pub const SLO_ROTATE_EVERY: u64 = 256;

/// Default floor for the adaptive slow-query threshold (1 µs): keeps a
/// cold window from tracing literally every query.
pub const SLO_ADAPTIVE_FLOOR_NS: u64 = 1_000;

/// One latency objective: "fraction `target` of queries complete
/// within `threshold_ns`".
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjective {
    /// Objective name, e.g. `"p99-2ms"`.
    pub name: String,
    /// Latency threshold in nanoseconds.
    pub threshold_ns: u64,
    /// Target fraction in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
}

#[derive(Debug)]
struct ObjectiveState {
    objective: SloObjective,
    observed: AtomicU64,
    breaches: AtomicU64,
}

#[derive(Debug)]
struct SloInner {
    /// Finite bucket upper bounds (ns), ascending; an implicit +Inf
    /// overflow bucket follows.
    bounds: Vec<f64>,
    /// `SLO_WINDOW_SLOTS × (bounds.len() + 1)` bucket counters.
    counts: Vec<AtomicU64>,
    /// Which logical window each slot currently holds (`u64::MAX` =
    /// untouched); used to clear recycled slots lazily.
    slot_window: Vec<AtomicU64>,
    /// Logical clock: one tick per observation.
    clock: AtomicU64,
    rotate_every: u64,
    objectives: RwLock<Vec<ObjectiveState>>,
    adaptive: AtomicBool,
    adaptive_floor_ns: AtomicU64,
    /// The tracer's slow-threshold cell, when bound.
    threshold_cell: Mutex<Option<Arc<AtomicU64>>>,
}

/// Sliding-window latency tracker; see the module docs. Cheap to clone
/// (shared state behind an `Arc`).
#[derive(Debug, Clone)]
pub struct SloTracker {
    inner: Arc<SloInner>,
}

impl Default for SloTracker {
    fn default() -> Self {
        Self::new(&crate::NS_BUCKETS)
    }
}

impl SloTracker {
    /// Builds a tracker over the given finite bucket bounds (ns).
    pub fn new(bounds: &[f64]) -> Self {
        Self::with_rotation(bounds, SLO_ROTATE_EVERY)
    }

    /// Builds a tracker rotating every `rotate_every` observations.
    pub fn with_rotation(bounds: &[f64], rotate_every: u64) -> Self {
        let nb = bounds.len() + 1;
        Self {
            inner: Arc::new(SloInner {
                bounds: bounds.to_vec(),
                counts: (0..SLO_WINDOW_SLOTS * nb)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                slot_window: (0..SLO_WINDOW_SLOTS)
                    .map(|_| AtomicU64::new(u64::MAX))
                    .collect(),
                clock: AtomicU64::new(0),
                rotate_every: rotate_every.max(1),
                objectives: RwLock::new(Vec::new()),
                adaptive: AtomicBool::new(false),
                adaptive_floor_ns: AtomicU64::new(SLO_ADAPTIVE_FLOOR_NS),
                threshold_cell: Mutex::new(None),
            }),
        }
    }

    /// Records one query latency. No-op under `obs-off`.
    #[cfg(not(feature = "obs-off"))]
    pub fn record_ns(&self, ns: u64) {
        let inner = &self.inner;
        let tick = inner.clock.fetch_add(1, Ordering::Relaxed);
        let window = tick / inner.rotate_every;
        let slot = (window as usize) % SLO_WINDOW_SLOTS;
        let nb = inner.bounds.len() + 1;
        if inner.slot_window[slot].swap(window, Ordering::Relaxed) != window {
            // First write into a recycled slot: clear its expired
            // counts, and drive the adaptive threshold off the window
            // that just closed.
            for c in &inner.counts[slot * nb..(slot + 1) * nb] {
                c.store(0, Ordering::Relaxed);
            }
            self.refresh_adaptive_threshold();
        }
        let v = ns as f64;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[slot * nb + idx].fetch_add(1, Ordering::Relaxed);
        for o in inner.objectives.read().expect("objectives poisoned").iter() {
            o.observed.fetch_add(1, Ordering::Relaxed);
            if ns > o.objective.threshold_ns {
                o.breaches.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one query latency. No-op under `obs-off`.
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn record_ns(&self, _ns: u64) {}

    /// Total observations ever recorded (the logical clock).
    pub fn observations(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Observations per slot before the ring rotates.
    pub fn rotate_every(&self) -> u64 {
        self.inner.rotate_every
    }

    /// Cumulative bucket counts merged across every live window slot:
    /// `(upper_bound_ns, cumulative_count)` pairs ending with the +Inf
    /// overflow bucket. This is exactly the distribution the windowed
    /// quantiles are computed from.
    pub fn windowed_cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let inner = &self.inner;
        let nb = inner.bounds.len() + 1;
        let mut merged = vec![0u64; nb];
        for slot in 0..SLO_WINDOW_SLOTS {
            // Skip slots still holding an expired window (they are
            // cleared lazily on their next write).
            let held = inner.slot_window[slot].load(Ordering::Relaxed);
            if held == u64::MAX {
                continue;
            }
            let current = inner.clock.load(Ordering::Relaxed) / inner.rotate_every;
            if current >= SLO_WINDOW_SLOTS as u64 && held + (SLO_WINDOW_SLOTS as u64) <= current {
                continue;
            }
            for (i, m) in merged.iter_mut().enumerate() {
                *m += inner.counts[slot * nb + i].load(Ordering::Relaxed);
            }
        }
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(nb);
        for (i, m) in merged.iter().enumerate() {
            cum += m;
            let bound = inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }

    /// Windowed quantile estimate in nanoseconds for `q ∈ (0, 1]`:
    /// the upper bound of the first bucket whose cumulative count
    /// reaches `⌈q · total⌉`. The +Inf overflow bucket reports 4× the
    /// last finite bound. Returns 0 on an empty window.
    pub fn windowed_quantile_ns(&self, q: f64) -> u64 {
        let buckets = self.windowed_cumulative_buckets();
        let total = buckets.last().map(|&(_, c)| c).unwrap_or(0);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        for &(bound, cum) in &buckets {
            if cum >= rank {
                if bound.is_finite() {
                    return bound as u64;
                }
                let last = self.inner.bounds.last().copied().unwrap_or(0.0);
                return (last * 4.0) as u64;
            }
        }
        0
    }

    /// Windowed p50 estimate (ns).
    pub fn p50_ns(&self) -> u64 {
        self.windowed_quantile_ns(0.50)
    }

    /// Windowed p99 estimate (ns).
    pub fn p99_ns(&self) -> u64 {
        self.windowed_quantile_ns(0.99)
    }

    /// Replaces the configured latency objectives (burn counters reset).
    pub fn set_objectives(&self, objectives: Vec<SloObjective>) {
        let states = objectives
            .into_iter()
            .map(|objective| ObjectiveState {
                objective,
                observed: AtomicU64::new(0),
                breaches: AtomicU64::new(0),
            })
            .collect();
        *self.inner.objectives.write().expect("objectives poisoned") = states;
    }

    /// Adds one latency objective, keeping existing ones.
    pub fn add_objective(&self, name: &str, threshold_ns: u64, target: f64) {
        self.inner
            .objectives
            .write()
            .expect("objectives poisoned")
            .push(ObjectiveState {
                objective: SloObjective {
                    name: name.to_string(),
                    threshold_ns,
                    target,
                },
                observed: AtomicU64::new(0),
                breaches: AtomicU64::new(0),
            });
    }

    /// `(objective, observed, breaches, burn_rate)` for every
    /// configured objective.
    pub fn objective_stats(&self) -> Vec<(SloObjective, u64, u64, f64)> {
        self.inner
            .objectives
            .read()
            .expect("objectives poisoned")
            .iter()
            .map(|o| {
                let observed = o.observed.load(Ordering::Relaxed);
                let breaches = o.breaches.load(Ordering::Relaxed);
                let budget = 1.0 - o.objective.target;
                let burn = if observed == 0 || budget <= 0.0 {
                    0.0
                } else {
                    (breaches as f64 / observed as f64) / budget
                };
                (o.objective.clone(), observed, breaches, burn)
            })
            .collect()
    }

    /// Binds the tracer's slow-threshold cell so adaptive mode can
    /// steer it; called by the registry at construction.
    pub fn bind_threshold(&self, cell: Arc<AtomicU64>) {
        *self.inner.threshold_cell.lock().expect("cell poisoned") = Some(cell);
    }

    /// Enables or disables the adaptive slow-query threshold (trace
    /// queries slower than the current windowed p99, refreshed at every
    /// slot rotation).
    pub fn set_adaptive(&self, on: bool) {
        self.inner.adaptive.store(on, Ordering::Relaxed);
        if on {
            self.refresh_adaptive_threshold();
        }
    }

    /// Whether the adaptive threshold is on.
    pub fn adaptive(&self) -> bool {
        self.inner.adaptive.load(Ordering::Relaxed)
    }

    /// Sets the floor for the adaptive threshold (default 1 µs).
    pub fn set_adaptive_floor_ns(&self, ns: u64) {
        self.inner.adaptive_floor_ns.store(ns, Ordering::Relaxed);
    }

    /// Recomputes the windowed p99 and stores it into the bound
    /// slow-threshold cell, when adaptive mode is on and the window has
    /// data. Invoked automatically at slot rotations.
    pub fn refresh_adaptive_threshold(&self) {
        if !self.adaptive() {
            return;
        }
        let p99 = self.p99_ns();
        if p99 == 0 {
            return;
        }
        let floor = self.inner.adaptive_floor_ns.load(Ordering::Relaxed);
        if let Some(cell) = self
            .inner
            .threshold_cell
            .lock()
            .expect("cell poisoned")
            .as_ref()
        {
            cell.store(p99.max(floor), Ordering::Relaxed);
        }
    }

    /// The currently bound slow-threshold value, if a cell is bound.
    pub fn bound_threshold_ns(&self) -> Option<u64> {
        self.inner
            .threshold_cell
            .lock()
            .expect("cell poisoned")
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Clears every slot, the logical clock, and objective burn
    /// counters; configuration (objectives, adaptive mode, binding) is
    /// preserved.
    pub fn reset(&self) {
        let inner = &self.inner;
        for c in &inner.counts {
            c.store(0, Ordering::Relaxed);
        }
        for w in &inner.slot_window {
            w.store(u64::MAX, Ordering::Relaxed);
        }
        inner.clock.store(0, Ordering::Relaxed);
        for o in inner.objectives.read().expect("objectives poisoned").iter() {
            o.observed.store(0, Ordering::Relaxed);
            o.breaches.store(0, Ordering::Relaxed);
        }
    }

    /// Full JSON snapshot: window geometry, merged bucket counts (the
    /// inputs to the quantile rule), p50/p99 estimates, objectives with
    /// burn rates, and the adaptive-threshold state. Served at `/slo`.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .windowed_cumulative_buckets()
            .into_iter()
            .map(|(bound, cum)| {
                let le = if bound.is_finite() {
                    Json::Num(bound)
                } else {
                    Json::Str("+Inf".to_string())
                };
                Json::obj([("le", le), ("cumulative", Json::Num(cum as f64))])
            })
            .collect::<Vec<_>>();
        let objectives = self
            .objective_stats()
            .into_iter()
            .map(|(o, observed, breaches, burn)| {
                Json::obj([
                    ("name", Json::Str(o.name)),
                    ("threshold_ns", Json::Num(o.threshold_ns as f64)),
                    ("target", Json::Num(o.target)),
                    ("observed", Json::Num(observed as f64)),
                    ("breaches", Json::Num(breaches as f64)),
                    ("burn_rate", Json::Num(burn)),
                ])
            })
            .collect::<Vec<_>>();
        let threshold = match self.bound_threshold_ns() {
            Some(ns) if ns != u64::MAX => Json::Num(ns as f64),
            _ => Json::Null,
        };
        Json::obj([
            (
                "window",
                Json::obj([
                    ("slots", Json::Num(SLO_WINDOW_SLOTS as f64)),
                    ("rotate_every", Json::Num(self.inner.rotate_every as f64)),
                    ("observations", Json::Num(self.observations() as f64)),
                ]),
            ),
            ("buckets", Json::Arr(buckets)),
            ("p50_ns", Json::Num(self.p50_ns() as f64)),
            ("p99_ns", Json::Num(self.p99_ns() as f64)),
            ("objectives", Json::Arr(objectives)),
            ("adaptive", Json::Bool(self.adaptive())),
            ("slow_threshold_ns", threshold),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    mod live {
        use super::super::*;

        /// Deterministic splitmix64 for dependency-free randomized
        /// cases.
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }

        /// Offline re-derivation of the documented quantile rule from
        /// an exported `/slo` JSON document — intentionally independent
        /// of the tracker's own implementation.
        fn offline_quantile_ns(doc: &Json, q: f64, last_finite: f64) -> u64 {
            let buckets = doc.get("buckets").and_then(Json::as_arr).expect("buckets");
            let total = buckets
                .last()
                .and_then(|b| b.get("cumulative"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64;
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            for b in buckets {
                let cum = b.get("cumulative").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                if cum >= rank {
                    return match b.get("le").and_then(Json::as_f64) {
                        Some(bound) => bound as u64,
                        None => (last_finite * 4.0) as u64, // "+Inf"
                    };
                }
            }
            0
        }

        #[test]
        fn quantiles_match_offline_recomputation_from_exported_buckets() {
            // Property test (seeded randomized cases): for arbitrary
            // observation streams, the p50/p99 the tracker reports must
            // equal the quantile recomputed offline from the exported
            // bucket counts using the documented rule.
            let mut rng = Rng(0x5E2E_0009);
            for case in 0..64 {
                let tracker = SloTracker::with_rotation(&crate::NS_BUCKETS, 64);
                let n = 1 + (rng.next() % 2_000) as usize;
                for _ in 0..n {
                    // Mix scales so every bucket region gets traffic.
                    let ns = match rng.next() % 4 {
                        0 => rng.next() % 1_000,
                        1 => rng.next() % 100_000,
                        2 => rng.next() % 50_000_000,
                        _ => rng.next() % 20_000_000_000, // overflow bucket too
                    };
                    tracker.record_ns(ns);
                }
                let doc = Json::parse(&tracker.to_json().render()).expect("valid json");
                let last = *crate::NS_BUCKETS.last().expect("bounds");
                for &q in &[0.5, 0.9, 0.99] {
                    let offline = offline_quantile_ns(&doc, q, last);
                    let online = tracker.windowed_quantile_ns(q);
                    assert_eq!(online, offline, "case {case} q={q} n={n}");
                }
                assert_eq!(
                    doc.get("p99_ns").and_then(Json::as_f64).map(|v| v as u64),
                    Some(tracker.p99_ns()),
                    "case {case}"
                );
            }
        }

        #[test]
        fn window_slides_old_observations_out() {
            // rotate_every=4, 8 slots → window = last ≤32 observations.
            let tracker = SloTracker::with_rotation(&crate::NS_BUCKETS, 4);
            // Fill the whole ring with slow observations...
            for _ in 0..32 {
                tracker.record_ns(1_000_000_000);
            }
            assert!(tracker.p50_ns() >= 1_000_000_000);
            // ...then overwrite every slot with fast ones.
            for _ in 0..32 {
                tracker.record_ns(100);
            }
            assert!(
                tracker.p99_ns() <= 1_024,
                "old slow observations must have rotated out, p99={}",
                tracker.p99_ns()
            );
        }

        #[test]
        fn burn_rate_measures_budget_consumption() {
            let tracker = SloTracker::new(&crate::NS_BUCKETS);
            tracker.add_objective("p90-1us", 1_000, 0.90);
            // 10 observations, 5 breaches → breach ratio 0.5, budget
            // 0.1 → burn rate 5.0.
            for _ in 0..5 {
                tracker.record_ns(500);
            }
            for _ in 0..5 {
                tracker.record_ns(2_000);
            }
            let stats = tracker.objective_stats();
            assert_eq!(stats.len(), 1);
            let (_, observed, breaches, burn) = (&stats[0].0, stats[0].1, stats[0].2, stats[0].3);
            assert_eq!(observed, 10);
            assert_eq!(breaches, 5);
            assert!((burn - 5.0).abs() < 1e-9, "burn={burn}");
        }

        #[test]
        fn adaptive_threshold_tracks_windowed_p99() {
            let cell = Arc::new(AtomicU64::new(u64::MAX));
            let tracker = SloTracker::with_rotation(&crate::NS_BUCKETS, 8);
            tracker.bind_threshold(cell.clone());
            tracker.set_adaptive(true);
            for _ in 0..64 {
                tracker.record_ns(3_000_000); // ~3 ms
            }
            // At least one rotation happened, so the cell follows p99.
            let got = cell.load(Ordering::Relaxed);
            assert_ne!(got, u64::MAX);
            assert_eq!(got, tracker.p99_ns().max(SLO_ADAPTIVE_FLOOR_NS));
        }

        #[test]
        fn reset_clears_data_but_keeps_config() {
            let tracker = SloTracker::new(&crate::NS_BUCKETS);
            tracker.add_objective("o", 100, 0.5);
            tracker.set_adaptive(true);
            tracker.record_ns(1_000);
            tracker.reset();
            assert_eq!(tracker.observations(), 0);
            assert_eq!(tracker.p99_ns(), 0);
            assert!(tracker.adaptive());
            assert_eq!(tracker.objective_stats()[0].1, 0);
        }
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn tracker_is_inert_under_obs_off() {
        let tracker = SloTracker::default();
        tracker.record_ns(1_000_000);
        assert_eq!(tracker.observations(), 0);
        assert_eq!(tracker.p99_ns(), 0);
        let doc = Json::parse(&tracker.to_json().render()).expect("valid json");
        assert_eq!(doc.get("p99_ns").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn empty_window_reports_zero() {
        let tracker = SloTracker::default();
        assert_eq!(tracker.p50_ns(), 0);
        assert_eq!(tracker.p99_ns(), 0);
        let buckets = tracker.windowed_cumulative_buckets();
        assert_eq!(buckets.last().map(|&(_, c)| c), Some(0));
    }
}
