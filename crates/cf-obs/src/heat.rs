//! The spatial heatmap plane: sharded atomic heat tables over
//! fixed-width Hilbert-position buckets.
//!
//! The paper's subfield cost `C = P / SI` is a function of *where*
//! queries land on the curve, but the band-length histogram only
//! captures `E[|q|]` — it is blind to spatial skew. A [`HeatMap`]
//! closes that gap: the query pipeline bumps per-position heat as it
//! examines and qualifies cells (and the storage engine as it reads
//! pages), and the advisor reads the per-bucket distribution back to
//! regroup subfields under the *observed* spatial workload.
//!
//! Design constraints, in order:
//!
//! * **Allocation-free on the hot path.** A bump is one relaxed atomic
//!   add; a range bump is one add per *bucket overlapped* (not per
//!   cell), so instrumenting a coalesced refine run of 10 000 cells
//!   costs a handful of adds.
//! * **Sharded against contention.** Each table holds
//!   [`HEAT_SHARDS`] independent bucket arrays; a thread picks its
//!   shard once (thread-local) and keeps it, so concurrent batch
//!   workers do not serialize on the hot buckets. Reads sum across
//!   shards, so totals are exact.
//! * **Fixed memory.** [`HEAT_BUCKETS`] buckets per table regardless
//!   of domain size; [`HeatTable::set_domain`] fixes the bucket width
//!   as `ceil(domain / buckets)` and positions past the domain clamp
//!   into the last bucket.
//!
//! Under the `obs-off` feature every bump compiles to an empty inline
//! function, so call sites need no feature gates of their own.

use crate::json::Json;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per heat table. 64 keeps the whole plane in one cache-line
/// handful per shard and renders as a single ASCII row.
pub const HEAT_BUCKETS: usize = 64;

/// Independent bucket arrays per table (threads spread across them).
pub const HEAT_SHARDS: usize = 8;

/// Which heat a bump contributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatKind {
    /// Cells read by the estimation (refine) step — every cell of a
    /// retrieved run, qualifying or not.
    Examined,
    /// Cells whose value interval actually intersected the band.
    Qualifying,
    /// Logical page reads on the storage engine (page-id domain, not
    /// cell positions).
    Pages,
}

impl HeatKind {
    /// All kinds, in rendering order.
    pub const ALL: [HeatKind; 3] = [HeatKind::Examined, HeatKind::Qualifying, HeatKind::Pages];

    /// The kind's label value in metrics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            HeatKind::Examined => "examined",
            HeatKind::Qualifying => "qualifying",
            HeatKind::Pages => "pages",
        }
    }
}

/// Picks (once per thread) which shard this thread bumps into.
fn shard_index() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % HEAT_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// One sharded heat table: [`HEAT_SHARDS`] × [`HEAT_BUCKETS`] relaxed
/// atomic counters plus the bucket width mapping positions to buckets.
pub struct HeatTable {
    /// Positions per bucket (`0` until a domain is set; bumps then
    /// treat the width as 1).
    width: AtomicU64,
    shards: Vec<[AtomicU64; HEAT_BUCKETS]>,
}

impl HeatTable {
    fn new() -> Self {
        Self {
            width: AtomicU64::new(0),
            shards: (0..HEAT_SHARDS)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Fixes the bucket width so `domain` positions span the table:
    /// `width = ceil(domain / HEAT_BUCKETS)`. Existing counts are kept
    /// (callers set the domain at build/publish time, before traffic).
    pub fn set_domain(&self, domain: u64) {
        let width = domain.div_ceil(HEAT_BUCKETS as u64).max(1);
        self.width.store(width, Ordering::Relaxed);
    }

    /// Current bucket width (positions per bucket; 1 until a domain is
    /// set).
    pub fn bucket_width(&self) -> u64 {
        self.width.load(Ordering::Relaxed).max(1)
    }

    #[inline]
    fn bucket_of(&self, pos: u64, width: u64) -> usize {
        ((pos / width) as usize).min(HEAT_BUCKETS - 1)
    }

    /// Adds `1` heat at `pos`. Positions past the domain clamp into
    /// the last bucket. Compiled out under `obs-off`.
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn bump(&self, pos: u64) {
        let width = self.bucket_width();
        let bucket = self.bucket_of(pos, width);
        self.shards[shard_index()][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `1` heat at `pos` (compiled out under `obs-off`).
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn bump(&self, _pos: u64) {}

    /// Adds `1` heat per position in `[start, end)` — one atomic add
    /// per bucket overlapped, so a long run costs a handful of adds.
    /// Compiled out under `obs-off`.
    #[cfg(not(feature = "obs-off"))]
    pub fn bump_range(&self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let width = self.bucket_width();
        let shard = &self.shards[shard_index()];
        let mut pos = start;
        while pos < end {
            let bucket = self.bucket_of(pos, width);
            let run_end = if bucket == HEAT_BUCKETS - 1 {
                end
            } else {
                end.min((bucket as u64 + 1) * width)
            };
            shard[bucket].fetch_add(run_end - pos, Ordering::Relaxed);
            pos = run_end;
        }
    }

    /// Adds `1` heat per position in `[start, end)` (compiled out
    /// under `obs-off`).
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn bump_range(&self, _start: u64, _end: u64) {}

    /// Per-bucket totals, summed across shards.
    pub fn totals(&self) -> [u64; HEAT_BUCKETS] {
        let mut out = [0u64; HEAT_BUCKETS];
        for shard in &self.shards {
            for (o, c) in out.iter_mut().zip(shard.iter()) {
                *o += c.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total heat across all buckets.
    pub fn total(&self) -> u64 {
        self.totals().iter().sum()
    }

    fn reset(&self) {
        for shard in &self.shards {
            for c in shard {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for HeatTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeatTable")
            .field("width", &self.bucket_width())
            .field("total", &self.total())
            .finish()
    }
}

/// The registry's spatial heatmap: one [`HeatTable`] per
/// [`HeatKind`].
#[derive(Debug)]
pub struct HeatMap {
    examined: HeatTable,
    qualifying: HeatTable,
    pages: HeatTable,
}

impl Default for HeatMap {
    fn default() -> Self {
        Self {
            examined: HeatTable::new(),
            qualifying: HeatTable::new(),
            pages: HeatTable::new(),
        }
    }
}

impl HeatMap {
    /// The table backing `kind`.
    pub fn table(&self, kind: HeatKind) -> &HeatTable {
        match kind {
            HeatKind::Examined => &self.examined,
            HeatKind::Qualifying => &self.qualifying,
            HeatKind::Pages => &self.pages,
        }
    }

    /// Fixes the cell-position domain (the [`HeatKind::Examined`] and
    /// [`HeatKind::Qualifying`] tables) — the index layer calls this
    /// with its cell-file length whenever it (re)publishes health.
    pub fn set_cell_domain(&self, cells: u64) {
        self.examined.set_domain(cells);
        self.qualifying.set_domain(cells);
    }

    /// Bumps page heat for one logical page read, widening the page
    /// domain by doubling when `page` falls past it (the engine's page
    /// count grows as files are built; rebucketing is approximate and
    /// only affects where *earlier* heat renders, never the totals).
    /// Compiled out under `obs-off`.
    #[cfg(not(feature = "obs-off"))]
    #[inline]
    pub fn touch_page(&self, page: u64) {
        let table = &self.pages;
        let mut width = table.bucket_width();
        while page >= width * HEAT_BUCKETS as u64 {
            width *= 2;
            table.width.store(width, Ordering::Relaxed);
        }
        table.bump(page);
    }

    /// Bumps page heat (compiled out under `obs-off`).
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn touch_page(&self, _page: u64) {}

    /// Zeroes every bucket (widths are configuration and survive —
    /// this is part of the registry-wide "forget warmup" reset).
    pub fn reset(&self) {
        self.examined.reset();
        self.qualifying.reset();
        self.pages.reset();
    }

    /// JSON snapshot for the `/heatmap` route: bucket count plus, per
    /// kind, the width, total and the full bucket vector.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("buckets", Json::Num(HEAT_BUCKETS as f64)),
            (
                "kinds",
                Json::Arr(
                    HeatKind::ALL
                        .iter()
                        .map(|&kind| {
                            let table = self.table(kind);
                            let totals = table.totals();
                            Json::obj([
                                ("kind", Json::Str(kind.name().to_owned())),
                                ("bucket_width", Json::Num(table.bucket_width() as f64)),
                                ("total", Json::Num(table.total() as f64)),
                                (
                                    "counts",
                                    Json::Arr(
                                        totals.iter().map(|&c| Json::Num(c as f64)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Appends the `heat_*` gauge families in Prometheus text format
    /// (deterministic: kinds in [`HeatKind::ALL`] order, buckets
    /// ascending, zero buckets omitted).
    pub fn render_text_into(&self, out: &mut String) {
        let _ = writeln!(out, "# TYPE heat_bucket gauge");
        for &kind in &HeatKind::ALL {
            for (b, &count) in self.table(kind).totals().iter().enumerate() {
                if count > 0 {
                    let _ = writeln!(
                        out,
                        "heat_bucket{{kind=\"{}\",bucket=\"{b:02}\"}} {count}",
                        kind.name()
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE heat_bucket_width gauge");
        for &kind in &HeatKind::ALL {
            let _ = writeln!(
                out,
                "heat_bucket_width{{kind=\"{}\"}} {}",
                kind.name(),
                self.table(kind).bucket_width()
            );
        }
        let _ = writeln!(out, "# TYPE heat_total gauge");
        for &kind in &HeatKind::ALL {
            let _ = writeln!(
                out,
                "heat_total{{kind=\"{}\"}} {}",
                kind.name(),
                self.table(kind).total()
            );
        }
    }

    /// One-line ASCII render of a table, buckets in Hilbert order,
    /// scaled to the hottest bucket (the `fielddb heatmap` view).
    pub fn render_ascii(&self, kind: HeatKind) -> String {
        const RAMP: [char; 9] = ['.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let table = self.table(kind);
        let totals = table.totals();
        let max = totals.iter().copied().max().unwrap_or(0);
        let mut out = format!(
            "heat[{:<10}] total={:<10} width={:<6} |",
            kind.name(),
            table.total(),
            table.bucket_width()
        );
        for &count in &totals {
            if count == 0 {
                out.push(' ');
            } else {
                let level = (count as u128 * (RAMP.len() as u128 - 1)).div_ceil(max as u128);
                out.push(RAMP[level as usize]);
            }
        }
        out.push('|');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn range_bumps_equal_per_position_bumps() {
        let a = HeatTable::new();
        let b = HeatTable::new();
        a.set_domain(640);
        b.set_domain(640);
        a.bump_range(37, 411);
        for pos in 37..411 {
            b.bump(pos);
        }
        assert_eq!(a.totals(), b.totals());
        assert_eq!(a.total(), 411 - 37);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn positions_past_the_domain_clamp_into_the_last_bucket() {
        let t = HeatTable::new();
        t.set_domain(64); // width 1, one position per bucket
        t.bump(1_000_000);
        t.bump_range(500, 510);
        let totals = t.totals();
        assert_eq!(totals[HEAT_BUCKETS - 1], 11);
        assert_eq!(t.total(), 11);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn concurrent_bumps_across_threads_sum_exactly() {
        let map = HeatMap::default();
        map.set_cell_domain(1024);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1_000u64 {
                        map.table(HeatKind::Examined).bump(i % 1024);
                    }
                    map.table(HeatKind::Qualifying).bump_range(0, 100);
                });
            }
        });
        assert_eq!(map.table(HeatKind::Examined).total(), 8_000);
        assert_eq!(map.table(HeatKind::Qualifying).total(), 800);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn page_domain_widens_by_doubling() {
        let map = HeatMap::default();
        map.touch_page(0);
        assert_eq!(map.table(HeatKind::Pages).bucket_width(), 1);
        map.touch_page(HEAT_BUCKETS as u64 * 3); // forces width 4
        assert_eq!(map.table(HeatKind::Pages).bucket_width(), 4);
        assert_eq!(map.table(HeatKind::Pages).total(), 2);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn bumps_compile_out_under_obs_off() {
        let map = HeatMap::default();
        map.set_cell_domain(64);
        map.table(HeatKind::Examined).bump(3);
        map.table(HeatKind::Examined).bump_range(0, 64);
        map.touch_page(12);
        assert_eq!(map.table(HeatKind::Examined).total(), 0);
        assert_eq!(map.table(HeatKind::Pages).total(), 0);
    }

    #[test]
    fn json_shape_lists_every_kind() {
        let map = HeatMap::default();
        let doc = Json::parse(&map.to_json().render()).expect("valid json");
        assert_eq!(doc.get("buckets").and_then(Json::as_f64), Some(64.0));
        let kinds = doc.get("kinds").and_then(Json::as_arr).expect("kinds");
        assert_eq!(kinds.len(), 3);
        for kind in kinds {
            assert_eq!(
                kind.get("counts").and_then(Json::as_arr).map(<[Json]>::len),
                Some(HEAT_BUCKETS)
            );
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn text_render_has_gauge_families_and_skips_zero_buckets() {
        let map = HeatMap::default();
        map.set_cell_domain(HEAT_BUCKETS as u64);
        map.table(HeatKind::Examined).bump(5);
        let mut out = String::new();
        map.render_text_into(&mut out);
        assert!(out.contains("# TYPE heat_bucket gauge"), "{out}");
        assert!(
            out.contains("heat_bucket{kind=\"examined\",bucket=\"05\"} 1"),
            "{out}"
        );
        assert!(
            !out.contains("heat_bucket{kind=\"examined\",bucket=\"06\"}"),
            "{out}"
        );
        assert!(out.contains("heat_total{kind=\"examined\"} 1"), "{out}");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ascii_render_is_one_row_scaled_to_max() {
        let map = HeatMap::default();
        map.set_cell_domain(HEAT_BUCKETS as u64);
        map.table(HeatKind::Qualifying).bump_range(0, 8);
        let row = map.render_ascii(HeatKind::Qualifying);
        assert!(row.starts_with("heat[qualifying"), "{row}");
        let bar = row.rsplit('|').nth(1).expect("bar");
        assert_eq!(bar.chars().count(), HEAT_BUCKETS, "{row}");
        assert!(bar.contains('@'), "hottest bucket renders full: {row}");
    }
}
