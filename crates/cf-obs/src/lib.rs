//! `cf-obs` — a dependency-free, lock-cheap observability layer.
//!
//! One [`MetricsRegistry`] per storage engine unifies the counters that
//! were previously scattered across `IoStats`, `ShardStats`,
//! `SearchStats` and `QueryStats`:
//!
//! * [`Counter`] — monotonic `u64`, one relaxed atomic add on the hot
//!   path. The storage plane's legacy accounting structs are *views*
//!   over these, so registry totals and legacy totals are the same
//!   atomics and can never drift.
//! * [`Gauge`] — an `f64` that goes up and down (queue depth, index
//!   health).
//! * [`Histogram`] — fixed bucket bounds chosen at registration, atomic
//!   bucket counts; no allocation after registration.
//! * [`Tracer`] — per-query span events in a bounded ring buffer plus a
//!   slow-query profiler that keeps the full phase breakdown of
//!   outliers (see [`trace`]).
//!
//! Handles returned by the registry are `Arc`-backed and cheap to
//! clone; layers that sit on a query hot path (the R-tree search loop,
//! the disk manager) cache their handles at construction time so the
//! per-operation cost is a single atomic add. Layers that run once per
//! query (the value indexes) look handles up by name; lookups are
//! allocation-free once a series exists.
//!
//! # The `obs-off` feature
//!
//! Building with `--features obs-off` compiles the *extended* layer —
//! histogram observation, stopwatches, span recording, slow-query
//! capture — down to no-ops, which is how the CI overhead gate measures
//! the cost of the layer. Counters and gauges stay real because the
//! engine's I/O accounting is built on them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod export;
pub mod heat;
mod json;
pub mod record;
pub mod serve;
pub mod slo;
mod trace;

pub use explain::{ExplainRecord, Label, EXPLAIN_RING_CAPACITY};
pub use export::EventJournal;
pub use heat::{HeatKind, HeatMap, HeatTable, HEAT_BUCKETS, HEAT_SHARDS};
pub use json::{Json, JsonError};
pub use record::{
    answer_digest, decode_wrk, encode_wrk, FlightRecorder, WorkloadRecord, RECORDER_CAPACITY,
    WORKLOAD_VERSION,
};
pub use slo::{SloObjective, SloTracker};
pub use trace::{SlowQueryReport, Span, Stopwatch, TraceEvent, Tracer};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (always safe to bump).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (used by warmup-style stat resets; the counter
    /// stays monotonic between resets).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: an `f64` that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// Default bucket upper bounds for nanosecond latency histograms:
/// powers of four from 256 ns to ~4.3 s.
pub const NS_BUCKETS: [f64; 13] = [
    256.0,
    1_024.0,
    4_096.0,
    16_384.0,
    65_536.0,
    262_144.0,
    1_048_576.0,
    4_194_304.0,
    16_777_216.0,
    67_108_864.0,
    268_435_456.0,
    1_073_741_824.0,
    4_294_967_296.0,
];

struct HistogramInner {
    bounds: Vec<f64>,
    /// One count per bound plus the +Inf overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits (CAS loop on
    /// observe — observation sites run once per query, not per page).
    sum_bits: AtomicU64,
}

/// A histogram with fixed bucket bounds. Observation is allocation-free
/// and, under the `obs-off` feature, compiled out entirely.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[cfg(not(feature = "obs-off"))]
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records one observation (compiled out under `obs-off`).
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn observe(&self, _v: f64) {}

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.observe(ns as f64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Clears all buckets and the sum.
    pub fn reset(&self) {
        for c in &self.0.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.0.sum_bits.store(0, Ordering::Relaxed);
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with the
    /// `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.0.counts.len());
        let mut cum = 0u64;
        for (i, c) in self.0.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            let bound = self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    series: Vec<(Vec<(String, String)>, Metric)>,
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// The unified metrics registry. One per storage engine; every layer
/// above the engine publishes into the engine's registry.
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    tracer: Tracer,
    slo: SloTracker,
    journal: EventJournal,
    heat: HeatMap,
    recorder: FlightRecorder,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        let tracer = Tracer::default();
        let slo = SloTracker::default();
        // Wire the tracer's slow-threshold cell into the SLO tracker so
        // adaptive mode (trace queries slower than the windowed p99)
        // can steer it.
        slo.bind_threshold(tracer.threshold_cell());
        Self {
            families: Mutex::new(BTreeMap::new()),
            tracer,
            slo,
            journal: EventJournal::default(),
            heat: HeatMap::default(),
            recorder: FlightRecorder::default(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry's query tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The registry's sliding-window SLO tracker.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// The registry's epoch-lifecycle event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The registry's spatial heatmap (per-bucket query heat over the
    /// Hilbert position domain).
    pub fn heat(&self) -> &HeatMap {
        &self.heat
    }

    /// The registry's workload flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        pick: impl Fn(&Metric) -> Option<Metric>,
    ) -> Metric {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        // Allocation-free on the existing-series path: the map is keyed
        // by `String` but looked up by `&str`.
        if let Some(family) = families.get_mut(name) {
            if let Some((_, metric)) = family
                .series
                .iter()
                .find(|(have, _)| labels_eq(have, labels))
            {
                return pick(metric)
                    .unwrap_or_else(|| panic!("metric {name} re-registered as a different kind"));
            }
            let metric = make();
            let handle = pick(&metric).expect("freshly made metric matches its own kind");
            family.series.push((owned_labels(labels), metric));
            return handle;
        }
        let metric = make();
        let handle = pick(&metric).expect("freshly made metric matches its own kind");
        families.insert(
            name.to_owned(),
            Family {
                series: vec![(owned_labels(labels), metric)],
            },
        );
        handle
    }

    /// Returns (registering on first use) the counter `name` with no
    /// labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Returns (registering on first use) the counter `name` with the
    /// given label set.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(
            name,
            labels,
            || Metric::Counter(Counter::default()),
            |m| match m {
                Metric::Counter(c) => Some(Metric::Counter(c.clone())),
                _ => None,
            },
        ) {
            Metric::Counter(c) => c,
            _ => unreachable!("pick returned a counter"),
        }
    }

    /// Returns (registering on first use) the gauge `name` with no
    /// labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Returns (registering on first use) the gauge `name` with the
    /// given label set.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(
            name,
            labels,
            || Metric::Gauge(Gauge::default()),
            |m| match m {
                Metric::Gauge(g) => Some(Metric::Gauge(g.clone())),
                _ => None,
            },
        ) {
            Metric::Gauge(g) => g,
            _ => unreachable!("pick returned a gauge"),
        }
    }

    /// Returns (registering on first use) a histogram with the default
    /// nanosecond latency buckets.
    pub fn time_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, &NS_BUCKETS)
    }

    /// Returns (registering on first use) a histogram with caller-chosen
    /// bucket upper bounds. Bounds are fixed by the first registration.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        match self.register(
            name,
            labels,
            || Metric::Histogram(Histogram::with_bounds(bounds)),
            |m| match m {
                Metric::Histogram(h) => Some(Metric::Histogram(h.clone())),
                _ => None,
            },
        ) {
            Metric::Histogram(h) => h,
            _ => unreachable!("pick returned a histogram"),
        }
    }

    /// Sum of a counter family across all of its label sets (0 when the
    /// family does not exist).
    pub fn counter_total(&self, name: &str) -> u64 {
        let families = self.families.lock().expect("metrics registry poisoned");
        families
            .get(name)
            .map(|f| {
                f.series
                    .iter()
                    .map(|(_, m)| match m {
                        Metric::Counter(c) => c.get(),
                        _ => 0,
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Value of a counter series (`None` when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.lock().expect("metrics registry poisoned");
        families.get(name).and_then(|f| {
            f.series
                .iter()
                .find(|(have, _)| labels_eq(have, labels))
                .and_then(|(_, m)| match m {
                    Metric::Counter(c) => Some(c.get()),
                    _ => None,
                })
        })
    }

    /// Value of a gauge series (`None` when absent).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let families = self.families.lock().expect("metrics registry poisoned");
        families.get(name).and_then(|f| {
            f.series
                .iter()
                .find(|(have, _)| labels_eq(have, labels))
                .and_then(|(_, m)| match m {
                    Metric::Gauge(g) => Some(g.get()),
                    _ => None,
                })
        })
    }

    /// `(count, sum)` of a histogram series (`None` when absent). The
    /// mean `sum / count` is exact regardless of bucket bounds, which is
    /// what the workload advisor relies on.
    pub fn histogram_stats(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, f64)> {
        let families = self.families.lock().expect("metrics registry poisoned");
        families.get(name).and_then(|f| {
            f.series
                .iter()
                .find(|(have, _)| labels_eq(have, labels))
                .and_then(|(_, m)| match m {
                    Metric::Histogram(h) => Some((h.count(), h.sum())),
                    _ => None,
                })
        })
    }

    /// Zeroes every counter, gauge and histogram and clears the trace
    /// rings. Handles stay valid; tracer enablement and thresholds are
    /// preserved. This is the engine-wide "forget warmup I/O" reset.
    pub fn reset(&self) {
        let families = self.families.lock().expect("metrics registry poisoned");
        for family in families.values() {
            for (_, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => c.reset(),
                    Metric::Gauge(g) => g.reset(),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
        drop(families);
        self.tracer.clear();
        self.slo.reset();
        self.journal.clear();
        self.heat.reset();
        self.recorder.clear();
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// The output is deterministic: families appear in name order and
    /// series in label order, so two snapshots of the same state are
    /// byte-identical and diffable.
    pub fn render_text(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = match family.series.first() {
                Some((_, m)) => m.kind(),
                None => continue,
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let mut series: Vec<&(Vec<(String, String)>, Metric)> = family.series.iter().collect();
            series.sort_by(|a, b| a.0.cmp(&b.0));
            for (labels, metric) in series {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, &[]), c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", name, fmt_labels(labels, &[]), g.get());
                    }
                    Metric::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            let le = if bound.is_infinite() {
                                "+Inf".to_owned()
                            } else {
                                trim_float(bound)
                            };
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                name,
                                fmt_labels(labels, &[("le", &le)]),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            name,
                            fmt_labels(labels, &[]),
                            trim_float(h.sum())
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            name,
                            fmt_labels(labels, &[]),
                            h.count()
                        );
                    }
                }
            }
        }
        drop(families);
        // The spatial heatmap renders after the registered families
        // (its buckets live outside the family map); the section is
        // deterministic, so whole-snapshot diffs stay byte-stable.
        self.heat.render_text_into(&mut out);
        out
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter_total("x_total"), 4);
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn labeled_series_are_independent_and_total_sums_them() {
        let reg = MetricsRegistry::new();
        reg.counter_with("hits_total", &[("shard", "0")]).add(2);
        reg.counter_with("hits_total", &[("shard", "1")]).add(5);
        assert_eq!(reg.counter_total("hits_total"), 7);
        assert_eq!(reg.counter_with("hits_total", &[("shard", "0")]).get(), 2);
    }

    #[test]
    fn gauges_set_and_reset() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge_with("depth", &[("q", "a")]);
        g.set(4.5);
        assert_eq!(reg.gauge_value("depth", &[("q", "a")]), Some(4.5));
        reg.reset();
        assert_eq!(reg.gauge_value("depth", &[("q", "a")]), Some(0.0));
    }

    #[test]
    fn reset_preserves_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("y_total");
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter_total("y_total"), 1);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("lat", &[], &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(500.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 555.0);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(10.0, 1), (100.0, 2), (f64::INFINITY, 3)]
        );
        h.reset();
        assert_eq!(h.count(), 0);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn histogram_observe_is_compiled_out() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("lat", &[], &[10.0]);
        h.observe(5.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("b_total", &[("k", "v")]).add(2);
        reg.gauge("a_gauge").set(1.5);
        let text = reg.render_text();
        // Families render in name order.
        let a = text.find("# TYPE a_gauge gauge").expect("gauge family");
        let b = text.find("# TYPE b_total counter").expect("counter family");
        assert!(a < b, "{text}");
        assert!(text.contains("b_total{k=\"v\"} 2"), "{text}");
        assert!(text.contains("a_gauge 1.5"), "{text}");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn render_text_histogram_has_inf_bucket_sum_and_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("q_ns", &[("index", "ih")], &[100.0]);
        h.observe(40.0);
        h.observe(400.0);
        let text = reg.render_text();
        assert!(
            text.contains("q_ns_bucket{index=\"ih\",le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("q_ns_bucket{index=\"ih\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("q_ns_sum{index=\"ih\"} 440"), "{text}");
        assert!(text.contains("q_ns_count{index=\"ih\"} 2"), "{text}");
    }

    #[test]
    fn render_text_series_are_label_sorted() {
        let reg = MetricsRegistry::new();
        // Registered out of order on purpose.
        reg.counter_with("hits_total", &[("shard", "2")]).add(2);
        reg.counter_with("hits_total", &[("shard", "0")]).add(1);
        reg.counter_with("hits_total", &[("shard", "1")]).add(3);
        let text = reg.render_text();
        let s0 = text.find("shard=\"0\"").expect("shard 0");
        let s1 = text.find("shard=\"1\"").expect("shard 1");
        let s2 = text.find("shard=\"2\"").expect("shard 2");
        assert!(s0 < s1 && s1 < s2, "{text}");
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, reg.render_text());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("m");
        let _ = reg.gauge("m");
    }

    #[test]
    fn concurrent_bumps_do_not_lose_updates() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = reg.counter("conc_total");
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter_total("conc_total"), 80_000);
    }
}
