//! A minimal, dependency-free JSON value: parse, render, navigate.
//!
//! The exporters ([`crate::export`]) render machine-readable snapshots
//! (Chrome trace files, JSONL event logs) and the bench-history
//! regression watch parses them back; both sides share this module so
//! the byte format is defined exactly once. Scope is deliberately
//! small — the full JSON grammar, no streaming, no custom escapes
//! beyond what the format requires — and object key order is preserved
//! on both parse and render so output is deterministic and diffable.

use std::fmt;

/// A JSON value. Objects keep insertion order (renders are diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64` — the exporters never need
    /// integers wider than 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key→value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the value compactly (no whitespace). Key order of
    /// objects is preserved, so equal values render to equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                message: "trailing characters after document".into(),
            });
        }
        Ok(value)
    }
}

/// Renders a number the way the exporters want it: integers without a
/// fractional part, everything else via Rust's shortest-round-trip
/// float formatting. Non-finite values (never produced by the metric
/// layer, but a histogram bound can be `+Inf`) render as `null` per the
/// JSON grammar.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".into();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn err(pos: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        pos,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected {lit:?}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by any producer
                        // in this workspace; map lone surrogates to the
                        // replacement character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is
                // always at a character boundary).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map_err(|_| err(start, format!("bad number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5}}"#;
        let v = Json::parse(text).expect("parse");
        assert_eq!(v.render(), text);
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(3));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn preserves_object_key_order() {
        let v = Json::obj([("zebra", Json::Num(1.0)), ("apple", Json::Num(2.0))]);
        assert_eq!(v.render(), r#"{"zebra":1,"apple":2}"#);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::Str("a\"b\\c\nd\te\u{0001}".into());
        let rendered = v.render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&rendered).expect("parse"), v);
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-0.125).render(), "-0.125");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "\"abc"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let v = Json::parse(" { \"a\" : [ ] , \"b\" : { } } ").expect("parse");
        assert_eq!(v.render(), r#"{"a":[],"b":{}}"#);
    }
}
