//! The workload flight recorder: a bounded ring of every traced
//! query's identity — band, logical ordinal, plane, curve, epoch and
//! an answer digest — with a lossless drain to a versioned `.wrk`
//! workload file.
//!
//! A production anomaly surfaced by `/slo` or a slow-query report is
//! only useful if it can be *reproduced*: the recorder turns the live
//! query stream into a replayable artifact. `repro replay` re-executes
//! a `.wrk` file against a database and diffs the recomputed answer
//! digests against the recording, so a slow-query window becomes a
//! committed regression test.
//!
//! Bands are stored as raw `f64` bits (`to_bits`/`from_bits`) both in
//! memory and on disk, so a recorded query replays with the *exact*
//! float the pipeline executed — the digests are only comparable
//! because no decimal round-trip ever happens.
//!
//! Under the `obs-off` feature [`FlightRecorder::record`] compiles to
//! an empty inline function; the ring never fills and the `.wrk`
//! encoder only ever sees empty recordings.

use crate::explain::Label;
use crate::json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Maximum records retained in the ring; older records are dropped
/// (and counted) once the ring is full.
pub const RECORDER_CAPACITY: usize = 4096;

/// Magic bytes of a `.wrk` workload file.
pub const WORKLOAD_MAGIC: [u8; 4] = *b"CFWK";

/// Current `.wrk` format version.
pub const WORKLOAD_VERSION: u32 = 1;

/// On-disk bytes per record: ordinal, band bits ×2, epoch, digest
/// (8 bytes each) plus two 16-byte NUL-padded name fields.
pub const WORKLOAD_RECORD_SIZE: usize = 72;

/// `.wrk` header: magic, version, record count.
const WORKLOAD_HEADER_SIZE: usize = 16;

/// One captured query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadRecord {
    /// Logical ordinal within the recording (assigned at capture,
    /// monotonic; replay re-executes in ordinal order).
    pub ordinal: u64,
    /// Queried band, low end.
    pub band_lo: f64,
    /// Queried band, high end.
    pub band_hi: f64,
    /// Execution plane (`"frozen"`, `"paged"`, `"cells"`).
    pub plane: Label,
    /// Space-filling curve behind the index.
    pub curve: Label,
    /// Ingest epoch the query was pinned to (0 = static plane).
    pub epoch: u64,
    /// Answer digest — see [`answer_digest`].
    pub digest: u64,
}

impl WorkloadRecord {
    /// JSON rendering (the `/workload` route).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ordinal", Json::Num(self.ordinal as f64)),
            ("band_lo", Json::Num(self.band_lo)),
            ("band_hi", Json::Num(self.band_hi)),
            ("plane", Json::Str(self.plane.as_str().to_owned())),
            ("curve", Json::Str(self.curve.as_str().to_owned())),
            ("epoch", Json::Num(self.epoch as f64)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
        ])
    }
}

/// FNV-1a digest over a query's observable outcome: cell counts,
/// region count and the exact answer-area bits. Two executions of the
/// same query against the same data produce the same digest; any
/// divergence in the answer (even one float bit of area) changes it.
pub fn answer_digest(
    cells_examined: u64,
    cells_qualifying: u64,
    num_regions: u64,
    area: f64,
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for word in [
        cells_examined,
        cells_qualifying,
        num_regions,
        area.to_bits(),
    ] {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

#[derive(Default)]
struct RecorderState {
    ring: VecDeque<WorkloadRecord>,
    next_ordinal: u64,
    dropped: u64,
}

/// The bounded query-capture ring. One per [`crate::MetricsRegistry`];
/// the query pipeline records every *traced* query (same gate as the
/// EXPLAIN ring, so recording costs nothing when tracing is off).
#[derive(Default)]
pub struct FlightRecorder {
    state: Mutex<RecorderState>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("len", &self.len())
            .finish()
    }
}

impl FlightRecorder {
    /// Captures one query, assigning it the next logical ordinal.
    /// When the ring is at [`RECORDER_CAPACITY`] the oldest record is
    /// dropped (and counted in [`FlightRecorder::dropped`]). Compiled
    /// out under `obs-off`.
    #[cfg(not(feature = "obs-off"))]
    pub fn record(
        &self,
        band_lo: f64,
        band_hi: f64,
        plane: &str,
        curve: &str,
        epoch: u64,
        digest: u64,
    ) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        let ordinal = state.next_ordinal;
        state.next_ordinal += 1;
        if state.ring.len() >= RECORDER_CAPACITY {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(WorkloadRecord {
            ordinal,
            band_lo,
            band_hi,
            plane: Label::new(plane),
            curve: Label::new(curve),
            epoch,
            digest,
        });
    }

    /// Captures one query (compiled out under `obs-off`).
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn record(
        &self,
        _band_lo: f64,
        _band_hi: f64,
        _plane: &str,
        _curve: &str,
        _epoch: u64,
        _digest: u64,
    ) {
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("flight recorder poisoned")
            .ring
            .len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("flight recorder poisoned").dropped
    }

    /// Copies the retained records out, oldest first, leaving the ring
    /// intact (the `/workload` route).
    pub fn snapshot(&self) -> Vec<WorkloadRecord> {
        let state = self.state.lock().expect("flight recorder poisoned");
        state.ring.iter().copied().collect()
    }

    /// Removes and returns the retained records, oldest first — the
    /// lossless `.wrk` drain. The ordinal sequence keeps running, so a
    /// later drain continues where this one stopped.
    pub fn drain(&self) -> Vec<WorkloadRecord> {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        state.ring.drain(..).collect()
    }

    /// Empties the ring and restarts the ordinal sequence (part of the
    /// registry-wide reset).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        state.ring.clear();
        state.next_ordinal = 0;
        state.dropped = 0;
    }

    /// JSON snapshot for the `/workload` route.
    pub fn to_json(&self) -> Json {
        let state = self.state.lock().expect("flight recorder poisoned");
        Json::obj([
            ("version", Json::Num(WORKLOAD_VERSION as f64)),
            ("count", Json::Num(state.ring.len() as f64)),
            ("dropped", Json::Num(state.dropped as f64)),
            (
                "records",
                Json::Arr(state.ring.iter().map(WorkloadRecord::to_json).collect()),
            ),
        ])
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_name(buf: &mut Vec<u8>, name: &str) {
    let mut field = [0u8; 16];
    let mut end = name.len().min(16);
    while end > 0 && !name.is_char_boundary(end) {
        end -= 1;
    }
    field[..end].copy_from_slice(&name.as_bytes()[..end]);
    buf.extend_from_slice(&field);
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(bytes)
}

fn get_name(buf: &[u8], at: usize) -> Label {
    let field = &buf[at..at + 16];
    let end = field.iter().position(|&b| b == 0).unwrap_or(16);
    match std::str::from_utf8(&field[..end]) {
        Ok(s) => Label::new(s),
        Err(_) => Label::empty(),
    }
}

/// Encodes records as a versioned `.wrk` byte stream: the
/// [`WORKLOAD_MAGIC`]/[`WORKLOAD_VERSION`] header, the record count,
/// then fixed-size little-endian records with band floats stored as
/// raw bits (lossless).
pub fn encode_wrk(records: &[WorkloadRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WORKLOAD_HEADER_SIZE + records.len() * WORKLOAD_RECORD_SIZE);
    out.extend_from_slice(&WORKLOAD_MAGIC);
    out.extend_from_slice(&WORKLOAD_VERSION.to_le_bytes());
    put_u64(&mut out, records.len() as u64);
    for rec in records {
        put_u64(&mut out, rec.ordinal);
        put_u64(&mut out, rec.band_lo.to_bits());
        put_u64(&mut out, rec.band_hi.to_bits());
        put_u64(&mut out, rec.epoch);
        put_u64(&mut out, rec.digest);
        put_name(&mut out, rec.plane.as_str());
        put_name(&mut out, rec.curve.as_str());
    }
    out
}

/// Decodes a `.wrk` byte stream. Malformed input — wrong magic, an
/// unknown version, a truncated body — returns a description, never
/// panics.
pub fn decode_wrk(bytes: &[u8]) -> Result<Vec<WorkloadRecord>, String> {
    if bytes.len() < WORKLOAD_HEADER_SIZE {
        return Err(format!(
            "workload file too short: {} bytes (need at least {WORKLOAD_HEADER_SIZE})",
            bytes.len()
        ));
    }
    if bytes[..4] != WORKLOAD_MAGIC {
        return Err("not a workload file (bad magic; expected \"CFWK\")".to_owned());
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != WORKLOAD_VERSION {
        return Err(format!(
            "unsupported workload version {version} (this build reads version {WORKLOAD_VERSION})"
        ));
    }
    let count = get_u64(bytes, 8) as usize;
    let expected = WORKLOAD_HEADER_SIZE + count * WORKLOAD_RECORD_SIZE;
    if bytes.len() != expected {
        return Err(format!(
            "workload body size mismatch: {} bytes for {count} records (expected {expected})",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let at = WORKLOAD_HEADER_SIZE + i * WORKLOAD_RECORD_SIZE;
        out.push(WorkloadRecord {
            ordinal: get_u64(bytes, at),
            band_lo: f64::from_bits(get_u64(bytes, at + 8)),
            band_hi: f64::from_bits(get_u64(bytes, at + 16)),
            epoch: get_u64(bytes, at + 24),
            digest: get_u64(bytes, at + 32),
            plane: get_name(bytes, at + 40),
            curve: get_name(bytes, at + 56),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> WorkloadRecord {
        WorkloadRecord {
            ordinal: n,
            band_lo: 0.125 + n as f64,
            band_hi: 0.875 + n as f64,
            plane: Label::new("frozen"),
            curve: Label::new("hilbert"),
            epoch: n * 3,
            digest: answer_digest(100 + n, 50 + n, 7, 12.5 + n as f64),
        }
    }

    #[test]
    fn digest_is_sensitive_to_every_component() {
        let base = answer_digest(10, 5, 2, 1.5);
        assert_ne!(base, answer_digest(11, 5, 2, 1.5));
        assert_ne!(base, answer_digest(10, 6, 2, 1.5));
        assert_ne!(base, answer_digest(10, 5, 3, 1.5));
        assert_ne!(base, answer_digest(10, 5, 2, 1.5 + f64::EPSILON));
        assert_eq!(base, answer_digest(10, 5, 2, 1.5));
    }

    #[test]
    fn wrk_round_trips_losslessly() {
        let records: Vec<WorkloadRecord> = (0..17).map(sample).collect();
        let bytes = encode_wrk(&records);
        assert_eq!(
            bytes.len(),
            WORKLOAD_HEADER_SIZE + records.len() * WORKLOAD_RECORD_SIZE
        );
        let back = decode_wrk(&bytes).expect("decode");
        assert_eq!(back, records);
    }

    #[test]
    fn wrk_preserves_exact_float_bits() {
        let mut rec = sample(0);
        rec.band_lo = f64::from_bits(0x3FF0_0000_0000_0001); // 1.0 + 1 ulp
        rec.band_hi = -0.0;
        let back = decode_wrk(&encode_wrk(&[rec])).expect("decode");
        assert_eq!(back[0].band_lo.to_bits(), rec.band_lo.to_bits());
        assert_eq!(back[0].band_hi.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn decode_rejects_malformed_input_without_panicking() {
        assert!(decode_wrk(b"").is_err());
        assert!(decode_wrk(b"NOPE").is_err());
        let mut bad_magic = encode_wrk(&[sample(0)]);
        bad_magic[0] = b'X';
        assert!(decode_wrk(&bad_magic).unwrap_err().contains("magic"));
        let mut bad_version = encode_wrk(&[sample(0)]);
        bad_version[4] = 99;
        assert!(decode_wrk(&bad_version).unwrap_err().contains("version"));
        let mut truncated = encode_wrk(&[sample(0), sample(1)]);
        truncated.truncate(truncated.len() - 5);
        assert!(decode_wrk(&truncated).unwrap_err().contains("mismatch"));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ring_assigns_ordinals_and_drains_losslessly() {
        let rec = FlightRecorder::default();
        for i in 0..5 {
            rec.record(i as f64, i as f64 + 1.0, "frozen", "hilbert", 0, i);
        }
        assert_eq!(rec.len(), 5);
        let snap = rec.snapshot();
        assert_eq!(rec.len(), 5, "snapshot does not drain");
        let drained = rec.drain();
        assert_eq!(drained, snap);
        assert_eq!(
            drained.iter().map(|r| r.ordinal).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(rec.is_empty());
        // The ordinal sequence continues across drains.
        rec.record(9.0, 10.0, "paged", "hilbert", 2, 99);
        assert_eq!(rec.snapshot()[0].ordinal, 5);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn full_ring_drops_oldest_and_counts_them() {
        let rec = FlightRecorder::default();
        for i in 0..(RECORDER_CAPACITY + 10) {
            rec.record(0.0, 1.0, "frozen", "hilbert", 0, i as u64);
        }
        assert_eq!(rec.len(), RECORDER_CAPACITY);
        assert_eq!(rec.dropped(), 10);
        assert_eq!(rec.snapshot()[0].ordinal, 10, "oldest 10 were evicted");
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn record_compiles_out_under_obs_off() {
        let rec = FlightRecorder::default();
        rec.record(0.0, 1.0, "frozen", "hilbert", 0, 1);
        assert!(rec.is_empty());
        assert_eq!(encode_wrk(&rec.drain()).len(), 16);
    }

    #[test]
    fn json_snapshot_has_version_and_records() {
        let rec = FlightRecorder::default();
        #[cfg(not(feature = "obs-off"))]
        rec.record(0.25, 0.75, "frozen", "hilbert", 0, 0xABCD);
        let doc = Json::parse(&rec.to_json().render()).expect("valid json");
        assert_eq!(doc.get("version").and_then(Json::as_f64), Some(1.0));
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(doc.get("count").and_then(Json::as_f64), Some(1.0));
            let records = doc.get("records").and_then(Json::as_arr).expect("records");
            assert_eq!(
                records[0].get("digest").and_then(Json::as_str),
                Some("000000000000abcd")
            );
        }
    }
}
