//! Structured per-query EXPLAIN records.
//!
//! An [`ExplainRecord`] captures everything the planner and the query
//! pipeline know about one executed query: the plan it chose (index
//! probe vs sequential scan), the plane it ran on (paged r-tree vs
//! frozen SoA tree), the space-filling curve behind the index, the
//! subfield/cell/page counts of the filter and refine phases, the
//! per-phase wall timings, the ingest epoch the snapshot was pinned
//! to, and the buffer-pool hit ratio.
//!
//! The record is `Copy` and assembled allocation-free on the caller's
//! stack from the span/counter handles the pipeline already maintains:
//! string-ish fields are either `&'static str` (plan, plane) or a
//! fixed-capacity inline [`Label`] (index and curve names, which exist
//! as heap `String`s only at registration time). Records are retained
//! in a bounded ring inside the [`Tracer`](crate::Tracer) and attached
//! to every [`SlowQueryReport`](crate::SlowQueryReport) captured while
//! one is being assembled.

use crate::json::Json;
use std::fmt;

/// Maximum EXPLAIN records retained in the tracer's ring.
pub const EXPLAIN_RING_CAPACITY: usize = 64;

/// Byte capacity of an inline [`Label`].
pub const LABEL_CAPACITY: usize = 24;

/// A fixed-capacity, `Copy` string for index/curve names.
///
/// Longer inputs are truncated at a UTF-8 character boundary; every
/// label produced by the index layer ("I-Hilbert", "I-All",
/// "adaptive-scan", ...) fits without truncation.
#[derive(Clone, Copy)]
pub struct Label {
    buf: [u8; LABEL_CAPACITY],
    len: u8,
}

impl Label {
    /// The empty label.
    pub const fn empty() -> Self {
        Self {
            buf: [0; LABEL_CAPACITY],
            len: 0,
        }
    }

    /// Builds a label from `s`, truncating at a character boundary if
    /// it exceeds [`LABEL_CAPACITY`] bytes.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(LABEL_CAPACITY);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; LABEL_CAPACITY];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        Self {
            buf,
            len: end as u8,
        }
    }

    /// The label's text.
    pub fn as_str(&self) -> &str {
        // Truncation in `new` respects character boundaries, so the
        // prefix is always valid UTF-8.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl Default for Label {
    fn default() -> Self {
        Self::empty()
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Label {}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The structured EXPLAIN record for one executed query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplainRecord {
    /// Query id from the tracer's sequence.
    pub query_id: u64,
    /// Index the query ran against (metric label, e.g. `I-Hilbert`).
    pub index: Label,
    /// Planner decision: `"probe"` (index) or `"scan"` (sequential).
    pub plan: &'static str,
    /// Execution plane: `"paged"` (r-tree) or `"frozen"` (SoA tree);
    /// `"scan"` plans report `"cells"`.
    pub plane: &'static str,
    /// Space-filling curve behind the index cell ordering.
    pub curve: Label,
    /// Queried value band, low end.
    pub band_lo: f64,
    /// Queried value band, high end.
    pub band_hi: f64,
    /// Subfields whose interval intersected the band (filter output).
    pub subfields: u64,
    /// Cells examined during refine.
    pub cells_examined: u64,
    /// Cells that actually qualified.
    pub cells_qualifying: u64,
    /// Logical pages read by the filter phase.
    pub filter_pages: u64,
    /// Logical pages read by the refine phase.
    pub refine_pages: u64,
    /// Filter-phase wall nanoseconds.
    pub filter_ns: u64,
    /// Refine-phase wall nanoseconds.
    pub refine_ns: u64,
    /// Total query wall nanoseconds (the enclosing span).
    pub total_ns: u64,
    /// Ingest epoch the snapshot was pinned to (0 = static plane).
    pub epoch: u64,
    /// Buffer-pool hits during the query.
    pub pool_hits: u64,
    /// Buffer-pool misses during the query.
    pub pool_misses: u64,
}

impl ExplainRecord {
    /// Nanoseconds not attributed to filter or refine (planning,
    /// dispatch, result assembly). Saturates at zero.
    pub fn other_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.filter_ns)
            .saturating_sub(self.refine_ns)
    }

    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when the pool was never
    /// touched.
    pub fn pool_hit_ratio(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            1.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Multi-line human-readable rendering (the `fielddb explain`
    /// output).
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "query #{} on {} (plan={}, plane={}, curve={}, epoch={})\n",
            self.query_id, self.index, self.plan, self.plane, self.curve, self.epoch
        ));
        out.push_str(&format!(
            "  band [{:.4}, {:.4}]  subfields={}  cells {}/{} qualifying\n",
            self.band_lo, self.band_hi, self.subfields, self.cells_qualifying, self.cells_examined
        ));
        out.push_str(&format!(
            "  filter: {:>5} pages  {:>10.1} us\n",
            self.filter_pages,
            self.filter_ns as f64 / 1e3
        ));
        out.push_str(&format!(
            "  refine: {:>5} pages  {:>10.1} us\n",
            self.refine_pages,
            self.refine_ns as f64 / 1e3
        ));
        out.push_str(&format!(
            "  other:  {:>17.1} us  (total {:.1} us)\n",
            self.other_ns() as f64 / 1e3,
            self.total_ns as f64 / 1e3
        ));
        out.push_str(&format!(
            "  pool:   {} hits / {} misses  ({:.1}% hit ratio)",
            self.pool_hits,
            self.pool_misses,
            self.pool_hit_ratio() * 100.0
        ));
        out
    }

    /// JSON rendering with every field, for `/explain/recent` and the
    /// `fielddb explain --json` output.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("query_id", Json::Num(self.query_id as f64)),
            ("index", Json::Str(self.index.as_str().to_string())),
            ("plan", Json::Str(self.plan.to_string())),
            ("plane", Json::Str(self.plane.to_string())),
            ("curve", Json::Str(self.curve.as_str().to_string())),
            ("band_lo", Json::Num(self.band_lo)),
            ("band_hi", Json::Num(self.band_hi)),
            ("subfields", Json::Num(self.subfields as f64)),
            ("cells_examined", Json::Num(self.cells_examined as f64)),
            ("cells_qualifying", Json::Num(self.cells_qualifying as f64)),
            ("filter_pages", Json::Num(self.filter_pages as f64)),
            ("refine_pages", Json::Num(self.refine_pages as f64)),
            ("filter_ns", Json::Num(self.filter_ns as f64)),
            ("refine_ns", Json::Num(self.refine_ns as f64)),
            ("other_ns", Json::Num(self.other_ns() as f64)),
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("epoch", Json::Num(self.epoch as f64)),
            ("pool_hits", Json::Num(self.pool_hits as f64)),
            ("pool_misses", Json::Num(self.pool_misses as f64)),
            ("pool_hit_ratio", Json::Num(self.pool_hit_ratio())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExplainRecord {
        ExplainRecord {
            query_id: 12,
            index: Label::new("I-Hilbert"),
            plan: "probe",
            plane: "frozen",
            curve: Label::new("hilbert"),
            band_lo: 0.3,
            band_hi: 0.4,
            subfields: 14,
            cells_examined: 1024,
            cells_qualifying: 812,
            filter_pages: 0,
            refine_pages: 37,
            filter_ns: 45_200,
            refine_ns: 181_000,
            total_ns: 229_300,
            epoch: 0,
            pool_hits: 37,
            pool_misses: 0,
        }
    }

    #[test]
    fn label_truncates_on_char_boundary() {
        let l = Label::new("abcdefghijklmnopqrstuvwxyz");
        assert_eq!(l.as_str().len(), LABEL_CAPACITY);
        // Multi-byte char straddling the cap must not be split.
        let s = "x".repeat(LABEL_CAPACITY - 1) + "é";
        let l = Label::new(&s);
        assert_eq!(l.as_str(), "x".repeat(LABEL_CAPACITY - 1));
        assert_eq!(Label::new("I-Hilbert").as_str(), "I-Hilbert");
    }

    #[test]
    fn other_ns_saturates_and_hit_ratio_bounds() {
        let mut r = sample();
        assert_eq!(r.other_ns(), 3_100);
        r.filter_ns = u64::MAX;
        assert_eq!(r.other_ns(), 0);
        r.pool_hits = 0;
        r.pool_misses = 0;
        assert_eq!(r.pool_hit_ratio(), 1.0);
        r.pool_misses = 3;
        assert_eq!(r.pool_hit_ratio(), 0.0);
    }

    #[test]
    fn text_rendering_carries_the_breakdown() {
        let text = sample().render_text();
        assert!(text.contains("plan=probe"), "{text}");
        assert!(text.contains("plane=frozen"), "{text}");
        assert!(text.contains("filter:"), "{text}");
        assert!(text.contains("refine:"), "{text}");
        assert!(text.contains("100.0% hit ratio"), "{text}");
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let rec = sample();
        let doc = Json::parse(&rec.to_json().render()).expect("valid json");
        assert_eq!(doc.get("plan").and_then(Json::as_str), Some("probe"));
        assert_eq!(doc.get("total_ns").and_then(Json::as_f64), Some(229_300.0));
        assert_eq!(doc.get("other_ns").and_then(Json::as_f64), Some(3_100.0));
        let sum = doc.get("filter_ns").and_then(Json::as_f64).unwrap()
            + doc.get("refine_ns").and_then(Json::as_f64).unwrap();
        assert!(sum <= doc.get("total_ns").and_then(Json::as_f64).unwrap());
    }
}
