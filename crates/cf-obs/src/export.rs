//! Machine-readable exporters for the telemetry plane.
//!
//! Everything the registry and tracer collect can leave the process in
//! three formats:
//!
//! * **Chrome trace JSON** ([`chrome_trace_json`]) — the event-ring
//!   snapshot as a `chrome://tracing` / Perfetto-loadable document.
//!   Span events carry only durations (recording wall-clock start
//!   times would make snapshots non-reproducible), so the exporter
//!   *lays the trace out*: each query gets its own track (`tid`), and
//!   within a query, phases at the same nesting depth are placed
//!   end-to-end. The output is a pure function of the event list —
//!   byte-identical across runs for the same events, which is what the
//!   golden-file tests pin.
//! * **JSONL event log** ([`EventLog`]) — one JSON object per line,
//!   appended to a file with size-based rotation, for shipping into
//!   log pipelines.
//! * **Prometheus text** — rendered by
//!   [`MetricsRegistry::render_text`](crate::MetricsRegistry::render_text)
//!   and parsed back by [`parse_prometheus`] (the `fielddb top`
//!   one-shot watch view scrapes and re-renders it).
//!
//! In-process, the [`EventJournal`] buffers structured lifecycle events
//! (epoch published, repack start/end, run deferred/reclaimed) in a
//! bounded ring until a CLI or exporter drains them into an
//! [`EventLog`].

use crate::json::Json;
use crate::trace::{SlowQueryReport, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One span event as a Chrome-trace "complete" (`"ph":"X"`) event.
/// `ts`/`dur` are microseconds, per the trace-event format.
fn chrome_event(e: &TraceEvent, ts_us: f64) -> Json {
    Json::obj([
        ("name", Json::Str(e.phase.to_owned())),
        ("cat", Json::Str("query".into())),
        ("ph", Json::Str("X".into())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(e.query_id as f64)),
        ("ts", Json::Num(ts_us)),
        ("dur", Json::Num(e.nanos as f64 / 1e3)),
        (
            "args",
            Json::obj([
                ("query_id", Json::Num(e.query_id as f64)),
                ("pages", Json::Num(e.pages as f64)),
                ("depth", Json::Num(e.depth as f64)),
            ]),
        ),
    ])
}

/// Lays out the event ring as Chrome-trace events (see module docs for
/// the deterministic layout rule) without the surrounding document.
fn chrome_events(events: &[TraceEvent]) -> Vec<Json> {
    // Per-query cursor stack: cursor[d] is where the next depth-d phase
    // of that query starts, in nanoseconds.
    let mut cursors: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let stack = cursors.entry(e.query_id).or_default();
        let d = e.depth as usize;
        if stack.len() <= d {
            stack.resize(d + 1, 0);
        }
        let ts = stack[d];
        let end = ts + e.nanos;
        stack[d] = end;
        // Phases nested under the *next* sibling at this depth start at
        // its start, not wherever the previous sibling's children ended.
        for deeper in stack[d + 1..].iter_mut() {
            *deeper = end;
        }
        out.push(chrome_event(e, ts as f64 / 1e3));
    }
    out
}

/// Renders the event ring as a self-contained Chrome trace document
/// (`{"traceEvents": [...]}`), loadable by `chrome://tracing` and
/// Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    Json::obj([
        ("traceEvents", Json::Arr(chrome_events(events))),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .render()
}

/// One slow-query report as a JSON object. The structured EXPLAIN
/// record is included when the pipeline attached one (omitted rather
/// than null when absent, so pre-EXPLAIN consumers see an unchanged
/// shape).
pub fn slow_report_record(r: &SlowQueryReport) -> Json {
    let mut fields = vec![
        ("kind".to_owned(), Json::Str("slow_query".into())),
        ("query_id".to_owned(), Json::Num(r.query_id as f64)),
        ("total_ns".to_owned(), Json::Num(r.total_ns as f64)),
        (
            "phases".to_owned(),
            Json::Arr(
                r.phases
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("phase", Json::Str(p.phase.to_owned())),
                            ("pages", Json::Num(p.pages as f64)),
                            ("nanos", Json::Num(p.nanos as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(explain) = &r.explain {
        fields.push(("explain".to_owned(), explain.to_json()));
    }
    Json::Obj(fields)
}

/// Renders the full trace dump served by the `/traces` endpoint: the
/// Chrome-trace events plus the retained slow-query reports. Still a
/// valid Chrome trace document (Perfetto ignores the extra key).
pub fn trace_dump_json(events: &[TraceEvent], slow: &[SlowQueryReport]) -> String {
    Json::obj([
        ("traceEvents", Json::Arr(chrome_events(events))),
        (
            "slowQueries",
            Json::Arr(slow.iter().map(slow_report_record).collect()),
        ),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .render()
}

/// One span event as a structured log record.
pub fn trace_event_record(e: &TraceEvent) -> Json {
    Json::obj([
        ("kind", Json::Str("span".into())),
        ("query_id", Json::Num(e.query_id as f64)),
        ("phase", Json::Str(e.phase.to_owned())),
        ("pages", Json::Num(e.pages as f64)),
        ("nanos", Json::Num(e.nanos as f64)),
        ("depth", Json::Num(e.depth as f64)),
    ])
}

/// A JSONL structured event log with size-based rotation.
///
/// Records append to `path`, one compact JSON object per line, each
/// stamped with a monotonically increasing `seq`. When appending would
/// push the active file past `max_bytes`, it is rotated to `path.1`
/// (existing rotations shifting to `path.2`, …) and the oldest beyond
/// `max_files` rotations is deleted. Rotation is size-based only — no
/// wall clock — so a scripted sequence produces identical files.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    max_files: usize,
    seq: u64,
}

impl EventLog {
    /// Opens (creating or appending to) the log at `path`. `max_bytes`
    /// caps the active file; `max_files` is how many rotated files are
    /// kept besides the active one.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64, max_files: usize) -> io::Result<Self> {
        Ok(Self {
            path: path.into(),
            max_bytes: max_bytes.max(1),
            max_files,
            seq: 0,
        })
    }

    fn rotated(&self, n: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    fn rotate(&self) -> io::Result<()> {
        if self.max_files == 0 {
            std::fs::remove_file(&self.path)?;
            return Ok(());
        }
        let _ = std::fs::remove_file(self.rotated(self.max_files));
        for n in (1..self.max_files).rev() {
            let from = self.rotated(n);
            if from.exists() {
                std::fs::rename(&from, self.rotated(n + 1))?;
            }
        }
        std::fs::rename(&self.path, self.rotated(1))
    }

    /// Appends one record (a `seq` field is prepended to it). Rotates
    /// first when the active file would exceed the size cap.
    pub fn append(&mut self, record: &Json) -> io::Result<()> {
        let mut stamped = vec![("seq".to_owned(), Json::Num(self.seq as f64))];
        if let Json::Obj(pairs) = record {
            stamped.extend(pairs.iter().cloned());
        } else {
            stamped.push(("value".to_owned(), record.clone()));
        }
        let line = format!("{}\n", Json::Obj(stamped).render());
        let size = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if size > 0 && size + line.len() as u64 > self.max_bytes {
            self.rotate()?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(line.as_bytes())?;
        self.seq += 1;
        Ok(())
    }

    /// Appends every span event and slow-query report of a trace
    /// snapshot.
    pub fn append_trace(
        &mut self,
        events: &[TraceEvent],
        slow: &[SlowQueryReport],
    ) -> io::Result<()> {
        for e in events {
            self.append(&trace_event_record(e))?;
        }
        for r in slow {
            self.append(&slow_report_record(r))?;
        }
        Ok(())
    }

    /// The active log path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Maximum events retained by an [`EventJournal`].
pub const JOURNAL_RING_CAPACITY: usize = 1024;

/// A bounded in-process ring of structured lifecycle events.
///
/// The ingest plane and the storage GC emit epoch-lifecycle events here
/// (`epoch_published`, `repack_start`, `repack_end`, `run_deferred`,
/// `run_reclaimed`); a CLI or exporter periodically drains them into an
/// [`EventLog`] JSONL sink. Cloning shares the ring. Under `obs-off`
/// emission compiles to a no-op and the closure passed to
/// [`EventJournal::emit_with`] is never evaluated.
#[derive(Debug, Clone, Default)]
pub struct EventJournal {
    ring: Arc<Mutex<VecDeque<Json>>>,
}

impl EventJournal {
    /// Appends one event, evicting the oldest past the ring capacity.
    #[cfg(not(feature = "obs-off"))]
    pub fn emit(&self, event: Json) {
        let mut ring = self.ring.lock().expect("journal ring poisoned");
        if ring.len() >= JOURNAL_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Appends one event (compiled out under `obs-off`).
    #[cfg(feature = "obs-off")]
    #[inline]
    pub fn emit(&self, _event: Json) {}

    /// Appends the event built by `make`; under `obs-off` the closure
    /// is never evaluated, so event assembly compiles out with it.
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce() -> Json) {
        #[cfg(not(feature = "obs-off"))]
        self.emit(make());
        #[cfg(feature = "obs-off")]
        let _ = make;
    }

    /// Snapshot of the retained events (oldest first) without draining.
    pub fn events(&self) -> Vec<Json> {
        self.ring
            .lock()
            .expect("journal ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Drains every pending event (oldest first).
    pub fn take(&self) -> Vec<Json> {
        self.ring
            .lock()
            .expect("journal ring poisoned")
            .drain(..)
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("journal ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the ring.
    pub fn clear(&self) {
        self.ring.lock().expect("journal ring poisoned").clear();
    }

    /// Drains every pending event into a JSONL [`EventLog`]; returns
    /// how many were written.
    pub fn drain_to(&self, log: &mut EventLog) -> io::Result<usize> {
        let events = self.take();
        for e in &events {
            log.append(e)?;
        }
        Ok(events.len())
    }
}

/// One sample of a Prometheus text snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric (series) name, including `_bucket`/`_sum`/`_count`
    /// suffixes for histograms.
    pub name: String,
    /// Label set, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed Prometheus text snapshot: `# TYPE` declarations plus
/// samples, both in exposition order.
#[derive(Debug, Clone, Default)]
pub struct PromSnapshot {
    /// `(family name, kind)` per `# TYPE` line.
    pub types: Vec<(String, String)>,
    /// Every sample line.
    pub samples: Vec<PromSample>,
}

impl PromSnapshot {
    /// The value of a series by exact name (`None` when absent or
    /// ambiguous under multiple label sets).
    pub fn value(&self, name: &str) -> Option<f64> {
        let mut hits = self.samples.iter().filter(|s| s.name == name);
        match (hits.next(), hits.next()) {
            (Some(s), None) => Some(s.value),
            _ => None,
        }
    }

    /// Sum of every series of a family (0 when the family is absent).
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

/// Parses the subset of the Prometheus text exposition format that
/// [`MetricsRegistry::render_text`](crate::MetricsRegistry::render_text)
/// produces (no escaped label values, no timestamps, no exemplars).
pub fn parse_prometheus(text: &str) -> Result<PromSnapshot, String> {
    let mut snap = PromSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind)) => {
                    snap.types.push((name.to_owned(), kind.to_owned()));
                }
                _ => return Err(format!("line {}: malformed TYPE", lineno + 1)),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (series, value) = line.rsplit_once(' ').ok_or_else(|| bad("missing value"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| bad("bad value"))?,
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix('}')
                    .ok_or_else(|| bad("unterminated label set"))?;
                let mut labels = Vec::new();
                for pair in inner.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| bad("bad label"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| bad("unquoted label value"))?;
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name.to_owned(), labels)
            }
        };
        snap.samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(query_id: u64, phase: &'static str, pages: u64, nanos: u64, depth: u32) -> TraceEvent {
        TraceEvent {
            query_id,
            phase,
            pages,
            nanos,
            depth,
        }
    }

    #[test]
    fn chrome_layout_places_siblings_end_to_end() {
        // Completion order: filter, refine, then the enclosing query.
        let events = [
            ev(0, "filter", 3, 2_000, 1),
            ev(0, "refine", 5, 3_000, 1),
            ev(0, "query", 8, 6_000, 0),
        ];
        let doc = Json::parse(&chrome_trace_json(&events)).expect("valid json");
        let out = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        assert_eq!(out.len(), 3);
        let ts: Vec<f64> = out
            .iter()
            .map(|e| e.get("ts").and_then(Json::as_f64).expect("ts"))
            .collect();
        // filter at 0, refine right after it, the parent query at 0.
        assert_eq!(ts, vec![0.0, 2.0, 0.0]);
        assert_eq!(out[1].get("dur").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            out[2]
                .get("args")
                .and_then(|a| a.get("pages"))
                .and_then(Json::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn chrome_layout_is_per_query() {
        let events = [ev(1, "query", 0, 1_000, 0), ev(2, "query", 0, 1_000, 0)];
        let doc = Json::parse(&chrome_trace_json(&events)).expect("valid json");
        let out = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        // Independent tracks: both start at 0 on their own tid.
        for (e, tid) in out.iter().zip([1.0, 2.0]) {
            assert_eq!(e.get("ts").and_then(Json::as_f64), Some(0.0));
            assert_eq!(e.get("tid").and_then(Json::as_f64), Some(tid));
        }
    }

    #[test]
    fn event_log_rotates_by_size() {
        let dir = std::env::temp_dir().join(format!("cfobs_rotate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("events.jsonl");
        let mut log = EventLog::open(&path, 128, 2).expect("open");
        for i in 0..12 {
            log.append(&trace_event_record(&ev(i, "filter", i, 100, 1)))
                .expect("append");
        }
        assert!(path.exists());
        assert!(log.rotated(1).exists(), "first rotation exists");
        assert!(log.rotated(2).exists(), "second rotation exists");
        assert!(!log.rotated(3).exists(), "old rotations are dropped");
        // Every line everywhere is valid JSON with a seq stamp.
        let mut seqs = Vec::new();
        for p in [log.rotated(2), log.rotated(1), path.clone()] {
            for line in std::fs::read_to_string(&p).expect("read").lines() {
                let v = Json::parse(line).expect("valid json line");
                seqs.push(v.get("seq").and_then(Json::as_f64).expect("seq") as u64);
            }
        }
        // Rotation never drops or reorders surviving records.
        assert!(seqs.windows(2).all(|w| w[0] + 1 == w[1]), "{seqs:?}");
        assert_eq!(*seqs.last().expect("non-empty"), 11);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn prometheus_round_trip() {
        let reg = crate::MetricsRegistry::new();
        reg.counter_with("hits_total", &[("shard", "0")]).add(3);
        reg.counter_with("hits_total", &[("shard", "1")]).add(4);
        reg.gauge("depth").set(1.5);
        reg.histogram_with("lat", &[], &[10.0]).observe(5.0);
        let snap = parse_prometheus(&reg.render_text()).expect("parse");
        assert_eq!(snap.total("hits_total"), 7.0);
        assert_eq!(snap.value("depth"), Some(1.5));
        assert!(snap.types.contains(&("lat".into(), "histogram".into())));
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(snap.value("lat_count"), Some(1.0));
        let bucket = snap
            .samples
            .iter()
            .find(|s| s.name == "lat_bucket" && s.labels == vec![("le".into(), "+Inf".into())]);
        assert!(bucket.is_some(), "{snap:?}");
    }

    #[test]
    fn prometheus_parser_rejects_garbage() {
        assert!(parse_prometheus("metric_without_value\n").is_err());
        assert!(parse_prometheus("m{k=v} 1\n").is_err());
        assert!(parse_prometheus("m{k=\"v\" 1\n").is_err());
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn journal_ring_is_bounded_and_drains_to_jsonl() {
        let journal = EventJournal::default();
        for i in 0..(JOURNAL_RING_CAPACITY + 7) {
            journal.emit(Json::obj([
                ("event", Json::Str("epoch_published".into())),
                ("epoch", Json::Num(i as f64)),
            ]));
        }
        assert_eq!(journal.len(), JOURNAL_RING_CAPACITY);
        let first = journal
            .events()
            .first()
            .and_then(|e| e.get("epoch").and_then(Json::as_f64));
        assert_eq!(first, Some(7.0));

        let dir = std::env::temp_dir().join(format!("cfobs_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("journal.jsonl");
        let mut log = EventLog::open(&path, u64::MAX, 2).expect("open");
        let written = journal.drain_to(&mut log).expect("drain");
        assert_eq!(written, JOURNAL_RING_CAPACITY);
        assert!(journal.is_empty());
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), JOURNAL_RING_CAPACITY);
        for line in text.lines() {
            let v = Json::parse(line).expect("valid json line");
            assert_eq!(
                v.get("event").and_then(Json::as_str),
                Some("epoch_published")
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn journal_is_inert_under_obs_off() {
        let journal = EventJournal::default();
        journal.emit(Json::Null);
        journal.emit_with(|| unreachable!("emit_with must not evaluate under obs-off"));
        assert!(journal.is_empty());
    }

    #[test]
    fn slow_report_record_carries_the_explain() {
        let mut r = SlowQueryReport {
            query_id: 4,
            total_ns: 1_000,
            phases: vec![],
            explain: None,
        };
        assert!(slow_report_record(&r).get("explain").is_none());
        r.explain = Some(crate::ExplainRecord {
            query_id: 4,
            index: crate::Label::new("I-Hilbert"),
            plan: "probe",
            plane: "paged",
            curve: crate::Label::new("hilbert"),
            band_lo: 0.0,
            band_hi: 1.0,
            subfields: 2,
            cells_examined: 8,
            cells_qualifying: 8,
            filter_pages: 1,
            refine_pages: 2,
            filter_ns: 300,
            refine_ns: 600,
            total_ns: 1_000,
            epoch: 3,
            pool_hits: 3,
            pool_misses: 0,
        });
        let rec = slow_report_record(&r);
        let explain = rec.get("explain").expect("explain attached");
        assert_eq!(explain.get("epoch").and_then(Json::as_f64), Some(3.0));
        assert_eq!(explain.get("plan").and_then(Json::as_str), Some("probe"));
    }
}
