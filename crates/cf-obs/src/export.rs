//! Machine-readable exporters for the telemetry plane.
//!
//! Everything the registry and tracer collect can leave the process in
//! three formats:
//!
//! * **Chrome trace JSON** ([`chrome_trace_json`]) — the event-ring
//!   snapshot as a `chrome://tracing` / Perfetto-loadable document.
//!   Span events carry only durations (recording wall-clock start
//!   times would make snapshots non-reproducible), so the exporter
//!   *lays the trace out*: each query gets its own track (`tid`), and
//!   within a query, phases at the same nesting depth are placed
//!   end-to-end. The output is a pure function of the event list —
//!   byte-identical across runs for the same events, which is what the
//!   golden-file tests pin.
//! * **JSONL event log** ([`EventLog`]) — one JSON object per line,
//!   appended to a file with size-based rotation, for shipping into
//!   log pipelines.
//! * **Prometheus text** — rendered by
//!   [`MetricsRegistry::render_text`](crate::MetricsRegistry::render_text)
//!   and parsed back by [`parse_prometheus`] (the `fielddb top`
//!   one-shot watch view scrapes and re-renders it).

use crate::json::Json;
use crate::trace::{SlowQueryReport, TraceEvent};
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// One span event as a Chrome-trace "complete" (`"ph":"X"`) event.
/// `ts`/`dur` are microseconds, per the trace-event format.
fn chrome_event(e: &TraceEvent, ts_us: f64) -> Json {
    Json::obj([
        ("name", Json::Str(e.phase.to_owned())),
        ("cat", Json::Str("query".into())),
        ("ph", Json::Str("X".into())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(e.query_id as f64)),
        ("ts", Json::Num(ts_us)),
        ("dur", Json::Num(e.nanos as f64 / 1e3)),
        (
            "args",
            Json::obj([
                ("query_id", Json::Num(e.query_id as f64)),
                ("pages", Json::Num(e.pages as f64)),
                ("depth", Json::Num(e.depth as f64)),
            ]),
        ),
    ])
}

/// Lays out the event ring as Chrome-trace events (see module docs for
/// the deterministic layout rule) without the surrounding document.
fn chrome_events(events: &[TraceEvent]) -> Vec<Json> {
    // Per-query cursor stack: cursor[d] is where the next depth-d phase
    // of that query starts, in nanoseconds.
    let mut cursors: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let stack = cursors.entry(e.query_id).or_default();
        let d = e.depth as usize;
        if stack.len() <= d {
            stack.resize(d + 1, 0);
        }
        let ts = stack[d];
        let end = ts + e.nanos;
        stack[d] = end;
        // Phases nested under the *next* sibling at this depth start at
        // its start, not wherever the previous sibling's children ended.
        for deeper in stack[d + 1..].iter_mut() {
            *deeper = end;
        }
        out.push(chrome_event(e, ts as f64 / 1e3));
    }
    out
}

/// Renders the event ring as a self-contained Chrome trace document
/// (`{"traceEvents": [...]}`), loadable by `chrome://tracing` and
/// Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    Json::obj([
        ("traceEvents", Json::Arr(chrome_events(events))),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .render()
}

/// One slow-query report as a JSON object.
pub fn slow_report_record(r: &SlowQueryReport) -> Json {
    Json::obj([
        ("kind", Json::Str("slow_query".into())),
        ("query_id", Json::Num(r.query_id as f64)),
        ("total_ns", Json::Num(r.total_ns as f64)),
        (
            "phases",
            Json::Arr(
                r.phases
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("phase", Json::Str(p.phase.to_owned())),
                            ("pages", Json::Num(p.pages as f64)),
                            ("nanos", Json::Num(p.nanos as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders the full trace dump served by the `/traces` endpoint: the
/// Chrome-trace events plus the retained slow-query reports. Still a
/// valid Chrome trace document (Perfetto ignores the extra key).
pub fn trace_dump_json(events: &[TraceEvent], slow: &[SlowQueryReport]) -> String {
    Json::obj([
        ("traceEvents", Json::Arr(chrome_events(events))),
        (
            "slowQueries",
            Json::Arr(slow.iter().map(slow_report_record).collect()),
        ),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .render()
}

/// One span event as a structured log record.
pub fn trace_event_record(e: &TraceEvent) -> Json {
    Json::obj([
        ("kind", Json::Str("span".into())),
        ("query_id", Json::Num(e.query_id as f64)),
        ("phase", Json::Str(e.phase.to_owned())),
        ("pages", Json::Num(e.pages as f64)),
        ("nanos", Json::Num(e.nanos as f64)),
        ("depth", Json::Num(e.depth as f64)),
    ])
}

/// A JSONL structured event log with size-based rotation.
///
/// Records append to `path`, one compact JSON object per line, each
/// stamped with a monotonically increasing `seq`. When appending would
/// push the active file past `max_bytes`, it is rotated to `path.1`
/// (existing rotations shifting to `path.2`, …) and the oldest beyond
/// `max_files` rotations is deleted. Rotation is size-based only — no
/// wall clock — so a scripted sequence produces identical files.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    max_files: usize,
    seq: u64,
}

impl EventLog {
    /// Opens (creating or appending to) the log at `path`. `max_bytes`
    /// caps the active file; `max_files` is how many rotated files are
    /// kept besides the active one.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64, max_files: usize) -> io::Result<Self> {
        Ok(Self {
            path: path.into(),
            max_bytes: max_bytes.max(1),
            max_files,
            seq: 0,
        })
    }

    fn rotated(&self, n: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    fn rotate(&self) -> io::Result<()> {
        if self.max_files == 0 {
            std::fs::remove_file(&self.path)?;
            return Ok(());
        }
        let _ = std::fs::remove_file(self.rotated(self.max_files));
        for n in (1..self.max_files).rev() {
            let from = self.rotated(n);
            if from.exists() {
                std::fs::rename(&from, self.rotated(n + 1))?;
            }
        }
        std::fs::rename(&self.path, self.rotated(1))
    }

    /// Appends one record (a `seq` field is prepended to it). Rotates
    /// first when the active file would exceed the size cap.
    pub fn append(&mut self, record: &Json) -> io::Result<()> {
        let mut stamped = vec![("seq".to_owned(), Json::Num(self.seq as f64))];
        if let Json::Obj(pairs) = record {
            stamped.extend(pairs.iter().cloned());
        } else {
            stamped.push(("value".to_owned(), record.clone()));
        }
        let line = format!("{}\n", Json::Obj(stamped).render());
        let size = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if size > 0 && size + line.len() as u64 > self.max_bytes {
            self.rotate()?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(line.as_bytes())?;
        self.seq += 1;
        Ok(())
    }

    /// Appends every span event and slow-query report of a trace
    /// snapshot.
    pub fn append_trace(
        &mut self,
        events: &[TraceEvent],
        slow: &[SlowQueryReport],
    ) -> io::Result<()> {
        for e in events {
            self.append(&trace_event_record(e))?;
        }
        for r in slow {
            self.append(&slow_report_record(r))?;
        }
        Ok(())
    }

    /// The active log path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One sample of a Prometheus text snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric (series) name, including `_bucket`/`_sum`/`_count`
    /// suffixes for histograms.
    pub name: String,
    /// Label set, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed Prometheus text snapshot: `# TYPE` declarations plus
/// samples, both in exposition order.
#[derive(Debug, Clone, Default)]
pub struct PromSnapshot {
    /// `(family name, kind)` per `# TYPE` line.
    pub types: Vec<(String, String)>,
    /// Every sample line.
    pub samples: Vec<PromSample>,
}

impl PromSnapshot {
    /// The value of a series by exact name (`None` when absent or
    /// ambiguous under multiple label sets).
    pub fn value(&self, name: &str) -> Option<f64> {
        let mut hits = self.samples.iter().filter(|s| s.name == name);
        match (hits.next(), hits.next()) {
            (Some(s), None) => Some(s.value),
            _ => None,
        }
    }

    /// Sum of every series of a family (0 when the family is absent).
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }
}

/// Parses the subset of the Prometheus text exposition format that
/// [`MetricsRegistry::render_text`](crate::MetricsRegistry::render_text)
/// produces (no escaped label values, no timestamps, no exemplars).
pub fn parse_prometheus(text: &str) -> Result<PromSnapshot, String> {
    let mut snap = PromSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind)) => {
                    snap.types.push((name.to_owned(), kind.to_owned()));
                }
                _ => return Err(format!("line {}: malformed TYPE", lineno + 1)),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (series, value) = line.rsplit_once(' ').ok_or_else(|| bad("missing value"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| bad("bad value"))?,
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix('}')
                    .ok_or_else(|| bad("unterminated label set"))?;
                let mut labels = Vec::new();
                for pair in inner.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| bad("bad label"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| bad("unquoted label value"))?;
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name.to_owned(), labels)
            }
        };
        snap.samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(query_id: u64, phase: &'static str, pages: u64, nanos: u64, depth: u32) -> TraceEvent {
        TraceEvent {
            query_id,
            phase,
            pages,
            nanos,
            depth,
        }
    }

    #[test]
    fn chrome_layout_places_siblings_end_to_end() {
        // Completion order: filter, refine, then the enclosing query.
        let events = [
            ev(0, "filter", 3, 2_000, 1),
            ev(0, "refine", 5, 3_000, 1),
            ev(0, "query", 8, 6_000, 0),
        ];
        let doc = Json::parse(&chrome_trace_json(&events)).expect("valid json");
        let out = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        assert_eq!(out.len(), 3);
        let ts: Vec<f64> = out
            .iter()
            .map(|e| e.get("ts").and_then(Json::as_f64).expect("ts"))
            .collect();
        // filter at 0, refine right after it, the parent query at 0.
        assert_eq!(ts, vec![0.0, 2.0, 0.0]);
        assert_eq!(out[1].get("dur").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            out[2]
                .get("args")
                .and_then(|a| a.get("pages"))
                .and_then(Json::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn chrome_layout_is_per_query() {
        let events = [ev(1, "query", 0, 1_000, 0), ev(2, "query", 0, 1_000, 0)];
        let doc = Json::parse(&chrome_trace_json(&events)).expect("valid json");
        let out = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events");
        // Independent tracks: both start at 0 on their own tid.
        for (e, tid) in out.iter().zip([1.0, 2.0]) {
            assert_eq!(e.get("ts").and_then(Json::as_f64), Some(0.0));
            assert_eq!(e.get("tid").and_then(Json::as_f64), Some(tid));
        }
    }

    #[test]
    fn event_log_rotates_by_size() {
        let dir = std::env::temp_dir().join(format!("cfobs_rotate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("events.jsonl");
        let mut log = EventLog::open(&path, 128, 2).expect("open");
        for i in 0..12 {
            log.append(&trace_event_record(&ev(i, "filter", i, 100, 1)))
                .expect("append");
        }
        assert!(path.exists());
        assert!(log.rotated(1).exists(), "first rotation exists");
        assert!(log.rotated(2).exists(), "second rotation exists");
        assert!(!log.rotated(3).exists(), "old rotations are dropped");
        // Every line everywhere is valid JSON with a seq stamp.
        let mut seqs = Vec::new();
        for p in [log.rotated(2), log.rotated(1), path.clone()] {
            for line in std::fs::read_to_string(&p).expect("read").lines() {
                let v = Json::parse(line).expect("valid json line");
                seqs.push(v.get("seq").and_then(Json::as_f64).expect("seq") as u64);
            }
        }
        // Rotation never drops or reorders surviving records.
        assert!(seqs.windows(2).all(|w| w[0] + 1 == w[1]), "{seqs:?}");
        assert_eq!(*seqs.last().expect("non-empty"), 11);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn prometheus_round_trip() {
        let reg = crate::MetricsRegistry::new();
        reg.counter_with("hits_total", &[("shard", "0")]).add(3);
        reg.counter_with("hits_total", &[("shard", "1")]).add(4);
        reg.gauge("depth").set(1.5);
        reg.histogram_with("lat", &[], &[10.0]).observe(5.0);
        let snap = parse_prometheus(&reg.render_text()).expect("parse");
        assert_eq!(snap.total("hits_total"), 7.0);
        assert_eq!(snap.value("depth"), Some(1.5));
        assert!(snap.types.contains(&("lat".into(), "histogram".into())));
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(snap.value("lat_count"), Some(1.0));
        let bucket = snap
            .samples
            .iter()
            .find(|s| s.name == "lat_bucket" && s.labels == vec![("le".into(), "+Inf".into())]);
        assert!(bucket.is_some(), "{snap:?}");
    }

    #[test]
    fn prometheus_parser_rejects_garbage() {
        assert!(parse_prometheus("metric_without_value\n").is_err());
        assert!(parse_prometheus("m{k=v} 1\n").is_err());
        assert!(parse_prometheus("m{k=\"v\" 1\n").is_err());
    }
}
