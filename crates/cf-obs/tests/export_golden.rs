//! Golden-file tests for the exporters.
//!
//! A scripted query sequence (fixed durations and page counts — no
//! wall clock anywhere) is laid out by the Chrome-trace exporter and
//! the JSONL event log, and the bytes are pinned against files under
//! `tests/golden/`. Regenerate with
//! `BLESS=1 cargo test -p cf-obs --test export_golden` after an
//! intentional format change, and review the diff like any other code.

use cf_obs::export::{trace_dump_json, trace_event_record, EventLog};
use cf_obs::{Json, SlowQueryReport, TraceEvent};
use std::path::PathBuf;

fn ev(query_id: u64, phase: &'static str, pages: u64, nanos: u64, depth: u32) -> TraceEvent {
    TraceEvent {
        query_id,
        phase,
        pages,
        nanos,
        depth,
    }
}

/// The scripted sequence: three Q2 queries with the real two-level
/// filter/refine/query span structure (children complete before their
/// parent, exactly as the RAII spans record them), the third slow
/// enough to have produced a slow-query report.
fn scripted() -> (Vec<TraceEvent>, Vec<SlowQueryReport>) {
    let events = vec![
        ev(0, "filter", 4, 120_000, 1),
        ev(0, "refine", 9, 340_500, 1),
        ev(0, "query", 13, 470_250, 0),
        ev(1, "filter", 2, 80_000, 1),
        ev(1, "refine", 3, 95_000, 1),
        ev(1, "query", 5, 180_000, 0),
        ev(2, "filter", 64, 2_400_000, 1),
        ev(2, "refine", 180, 9_100_000, 1),
        ev(2, "query", 244, 11_600_000, 0),
    ];
    // `explain: None` keeps the exported record shape — and thus the
    // golden bytes — identical to the pre-EXPLAIN format.
    let slow = vec![SlowQueryReport {
        query_id: 2,
        total_ns: 11_600_000,
        phases: vec![
            ev(2, "filter", 64, 2_400_000, 1),
            ev(2, "refine", 180, 9_100_000, 1),
        ],
        explain: None,
    }];
    (events, slow)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {}: {e} (run with BLESS=1 to create)", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file — if intentional, re-bless and review the diff"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let (events, slow) = scripted();
    let dump = trace_dump_json(&events, &slow);
    // Sanity before pinning bytes: it must be a valid Chrome-trace doc.
    let doc = Json::parse(&dump).expect("valid json");
    let out = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert_eq!(out.len(), events.len());
    check_golden("trace_dump.json", &dump);
}

#[test]
fn chrome_trace_is_deterministic_across_runs() {
    let (events, slow) = scripted();
    assert_eq!(
        trace_dump_json(&events, &slow),
        trace_dump_json(&events, &slow)
    );
}

#[test]
fn event_log_matches_golden() {
    let dir = std::env::temp_dir().join(format!("cfobs_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("events.jsonl");
    // Cap large enough that the scripted sequence never rotates: the
    // golden file is a single deterministic JSONL stream.
    let mut log = EventLog::open(&path, u64::MAX, 2).expect("open");
    let (events, slow) = scripted();
    log.append_trace(&events, &slow).expect("append");
    let actual = std::fs::read_to_string(&path).expect("read log");
    for line in actual.lines() {
        Json::parse(line).expect("every log line is valid JSON");
    }
    check_golden("events.jsonl", &actual);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn event_log_records_match_their_events() {
    let e = ev(7, "filter", 11, 5_000, 1);
    let rec = trace_event_record(&e);
    assert_eq!(rec.get("query_id").and_then(Json::as_f64), Some(7.0));
    assert_eq!(rec.get("phase").and_then(Json::as_str), Some("filter"));
    assert_eq!(rec.get("nanos").and_then(Json::as_f64), Some(5_000.0));
}
