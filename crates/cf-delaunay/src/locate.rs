//! Walk-based point location on a triangulation.
//!
//! The naive `locate` scans all triangles; the classic improvement is
//! the *straight walk*: starting from any triangle, repeatedly step to
//! the neighbour across an edge that separates the query point, until
//! the containing triangle is reached — expected `O(√n)` steps on
//! well-shaped meshes. Requires the edge-adjacency structure built by
//! [`Adjacency::build`].

use crate::Triangulation;
use cf_geom::Point2;
use std::collections::HashMap;

/// Triangle adjacency: for each triangle, the neighbour across each of
/// its three edges (edge `e` is between vertices `e` and `(e+1) % 3`).
#[derive(Debug, Clone)]
pub struct Adjacency {
    neighbors: Vec<[Option<u32>; 3]>,
}

impl Adjacency {
    /// Builds the adjacency of `t` in `O(n)` via an edge map.
    pub fn build(t: &Triangulation) -> Self {
        let mut edge_owner: HashMap<(usize, usize), (u32, u8)> = HashMap::new();
        let mut neighbors = vec![[None; 3]; t.triangles.len()];
        for (ti, tri) in t.triangles.iter().enumerate() {
            for e in 0..3 {
                let (u, v) = (tri[e], tri[(e + 1) % 3]);
                let key = (u.min(v), u.max(v));
                match edge_owner.remove(&key) {
                    None => {
                        edge_owner.insert(key, (ti as u32, e as u8));
                    }
                    Some((other, oe)) => {
                        neighbors[ti][e] = Some(other);
                        neighbors[other as usize][oe as usize] = Some(ti as u32);
                    }
                }
            }
        }
        Self { neighbors }
    }

    /// Neighbour of triangle `t` across edge `e`, if any (hull edges
    /// have none).
    pub fn neighbor(&self, t: usize, e: usize) -> Option<usize> {
        self.neighbors[t][e].map(|n| n as usize)
    }

    /// Walks from `start` toward `p`; returns the containing triangle,
    /// or `None` when the walk exits the convex hull.
    ///
    /// Falls back to the exhaustive scan if the walk exceeds its step
    /// budget (possible on degenerate geometry), so the result is always
    /// correct.
    pub fn locate_walk(&self, t: &Triangulation, start: usize, p: Point2) -> Option<usize> {
        let n = t.triangles.len();
        if n == 0 {
            return None;
        }
        let mut cur = start.min(n - 1);
        let mut prev = usize::MAX;
        // Generous budget: a straight walk crosses each triangle once.
        for _ in 0..n + 3 {
            let tri = t.triangle(cur);
            // Find an edge strictly separating p from the triangle.
            let mut moved = false;
            for e in 0..3 {
                let a = tri.vertices[e];
                let b = tri.vertices[(e + 1) % 3];
                // CCW triangle: inside is left of each edge. p strictly
                // right of edge e => cross to that neighbour.
                if a.cross(b, p) < -1e-12 {
                    match self.neighbor(cur, e) {
                        Some(next) if next != prev => {
                            prev = cur;
                            cur = next;
                            moved = true;
                            break;
                        }
                        Some(_) => {
                            // Only way on is back where we came from:
                            // try another separating edge.
                            continue;
                        }
                        None => return None, // left the hull
                    }
                }
            }
            if !moved {
                // No separating edge: p is inside (or on) this triangle.
                return Some(cur);
            }
        }
        // Degenerate walk (numerical loop): exhaustive fallback.
        t.locate(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangulate;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_tin(n: usize, seed: u64) -> Triangulation {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();
        triangulate(&pts).expect("triangulates")
    }

    #[test]
    fn adjacency_is_symmetric_and_complete() {
        let t = random_tin(200, 1);
        let adj = Adjacency::build(&t);
        let mut hull_edges = 0;
        for ti in 0..t.triangles.len() {
            for e in 0..3 {
                match adj.neighbor(ti, e) {
                    Some(other) => {
                        // The neighbour must point back at us.
                        let back = (0..3).any(|oe| adj.neighbor(other, oe) == Some(ti));
                        assert!(back, "asymmetric adjacency {ti} <-> {other}");
                    }
                    None => hull_edges += 1,
                }
            }
        }
        // A Delaunay triangulation's boundary is the convex hull: at
        // least 3 hull edges.
        assert!(hull_edges >= 3);
    }

    #[test]
    fn walk_matches_exhaustive_locate() {
        let t = random_tin(300, 2);
        let adj = Adjacency::build(&t);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let p = Point2::new(rng.gen_range(-5.0..105.0), rng.gen_range(-5.0..105.0));
            let start = rng.gen_range(0..t.triangles.len());
            let walked = adj.locate_walk(&t, start, p);
            let scanned = t.locate(p);
            match (walked, scanned) {
                (Some(a), Some(b)) => {
                    // Boundary points may land in either adjacent
                    // triangle; containment is the real contract.
                    assert!(t.triangle(a).contains(p), "walk found non-containing {a}");
                    let _ = b;
                }
                (None, None) => {}
                (w, s) => panic!("walk {w:?} vs scan {s:?} at {p}"),
            }
        }
    }

    #[test]
    fn walk_from_every_start_triangle() {
        let t = random_tin(80, 7);
        let adj = Adjacency::build(&t);
        let p = Point2::new(50.0, 50.0);
        let want_contains = t.locate(p).is_some();
        for start in 0..t.triangles.len() {
            let got = adj.locate_walk(&t, start, p);
            assert_eq!(got.is_some(), want_contains, "start {start}");
            if let Some(ti) = got {
                assert!(t.triangle(ti).contains(p));
            }
        }
    }

    #[test]
    fn outside_hull_returns_none() {
        let t = random_tin(100, 9);
        let adj = Adjacency::build(&t);
        for p in [
            Point2::new(-50.0, 50.0),
            Point2::new(200.0, 200.0),
            Point2::new(50.0, -30.0),
        ] {
            assert_eq!(adj.locate_walk(&t, 0, p), None);
        }
    }
}
