//! Bowyer–Watson Delaunay triangulation.
//!
//! TINs (Triangulated Irregular Networks) are one of the two cell models
//! of the paper (§2.1): irregular triangles whose vertices are the sample
//! points. The paper's second real dataset is "urban noise data …
//! represented by TIN with about 9000 triangles"; to generate such TINs
//! from scattered sample points we need a triangulator, and Delaunay is
//! the canonical choice (it maximizes minimum angles, which keeps linear
//! interpolation well-conditioned).
//!
//! The implementation is the classic incremental Bowyer–Watson algorithm
//! with a super-triangle, floating-point in-circle tests with a relative
//! tolerance, and deterministic behaviour for reproducible workloads.

//!
//! # Example
//!
//! ```
//! use cf_delaunay::{triangulate, Adjacency};
//! use cf_geom::Point2;
//!
//! let sites = vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(4.0, 0.0),
//!     Point2::new(4.0, 4.0),
//!     Point2::new(0.0, 4.0),
//!     Point2::new(2.0, 2.0),
//! ];
//! let tin = triangulate(&sites).unwrap();
//! assert_eq!(tin.triangles.len(), 4);
//!
//! // Walk-based point location.
//! let adjacency = Adjacency::build(&tin);
//! let t = adjacency.locate_walk(&tin, 0, Point2::new(1.0, 1.9)).unwrap();
//! assert!(tin.triangle(t).contains(Point2::new(1.0, 1.9)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod locate;
mod triangulate;

pub use locate::Adjacency;
pub use triangulate::{triangulate, Triangulation, TriangulationError};
