//! Incremental Bowyer–Watson triangulation.

use cf_geom::{Aabb, Point2, Triangle};
use std::collections::HashMap;
use std::fmt;

/// Failure modes of [`triangulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriangulationError {
    /// Fewer than three distinct points were supplied.
    TooFewPoints,
    /// All points are (numerically) collinear — no triangle exists.
    AllCollinear,
    /// A point has a non-finite coordinate.
    NonFinitePoint,
}

impl fmt::Display for TriangulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewPoints => write!(f, "need at least 3 distinct points"),
            Self::AllCollinear => write!(f, "all points are collinear"),
            Self::NonFinitePoint => write!(f, "point with non-finite coordinate"),
        }
    }
}

impl std::error::Error for TriangulationError {}

/// A Delaunay triangulation of a point set.
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// The input points (indices below refer to this vector).
    pub points: Vec<Point2>,
    /// Triangles as CCW-ordered triplets of point indices.
    pub triangles: Vec<[usize; 3]>,
}

impl Triangulation {
    /// The geometric triangle for entry `t`.
    pub fn triangle(&self, t: usize) -> Triangle {
        let [a, b, c] = self.triangles[t];
        Triangle::new(self.points[a], self.points[b], self.points[c])
    }

    /// Total area covered (the convex hull area for a Delaunay
    /// triangulation).
    pub fn area(&self) -> f64 {
        (0..self.triangles.len())
            .map(|t| self.triangle(t).area())
            .sum()
    }

    /// Index of a triangle containing `p`, or `None` if `p` lies outside
    /// the convex hull. Linear scan — fine for the moderate TINs used in
    /// the workloads; a spatial index layer (cf-field) handles large Q1
    /// workloads.
    pub fn locate(&self, p: Point2) -> Option<usize> {
        (0..self.triangles.len()).find(|&t| self.triangle(t).contains(p))
    }
}

/// Returns `> 0` if `p` lies strictly inside the circumcircle of the CCW
/// triangle `(a, b, c)`, `< 0` if strictly outside, `~0` if cocircular.
fn incircle(a: Point2, b: Point2, c: Point2, p: Point2) -> f64 {
    let adx = a.x - p.x;
    let ady = a.y - p.y;
    let bdx = b.x - p.x;
    let bdy = b.y - p.y;
    let cdx = c.x - p.x;
    let cdy = c.y - p.y;
    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;
    adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx)
}

/// Computes the Delaunay triangulation of `input`.
///
/// Numerically-duplicate points (distance < 1e-12 of the bounding-box
/// diagonal) are merged; the returned [`Triangulation::points`] keeps the
/// *original* point list so indices remain meaningful to the caller, and
/// merged duplicates simply do not appear in any triangle.
pub fn triangulate(input: &[Point2]) -> Result<Triangulation, TriangulationError> {
    if input.iter().any(|p| !p.is_finite()) {
        return Err(TriangulationError::NonFinitePoint);
    }
    // Deduplicate on a fine grid to avoid degenerate zero-area cavities.
    let bbox = Aabb::hull_of_points(input);
    if bbox.is_empty() {
        return Err(TriangulationError::TooFewPoints);
    }
    let diag = ((bbox.extent(0)).powi(2) + (bbox.extent(1)).powi(2)).sqrt();
    let merge_tol = (diag * 1e-12).max(f64::MIN_POSITIVE);
    let mut kept: Vec<usize> = Vec::with_capacity(input.len());
    {
        let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        let cell = merge_tol * 2.0;
        for (i, p) in input.iter().enumerate() {
            let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
            let mut dup = false;
            'outer: for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(ids) = grid.get(&(key.0 + dx, key.1 + dy)) {
                        if ids.iter().any(|&j| input[j].distance(*p) < merge_tol) {
                            dup = true;
                            break 'outer;
                        }
                    }
                }
            }
            if !dup {
                grid.entry(key).or_default().push(i);
                kept.push(i);
            }
        }
    }
    if kept.len() < 3 {
        return Err(TriangulationError::TooFewPoints);
    }

    // Super-triangle comfortably containing every point.
    let center = bbox.center_point();
    let size = diag.max(1.0) * 16.0;
    let s0 = Point2::new(center.x - size, center.y - size * 0.5);
    let s1 = Point2::new(center.x + size, center.y - size * 0.5);
    let s2 = Point2::new(center.x, center.y + size);

    // Working vertex list: input points followed by super vertices.
    let n = input.len();
    let mut verts: Vec<Point2> = input.to_vec();
    verts.extend([s0, s1, s2]);

    // Active triangle soup (indices into verts, CCW).
    let mut tris: Vec<[usize; 3]> = vec![[n, n + 1, n + 2]];

    // Unit directions toward the super vertices; the conflict predicates
    // below treat super vertices as points at infinity along these fixed
    // directions, which keeps all super-touching conflict regions
    // mutually consistent (finite super coordinates would make the
    // circumcircles bulge by `chord²/8R` and disagree with each other,
    // disconnecting insertion cavities near the hull).
    let sdir: [Point2; 3] = {
        let norm = |p: Point2| {
            let d = p - center;
            let len = (d.x * d.x + d.y * d.y).sqrt();
            Point2::new(d.x / len, d.y / len)
        };
        [norm(s0), norm(s1), norm(s2)]
    };

    // Conflict predicate with symbolic points at infinity:
    // * no super vertex — ordinary in-circle test;
    // * one super vertex — the circumcircle degenerates to the
    //   half-plane left of the (CCW-directed) real edge;
    // * two super vertices s_i, s_j — it degenerates to the half-plane
    //   through the real vertex with outward normal along the bisector
    //   of the two infinite directions;
    // * three — the initial triangle: conflicts with everything.
    let conflicts = |tri: [usize; 3], p: Point2| -> bool {
        let supers: usize = tri.iter().filter(|&&v| v >= n).count();
        match supers {
            0 => {
                let [a, b, c] = tri;
                incircle(verts[a], verts[b], verts[c], p) > 0.0
            }
            1 => {
                // Rotate so the super vertex is last: CCW triangle
                // (u, v, s) has s strictly left of u→v, so the conflict
                // half-plane is `left of u→v`.
                let [a, b, c] = tri;
                let (u, v) = if a >= n {
                    (b, c)
                } else if b >= n {
                    (c, a)
                } else {
                    (a, b)
                };
                verts[u].cross(verts[v], p) > 0.0
            }
            2 => {
                let [a, b, c] = tri;
                let (real, si, sj) = if a < n {
                    (a, b, c)
                } else if b < n {
                    (b, c, a)
                } else {
                    (c, a, b)
                };
                let di = sdir[si - n];
                let dj = sdir[sj - n];
                let m = Point2::new(di.x + dj.x, di.y + dj.y);
                let rel = p - verts[real];
                rel.x * m.x + rel.y * m.y > 0.0
            }
            _ => true,
        }
    };

    for &pi in &kept {
        let p = verts[pi];
        // Find all triangles in conflict with p.
        let mut bad: Vec<usize> = Vec::new();
        for (t, tri) in tris.iter().enumerate() {
            if conflicts(*tri, p) {
                bad.push(t);
            }
        }
        if bad.is_empty() {
            // Numerically on an edge of everything (e.g. exact duplicate
            // that survived dedup): skip the point rather than corrupt
            // the soup.
            continue;
        }
        // Cavity boundary: edges belonging to exactly one bad triangle.
        let mut edge_count: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for &t in &bad {
            let [a, b, c] = tris[t];
            for (u, v) in [(a, b), (b, c), (c, a)] {
                let key = (u.min(v), u.max(v));
                let entry = edge_count.entry(key).or_insert((0, 0));
                entry.0 += 1;
                // Remember the directed orientation from the first owner.
                if entry.0 == 1 {
                    *entry = (1, if u < v { 0 } else { 1 });
                }
            }
        }
        // Remove bad triangles (descending order keeps indices valid).
        bad.sort_unstable_by(|a, b| b.cmp(a));
        let mut boundary: Vec<(usize, usize)> = Vec::new();
        for (&(u, v), &(count, orient)) in &edge_count {
            if count == 1 {
                // Restore the directed edge as seen by its bad triangle,
                // so the new triangle (u, v, p) is CCW.
                if orient == 0 {
                    boundary.push((u, v));
                } else {
                    boundary.push((v, u));
                }
            }
        }
        for t in bad {
            tris.swap_remove(t);
        }
        for (u, v) in boundary {
            tris.push([u, v, pi]);
        }
    }

    // Drop triangles that use super vertices.
    let mut triangles: Vec<[usize; 3]> = tris
        .into_iter()
        .filter(|t| t.iter().all(|&v| v < n))
        .collect();
    if triangles.is_empty() {
        return Err(TriangulationError::AllCollinear);
    }
    // Normalize orientation to CCW (should already hold, but guarantee it).
    for t in triangles.iter_mut() {
        let tri = Triangle::new(input[t[0]], input[t[1]], input[t[2]]);
        if tri.signed_area() < 0.0 {
            t.swap(1, 2);
        }
    }
    // Deterministic output order.
    triangles.sort_unstable();

    Ok(Triangulation {
        points: input.to_vec(),
        triangles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    #[test]
    fn square_gives_two_triangles() {
        let t = triangulate(&pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])).unwrap();
        assert_eq!(t.triangles.len(), 2);
        assert!((t.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_triangle() {
        let t = triangulate(&pts(&[(0.0, 0.0), (2.0, 0.0), (1.0, 2.0)])).unwrap();
        assert_eq!(t.triangles.len(), 1);
        assert!(t.triangle(0).signed_area() > 0.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(
            triangulate(&pts(&[(0.0, 0.0), (1.0, 1.0)])).unwrap_err(),
            TriangulationError::TooFewPoints
        );
        assert_eq!(
            triangulate(&pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])).unwrap_err(),
            TriangulationError::AllCollinear
        );
        assert_eq!(
            triangulate(&[
                Point2::new(f64::NAN, 0.0),
                Point2::ORIGIN,
                Point2::new(1.0, 0.0)
            ])
            .unwrap_err(),
            TriangulationError::NonFinitePoint
        );
    }

    #[test]
    fn duplicates_are_merged() {
        let t = triangulate(&pts(&[
            (0.0, 0.0),
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (1.0, 0.0),
        ]))
        .unwrap();
        assert_eq!(t.triangles.len(), 1);
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn delaunay_property_holds() {
        let points = random_points(120, 42);
        let t = triangulate(&points).unwrap();
        // No point lies strictly inside any triangle's circumcircle.
        for k in 0..t.triangles.len() {
            let [a, b, c] = t.triangles[k];
            let (center, r2) = t.triangle(k).circumcircle().expect("non-degenerate");
            let r = r2.sqrt();
            for (i, p) in points.iter().enumerate() {
                if i == a || i == b || i == c {
                    continue;
                }
                let d = center.distance(*p);
                assert!(
                    d >= r - 1e-6 * r.max(1.0),
                    "point {i} inside circumcircle of triangle {k}: d={d}, r={r}"
                );
            }
        }
    }

    #[test]
    fn covers_convex_hull_area() {
        let points = random_points(200, 7);
        let t = triangulate(&points).unwrap();
        let hull_area = convex_hull_area(&points);
        assert!(
            (t.area() - hull_area).abs() < 1e-6 * hull_area,
            "triangulation area {} vs hull {}",
            t.area(),
            hull_area
        );
    }

    #[test]
    fn euler_triangle_count() {
        // For points in general position: T = 2n − 2 − h.
        let points = random_points(150, 99);
        let t = triangulate(&points).unwrap();
        let h = convex_hull_size(&points);
        assert_eq!(t.triangles.len(), 2 * points.len() - 2 - h);
    }

    #[test]
    fn every_point_is_used() {
        let points = random_points(100, 5);
        let t = triangulate(&points).unwrap();
        let mut used = vec![false; points.len()];
        for tri in &t.triangles {
            for &v in tri {
                used[v] = true;
            }
        }
        assert!(used.iter().all(|&u| u));
    }

    #[test]
    fn locate_finds_containing_triangle() {
        let points = random_points(60, 13);
        let t = triangulate(&points).unwrap();
        // Centroids must locate to their own triangle region.
        for k in 0..t.triangles.len() {
            let c = t.triangle(k).centroid();
            let found = t.locate(c).expect("centroid inside hull");
            assert!(t.triangle(found).contains(c));
        }
        assert_eq!(t.locate(Point2::new(-1000.0, -1000.0)), None);
    }

    #[test]
    fn grid_points_triangulate() {
        // Cocircular points (grid corners) are the classic degenerate
        // case; the triangulation must still cover the full area.
        let mut points = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                points.push(Point2::new(i as f64, j as f64));
            }
        }
        let t = triangulate(&points).unwrap();
        assert!((t.area() - 49.0).abs() < 1e-6);
        assert_eq!(t.triangles.len(), 2 * 49);
    }

    // --- small test helpers -------------------------------------------

    fn convex_hull(points: &[Point2]) -> Vec<Point2> {
        let mut pts: Vec<Point2> = points.to_vec();
        pts.sort_by(|a, b| {
            a.x.partial_cmp(&b.x)
                .unwrap()
                .then(a.y.partial_cmp(&b.y).unwrap())
        });
        let mut hull: Vec<Point2> = Vec::new();
        for phase in 0..2 {
            let start = hull.len();
            let iter: Box<dyn Iterator<Item = &Point2>> = if phase == 0 {
                Box::new(pts.iter())
            } else {
                Box::new(pts.iter().rev())
            };
            for p in iter {
                while hull.len() >= start + 2 {
                    let q = hull[hull.len() - 1];
                    let r = hull[hull.len() - 2];
                    if r.cross(q, *p) <= 0.0 {
                        hull.pop();
                    } else {
                        break;
                    }
                }
                hull.push(*p);
            }
            hull.pop();
        }
        hull
    }

    fn convex_hull_area(points: &[Point2]) -> f64 {
        cf_geom::Polygon::new(convex_hull(points)).area()
    }

    fn convex_hull_size(points: &[Point2]) -> usize {
        convex_hull(points).len()
    }
}
