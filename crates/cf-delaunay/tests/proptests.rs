//! Property-based tests for the Delaunay triangulator.

use cf_delaunay::triangulate;
use cf_geom::{Point2, Polygon};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new(x, y)).collect())
}

fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    if pts.len() < 3 {
        return pts;
    }
    let mut hull: Vec<Point2> = Vec::new();
    for phase in 0..2 {
        let start = hull.len();
        let iter: Box<dyn Iterator<Item = &Point2>> = if phase == 0 {
            Box::new(pts.iter())
        } else {
            Box::new(pts.iter().rev())
        };
        for p in iter {
            while hull.len() >= start + 2 {
                let q = hull[hull.len() - 1];
                let r = hull[hull.len() - 2];
                if r.cross(q, *p) <= 0.0 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(*p);
        }
        hull.pop();
    }
    hull
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn triangulation_covers_hull(pts in points(3..120)) {
        let Ok(t) = triangulate(&pts) else {
            // Degenerate inputs (collinear) are allowed to fail.
            return Ok(());
        };
        let hull_area = Polygon::new(convex_hull(&pts)).area();
        prop_assert!(
            (t.area() - hull_area).abs() <= 1e-6 * hull_area.max(1.0),
            "area {} vs hull {}", t.area(), hull_area
        );
    }

    #[test]
    fn triangles_are_ccw_and_nondegenerate(pts in points(3..100)) {
        let Ok(t) = triangulate(&pts) else { return Ok(()); };
        for k in 0..t.triangles.len() {
            prop_assert!(t.triangle(k).signed_area() > 0.0, "triangle {k} not CCW");
        }
    }

    #[test]
    fn delaunay_empty_circumcircle(pts in points(3..60)) {
        let Ok(t) = triangulate(&pts) else { return Ok(()); };
        for k in 0..t.triangles.len() {
            let [a, b, c] = t.triangles[k];
            let Some((center, r2)) = t.triangle(k).circumcircle() else { continue; };
            let r = r2.sqrt();
            for (i, p) in pts.iter().enumerate() {
                if i == a || i == b || i == c {
                    continue;
                }
                prop_assert!(
                    center.distance(*p) >= r - 1e-6 * r.max(1.0),
                    "point {i} strictly inside circumcircle of triangle {k}"
                );
            }
        }
    }

    #[test]
    fn no_overlapping_triangles(pts in points(3..80)) {
        // Sum of areas equals hull area AND centroids locate uniquely
        // (no triangle contains another triangle's centroid strictly).
        let Ok(t) = triangulate(&pts) else { return Ok(()); };
        for k in 0..t.triangles.len() {
            let c = t.triangle(k).centroid();
            let mut containing = 0;
            for j in 0..t.triangles.len() {
                if t.triangle(j).contains(c) {
                    containing += 1;
                }
            }
            // The centroid lies strictly inside its own triangle; shared
            // boundary tolerance may count a neighbour at most rarely.
            prop_assert!(containing >= 1);
            prop_assert!(containing <= 2, "centroid of {k} inside {containing} triangles");
        }
    }
}
