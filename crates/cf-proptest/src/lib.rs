//! A minimal property-testing harness exposing the subset of the
//! `proptest` API this workspace's test suites use.
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases `proptest = { package = "cf-proptest" }` to this crate. It
//! keeps proptest's *surface* — `proptest!`, strategies with
//! `prop_map`/`prop_flat_map`, `prop::collection::vec`, `any::<T>()`,
//! `Just`, `prop_oneof!`, `prop_assert*!`, `prop_assume!` — but runs
//! plain seeded random sampling: each case derives its generator from
//! the case number, so failures reproduce exactly, and there is no
//! shrinking (the failing inputs are printed instead).

#![forbid(unsafe_code)]

use rand::{Rng as _, SeedableRng};

/// Per-test configuration (subset of `proptest::test_runner`'s).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Maximum rejected (assumption-failed) draws before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Default::default()
        }
    }
}

/// The generator handed to strategies.
pub struct TestRng(pub rand::StdRng);

impl TestRng {
    /// Deterministic generator for one test case.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // Mix the test name in so sibling tests draw different streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        Self(rand::StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// Marker returned by [`prop_assume!`] when a case is rejected.
#[derive(Debug)]
pub struct Rejected;

/// A source of random values of one type.
///
/// Object-safe so heterogeneous strategies can be boxed by
/// [`prop_oneof!`]; combinators live in [`StrategyExt`] (blanket-implemented,
/// and re-exported under the familiar `Strategy` bound via the prelude).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Combinators over [`Strategy`] (mirrors proptest's inherent methods).
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// See [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`StrategyExt::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.0.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights cover the draw")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Values with a canonical "any" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specification for [`vec`]: an exact size or a range, as in
    /// real proptest's `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(!r.is_empty(), "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(!r.is_empty(), "empty length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `vec(element, len)` — a vector of `element` draws; `len` is an
    /// exact `usize` or a (half-open or inclusive) range.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace alias so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs, in one import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        StrategyExt as _, TestRng,
    };
}

/// Asserts a condition inside a property (panics with the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Rejects the current case when the assumption does not hold; the
/// runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::StrategyExt::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::StrategyExt::boxed($strategy))),+
        ])
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each declared function becomes a `#[test]` that runs
/// `config.cases` deterministic random cases; assumption failures
/// (`prop_assume!`) draw replacement cases, and assertion failures
/// panic after printing the case inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            // Callers write `#[test]` themselves (matching real proptest
            // syntax); it is captured here with any other attributes and
            // re-emitted verbatim on the generated zero-arg fn.
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rejects: u32 = 0;
                let mut case: u64 = 0;
                let mut done: u32 = 0;
                while done < config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    // Sample all inputs first so they can be reported.
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    let outcome: ::std::result::Result<(), $crate::Rejected> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => done += 1,
                        Err($crate::Rejected) => {
                            rejects += 1;
                            assert!(
                                rejects <= config.max_global_rejects,
                                "too many rejected cases ({rejects}) in {}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::for_case("unit", 0);
        let s = (0usize..5, -1.0..1.0f64).prop_map(|(a, b)| (a, b));
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 5);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("unit2", 0);
        let s = collection::vec(0u32..10, 2..6);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_case("unit3", 0);
        let s = prop_oneof![
            2 => Just(0u8),
            1 => Just(1u8),
        ];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_assumes(x in 0u32..100, v in collection::vec(0u32..10, 1..4)) {
            prop_assume!(x != 3);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 3);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
