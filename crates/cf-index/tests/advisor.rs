//! Property tests for the workload-aware cost-model advisor:
//! `repack_with_observed_workload()` must return byte-identical Q2
//! answers while reducing the predicted filter cost on skewed
//! workloads, and must degrade to an explicit no-op when no workload
//! was observed (always the case under `obs-off`).

use cf_field::GridField;
use cf_geom::Interval;
use cf_index::{IHilbert, ValueIndex};
#[cfg(not(feature = "obs-off"))]
use cf_index::{IHilbertConfig, QueryPlane};
use cf_storage::StorageEngine;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A smooth two-bump surface (strong spatial autocorrelation — the
/// regime subfields exploit), values roughly in `[0, 100]`.
fn smooth_field(n: usize) -> GridField {
    let vw = n + 1;
    let mut values = Vec::new();
    for y in 0..vw {
        for x in 0..vw {
            let (fx, fy) = (x as f64 / n as f64, y as f64 / n as f64);
            values.push(
                100.0 * (-((fx - 0.3).powi(2) + (fy - 0.3).powi(2)) * 8.0).exp()
                    + 60.0 * (-((fx - 0.75).powi(2) + (fy - 0.7).powi(2)) * 12.0).exp(),
            );
        }
    }
    GridField::from_values(vw, vw, values)
}

/// Answer signature of one Q2 query: everything the paper's estimation
/// step reports, with the area bit-exact.
#[derive(Debug, PartialEq, Eq)]
struct Answer {
    qualifying: usize,
    regions: usize,
    area_bits: u64,
}

fn answer(index: &IHilbert<GridField>, engine: &StorageEngine, band: Interval) -> Answer {
    let stats = index.query_stats(engine, band).expect("query");
    Answer {
        qualifying: stats.cells_qualifying,
        regions: stats.num_regions,
        area_bits: stats.area.to_bits(),
    }
}

/// A deterministic probe set spanning the whole value domain.
fn probe_bands() -> Vec<Interval> {
    let mut rng = StdRng::seed_from_u64(2002);
    (0..30)
        .map(|_| {
            let lo: f64 = rng.gen_range(-5.0..105.0);
            Interval::new(lo, lo + rng.gen_range(0.0..30.0))
        })
        .collect()
}

/// Drives a skewed workload of *long* bands (mean length far above the
/// probe mix), so the empirical `E[|q|]` differs sharply from the
/// static assumption and the greedy grouping actually moves.
fn run_long_band_workload(index: &IHilbert<GridField>, engine: &StorageEngine) {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..60 {
        let lo: f64 = rng.gen_range(-5.0..40.0);
        let band = Interval::new(lo, lo + rng.gen_range(55.0..70.0));
        index.query_stats(engine, band).expect("query");
    }
}

#[test]
fn repack_returns_byte_identical_q2_answers() {
    let engine = StorageEngine::in_memory();
    let field = smooth_field(40);
    let mut index = IHilbert::build(&engine, &field).expect("build");
    let bands = probe_bands();
    let before: Vec<Answer> = bands.iter().map(|&b| answer(&index, &engine, b)).collect();

    run_long_band_workload(&index, &engine);
    let outcome = index
        .repack_with_observed_workload(&engine)
        .expect("repack");
    // The property must hold whether or not the grouping moved — but
    // this workload is built to move it, so verify we're actually
    // exercising the interesting path.
    #[cfg(not(feature = "obs-off"))]
    assert!(outcome.repacked, "{outcome}");
    #[cfg(feature = "obs-off")]
    assert!(!outcome.repacked, "{outcome}");

    let after: Vec<Answer> = bands.iter().map(|&b| answer(&index, &engine, b)).collect();
    for ((a, b), band) in before.iter().zip(&after).zip(&bands) {
        assert_eq!(a, b, "answers drifted for band {band}");
    }
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn repack_reduces_predicted_cost_on_skewed_workload() {
    let engine = StorageEngine::in_memory();
    let field = smooth_field(40);
    let mut index = IHilbert::build(&engine, &field).expect("build");
    run_long_band_workload(&index, &engine);

    let report = index.workload_report(&engine);
    assert!(report.profile.is_informed());
    assert!(
        report.profile.mean_query_len > 50.0,
        "workload should skew long: {}",
        report.profile.mean_query_len
    );

    let outcome = index
        .repack_with_observed_workload(&engine)
        .expect("repack");
    assert!(outcome.repacked, "{outcome}");
    assert!(
        outcome.predicted_pages_after < outcome.predicted_pages_before,
        "empirical repack should lower predicted cost: {outcome}"
    );
    // Long queries flatten P differences, so the grouping merges.
    assert!(
        outcome.subfields_after < outcome.subfields_before,
        "{outcome}"
    );

    // Idempotence: repacking again under the same workload finds the
    // grouping already optimal.
    let again = index
        .repack_with_observed_workload(&engine)
        .expect("repack");
    assert!(!again.repacked, "{again}");
    assert_eq!(again.subfields_before, outcome.subfields_after);
}

#[test]
fn repack_declines_without_observed_workload() {
    let engine = StorageEngine::in_memory();
    let field = smooth_field(16);
    let mut index = IHilbert::build(&engine, &field).expect("build");
    let subfields = index.num_subfields();
    // No queries ran: the band-length histogram is empty.
    let outcome = index
        .repack_with_observed_workload(&engine)
        .expect("repack");
    assert!(!outcome.repacked, "{outcome}");
    assert!(!outcome.profile.is_informed());
    assert_eq!(index.num_subfields(), subfields);
    assert_eq!(
        outcome.predicted_pages_before,
        outcome.predicted_pages_after
    );
}

#[cfg(feature = "obs-off")]
#[test]
fn advisor_is_a_clean_no_op_under_obs_off() {
    // Even after real queries, observation is compiled out: the profile
    // stays uninformed and repack declines — but everything still
    // compiles, runs, and answers correctly.
    let engine = StorageEngine::in_memory();
    let field = smooth_field(16);
    let mut index = IHilbert::build(&engine, &field).expect("build");
    for lo in [0.0, 20.0, 50.0] {
        index
            .query_stats(&engine, Interval::new(lo, lo + 40.0))
            .expect("query");
    }
    let report = index.workload_report(&engine);
    assert!(!report.profile.is_informed());
    // Uninformed: the empirical column falls back to the static model.
    assert_eq!(
        report.predicted_pages_empirical,
        report.predicted_pages_static
    );
    let outcome = index
        .repack_with_observed_workload(&engine)
        .expect("repack");
    assert!(!outcome.repacked, "{outcome}");
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn repack_keeps_the_frozen_plane_current() {
    let engine = StorageEngine::in_memory();
    let field = smooth_field(24);
    let mut index = IHilbert::build_with(
        &engine,
        &field,
        IHilbertConfig {
            plane: QueryPlane::Frozen,
            ..Default::default()
        },
    )
    .expect("build");
    run_long_band_workload(&index, &engine);
    let outcome = index
        .repack_with_observed_workload(&engine)
        .expect("repack");
    assert!(outcome.repacked, "{outcome}");
    for &band in &probe_bands() {
        let stats = index.query_stats(&engine, band).expect("query");
        assert_eq!(stats.filter_pages, 0, "still on the frozen plane");
    }
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn workload_report_matches_registry_counters() {
    let engine = StorageEngine::in_memory();
    let field = smooth_field(24);
    let index = IHilbert::build(&engine, &field).expect("build");
    let fresh = index.workload_report(&engine);
    assert!(fresh.observed_refine_pages_per_query.is_none());

    let mut rng = StdRng::seed_from_u64(13);
    let mut total_refine = 0u64;
    let mut queries = 0u64;
    for _ in 0..20 {
        let lo: f64 = rng.gen_range(-5.0..90.0);
        let band = Interval::new(lo, lo + rng.gen_range(0.0..15.0));
        let stats = index.query_stats(&engine, band).expect("query");
        total_refine += stats.io.logical_reads() - stats.filter_pages;
        queries += 1;
    }
    let report = index.workload_report(&engine);
    assert_eq!(report.profile.queries, queries);
    let observed = report.observed_refine_pages_per_query.expect("queries ran");
    assert!(
        (observed - total_refine as f64 / queries as f64).abs() < 1e-9,
        "registry mean {observed} vs recomputed {}",
        total_refine as f64 / queries as f64
    );
    // Short workload (mean ~7.5) vs static assumption (W/2 ≈ 50): the
    // empirical prediction must be strictly cheaper.
    assert!(report.predicted_pages_empirical < report.predicted_pages_static);
    // The decile table partitions the subfields.
    assert_eq!(
        report.deciles.iter().map(|d| d.subfields).sum::<usize>(),
        report.subfields
    );
}
