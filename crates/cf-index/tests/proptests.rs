//! Property-based tests: every index must agree with the exhaustive
//! scan on arbitrary fields and arbitrary queries.

use cf_field::{FieldModel, GridField};
use cf_geom::Interval;
use cf_index::QueryPlane;
use cf_index::{
    CurveChoice, IAll, IHilbert, IHilbertConfig, IntervalQuadtree, LinearScan, SubfieldConfig,
    ValueIndex,
};
use cf_sfc::Curve;
use cf_storage::{PageCodec, PageId, StorageConfig, StorageEngine};
use cf_workload::noise::urban_noise_tin;
use proptest::prelude::*;

/// Arbitrary small grid fields: dimensions 2..=9 vertices, values from a
/// bounded range (including negative and repeated values).
fn grid_field() -> impl Strategy<Value = GridField> {
    (2usize..10, 2usize..10).prop_flat_map(|(vw, vh)| {
        prop::collection::vec(-100.0..100.0f64, vw * vh)
            .prop_map(move |values| GridField::from_values(vw, vh, values))
    })
}

fn band() -> impl Strategy<Value = Interval> {
    (-120.0..120.0f64, 0.0..80.0f64).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

/// Grid fields large enough that the parallel build's chunked phases
/// sometimes engage for real (> one 4096-cell chunk) and sometimes take
/// the sequential fallback — both must be byte-identical.
fn grid_field_large() -> impl Strategy<Value = GridField> {
    (16usize..72).prop_flat_map(|vw| {
        prop::collection::vec(-100.0..100.0f64, vw * vw)
            .prop_map(move |values| GridField::from_values(vw, vw, values))
    })
}

/// Builds the index sequentially and with `threads` workers on separate
/// engines and requires the two engines to be byte-for-byte equal.
fn assert_parallel_build_identical<F: FieldModel + Sync>(field: &F, curve: Curve, threads: usize) {
    let mk = |build_threads| {
        let engine = StorageEngine::in_memory();
        let index = IHilbert::build_with(
            &engine,
            field,
            IHilbertConfig {
                curve: CurveChoice(curve),
                build_threads,
                ..Default::default()
            },
        )
        .expect("build");
        (engine, index)
    };
    let (seq_engine, seq) = mk(1);
    let (par_engine, par) = mk(threads);
    assert_eq!(
        par.num_subfields(),
        seq.num_subfields(),
        "{curve:?} t={threads}"
    );
    assert_eq!(par_engine.num_pages(), seq_engine.num_pages());
    for p in 0..seq_engine.num_pages() {
        let a = seq_engine
            .with_page(PageId(p as u64), |page| *page)
            .expect("read");
        let b = par_engine
            .with_page(PageId(p as u64), |page| *page)
            .expect("read");
        assert!(a == b, "page {p} differs ({curve:?}, {threads} threads)");
    }
}

/// Builds the same index over raw and compressed cell pages (all four
/// curves × both query planes) and requires bit-exact answers — same
/// qualifying cells, same region count, byte-identical area, same
/// filter-node visits — while the compressed file occupies fewer (or at
/// worst equal) data pages.
fn assert_codecs_answer_identically<F: FieldModel + Sync>(field: &F, bands: &[Interval]) {
    for curve in Curve::ALL {
        for plane in [QueryPlane::Paged, QueryPlane::Frozen] {
            let mk = |codec| {
                let engine = StorageEngine::new(StorageConfig {
                    codec,
                    ..StorageConfig::default()
                });
                let index = IHilbert::build_with(
                    &engine,
                    field,
                    IHilbertConfig {
                        curve: CurveChoice(curve),
                        plane,
                        ..Default::default()
                    },
                )
                .expect("build");
                (engine, index)
            };
            let (raw_engine, raw) = mk(PageCodec::Raw);
            let (comp_engine, comp) = mk(PageCodec::Compressed);
            assert!(
                comp.data_pages() <= raw.data_pages(),
                "{curve:?}/{plane:?}: compressed {} vs raw {} data pages",
                comp.data_pages(),
                raw.data_pages()
            );
            for &b in bands {
                let want = raw.query_stats(&raw_engine, b).expect("query");
                let got = comp.query_stats(&comp_engine, b).expect("query");
                let ctx = format!("{curve:?}/{plane:?} band {b}");
                assert_eq!(got.cells_examined, want.cells_examined, "{ctx}");
                assert_eq!(got.cells_qualifying, want.cells_qualifying, "{ctx}");
                assert_eq!(got.num_regions, want.num_regions, "{ctx}");
                assert_eq!(
                    got.area.to_bits(),
                    want.area.to_bits(),
                    "{ctx}: area {} vs {}",
                    got.area,
                    want.area
                );
                assert_eq!(got.filter_nodes, want.filter_nodes, "{ctx}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn compressed_and_raw_cell_files_answer_identically_on_grids(
        field in grid_field(),
        bands in prop::collection::vec(band(), 1..4),
    ) {
        assert_codecs_answer_identically(&field, &bands);
    }

    #[test]
    fn compressed_and_raw_cell_files_answer_identically_on_tins(
        tris in 60usize..400,
        seed in any::<u64>(),
        bands in prop::collection::vec(band(), 1..4),
    ) {
        let field = urban_noise_tin(tris, seed);
        assert_codecs_answer_identically(&field, &bands);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_build_is_byte_identical_on_grids(
        field in grid_field_large(),
        curve_idx in 0usize..4,
        threads in 2usize..6,
    ) {
        assert_parallel_build_identical(&field, Curve::ALL[curve_idx], threads);
    }

    #[test]
    fn parallel_build_is_byte_identical_on_tins(
        tris in 60usize..500,
        seed in any::<u64>(),
        curve_idx in 0usize..4,
        threads in 2usize..6,
    ) {
        let field = urban_noise_tin(tris, seed);
        assert_parallel_build_identical(&field, Curve::ALL[curve_idx], threads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_methods_agree_with_scan(field in grid_field(), bands in prop::collection::vec(band(), 1..6)) {
        let engine = StorageEngine::in_memory();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let iall = IAll::build(&engine, &field).expect("build");
        let ihilbert = IHilbert::build(&engine, &field).expect("build");
        let iquad = IntervalQuadtree::build(&engine, &field, field.value_domain().width() / 8.0)
            .expect("build");
        let methods: Vec<&dyn ValueIndex> = vec![&iall, &ihilbert, &iquad];
        for b in bands {
            let want = scan.query_stats(&engine, b).expect("query");
            for m in &methods {
                let got = m.query_stats(&engine, b).expect("query");
                prop_assert_eq!(got.cells_qualifying, want.cells_qualifying,
                    "{} on {}", m.name(), b);
                prop_assert!((got.area - want.area).abs() <= 1e-9 * want.area.max(1.0),
                    "{} area {} vs {} on {}", m.name(), got.area, want.area, b);
            }
        }
    }

    #[test]
    fn every_curve_yields_correct_index(
        field in grid_field(),
        b in band(),
        curve_idx in 0usize..4,
    ) {
        let engine = StorageEngine::in_memory();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let idx = IHilbert::build_with(
            &engine,
            &field,
            IHilbertConfig {
                curve: CurveChoice(Curve::ALL[curve_idx]),
                ..Default::default()
            },
        )
        .expect("build");
        let want = scan.query_stats(&engine, b).expect("query");
        let got = idx.query_stats(&engine, b).expect("query");
        prop_assert_eq!(got.cells_qualifying, want.cells_qualifying);
        prop_assert!((got.area - want.area).abs() <= 1e-9 * want.area.max(1.0));
    }

    #[test]
    fn cost_knobs_never_affect_correctness(
        field in grid_field(),
        b in band(),
        base in 0.001..50.0f64,
        qlen in 0.0..100.0f64,
    ) {
        let engine = StorageEngine::in_memory();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let idx = IHilbert::build_with(
            &engine,
            &field,
            IHilbertConfig {
                subfield: SubfieldConfig { base, query_len: qlen },
                ..Default::default()
            },
        )
        .expect("build");
        let want = scan.query_stats(&engine, b).expect("query");
        let got = idx.query_stats(&engine, b).expect("query");
        prop_assert_eq!(got.cells_qualifying, want.cells_qualifying);
        prop_assert!((got.area - want.area).abs() <= 1e-9 * want.area.max(1.0));
    }

    #[test]
    fn updates_preserve_agreement(
        field in grid_field(),
        updates in prop::collection::vec((any::<u32>(), -100.0..100.0f64), 1..12),
        b in band(),
    ) {
        let engine = StorageEngine::in_memory();
        let mut index = IHilbert::build(&engine, &field).expect("build");
        // Apply vertex updates to a model copy of the field and push the
        // affected cell records into the index.
        let (vw, vh) = field.vertex_dims();
        let mut values: Vec<f64> = (0..vh)
            .flat_map(|y| (0..vw).map(move |x| (x, y)))
            .map(|(x, y)| field.vertex_value(x, y))
            .collect();
        let mut current = field.clone();
        for (pick, val) in updates {
            let vi = pick as usize % (vw * vh);
            values[vi] = val;
            current = GridField::from_values(vw, vh, values.clone());
            let (x, y) = (vi % vw, vi / vw);
            let (cw, ch) = current.cell_dims();
            for cy in y.saturating_sub(1)..=y.min(ch - 1) {
                for cx in x.saturating_sub(1)..=x.min(cw - 1) {
                    let cell = current.cell_index(cx, cy);
                    index
                        .update_cell(&engine, cell, current.cell_record(cell))
                        .expect("update");
                }
            }
        }
        let scan = LinearScan::build(&engine, &current).expect("build");
        let want = scan.query_stats(&engine, b).expect("query");
        let got = index.query_stats(&engine, b).expect("query");
        prop_assert_eq!(got.cells_qualifying, want.cells_qualifying);
        prop_assert!((got.area - want.area).abs() <= 1e-9 * want.area.max(1.0));
    }

    #[test]
    fn stats_invariants_hold(field in grid_field(), b in band()) {
        let engine = StorageEngine::in_memory();
        let ihilbert = IHilbert::build(&engine, &field).expect("build");
        engine.clear_cache();
        let s = ihilbert.query_stats(&engine, b).expect("query");
        prop_assert!(s.cells_qualifying <= s.cells_examined);
        prop_assert!(s.area >= 0.0);
        prop_assert!(s.area <= field.domain().volume() + 1e-9);
        prop_assert_eq!(s.io.pool_misses, s.io.disk_reads);
        if s.cells_examined > 0 {
            prop_assert!(s.filter_nodes >= 1);
        }
    }
}
