//! Live ingest plane: epoch-snapshot reads over the delta plane must
//! answer **byte-identically** to the sequential oracle — an I-Hilbert
//! index that applied every update in place — under arbitrary
//! interleavings of updates, queries and repack-driven epoch
//! publications, across all four curves and both query planes.
//!
//! "Byte-identically" is literal: qualifying-cell counts, region
//! counts and the bit pattern of the accumulated area must match,
//! because both paths visit the same qualifying records in the same
//! ascending cell-file-position order.

use cf_field::{FieldModel, GridCellRecord, GridField};
use cf_geom::Interval;
use cf_index::{
    CurveChoice, IHilbert, IHilbertConfig, IngestConfig, LiveIngest, QueryBatch, QueryPlane,
    QueryStats, ValueIndex,
};
use cf_sfc::Curve;
use cf_storage::{Fault, StorageEngine};

/// Deterministic split-mix style generator: the interleavings must be
/// reproducible across runs and platforms.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn value(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

fn wavy_field(n: usize) -> GridField {
    let vw = n + 1;
    let mut values = Vec::new();
    for y in 0..vw {
        for x in 0..vw {
            values.push((x as f64 * 0.4).sin() * 30.0 + (y as f64 * 0.3).cos() * 20.0);
        }
    }
    GridField::from_values(vw, vw, values)
}

fn rand_band(rng: &mut Rng) -> Interval {
    let lo = rng.value(-60.0, 55.0);
    Interval::new(lo, lo + rng.value(0.5, 25.0))
}

fn rand_record(field: &GridField, cell: usize, rng: &mut Rng) -> GridCellRecord {
    GridCellRecord {
        vals: [
            rng.value(-50.0, 50.0),
            rng.value(-50.0, 50.0),
            rng.value(-50.0, 50.0),
            rng.value(-50.0, 50.0),
        ],
        ..field.cell_record(cell)
    }
}

fn fixed_bands() -> Vec<Interval> {
    (0..10)
        .map(|i| {
            let lo = -55.0 + i as f64 * 10.0;
            Interval::new(lo, lo + 13.0)
        })
        .collect()
}

#[track_caller]
fn assert_bitexact(got: &QueryStats, want: &QueryStats, ctx: &str) {
    assert_eq!(got.cells_qualifying, want.cells_qualifying, "{ctx}");
    assert_eq!(got.num_regions, want.num_regions, "{ctx}");
    assert_eq!(
        got.area.to_bits(),
        want.area.to_bits(),
        "{ctx}: area {} vs {}",
        got.area,
        want.area
    );
}

fn config_for(curve: Curve, plane: QueryPlane) -> IHilbertConfig {
    IHilbertConfig {
        curve: CurveChoice(curve),
        plane,
        ..Default::default()
    }
}

/// The tentpole property: random interleavings of ingests, snapshot
/// queries and epoch publications (both explicit repacks and
/// capacity-forced inline drains) against the sequential oracle, for
/// every curve × query plane.
#[test]
fn interleavings_match_sequential_oracle_for_all_curves_and_planes() {
    let field = wavy_field(16);
    for (ci, curve) in Curve::ALL.into_iter().enumerate() {
        for plane in [QueryPlane::Paged, QueryPlane::Frozen] {
            let engine = StorageEngine::in_memory();
            let config = config_for(curve, plane);
            let base = IHilbert::build_with(&engine, &field, config).expect("build base");
            let mut oracle = IHilbert::build_with(&engine, &field, config).expect("build oracle");
            // Small capacity so the run also exercises the inline
            // backpressure drain, not just explicit repacks.
            let live = LiveIngest::new(
                &engine,
                base,
                IngestConfig {
                    capacity: 24,
                    scan_threshold: None,
                },
            )
            .expect("live ingest");
            let ctx = format!("{curve:?}/{plane:?}");
            let mut rng = Rng(0xC0FF_EE00 + ci as u64 * 2 + plane as u64);
            let mut updates = 0u32;
            let mut queries = 0u32;
            for step in 0..400 {
                match rng.below(10) {
                    0..=5 => {
                        let cell = rng.below(field.num_cells());
                        let rec = rand_record(&field, cell, &mut rng);
                        live.ingest(&engine, cell, rec).expect("ingest");
                        oracle.update_cell(&engine, cell, rec).expect("oracle");
                        updates += 1;
                    }
                    6..=8 => {
                        let band = rand_band(&mut rng);
                        let snap = live.snapshot();
                        let got = snap.query_stats(&engine, band).expect("snapshot query");
                        let want = oracle.query_stats(&engine, band).expect("oracle query");
                        assert_bitexact(&got, &want, &format!("{ctx}: step {step}"));
                        queries += 1;
                    }
                    _ => {
                        live.repack(&engine).expect("repack");
                    }
                }
            }
            assert!(updates > 150 && queries > 60, "{ctx}: degenerate mix");
        }
    }
}

/// A pinned snapshot is immutable: it keeps answering exactly what the
/// oracle answered at capture time, through later ingests and repacks
/// that supersede (and retire) the pages it reads.
#[test]
fn snapshots_are_isolated_from_later_writes_and_repacks() {
    let field = wavy_field(16);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    let mut rng = Rng(7);

    for _ in 0..40 {
        let cell = rng.below(field.num_cells());
        let rec = rand_record(&field, cell, &mut rng);
        live.ingest(&engine, cell, rec).expect("ingest");
    }
    let pinned = live.snapshot();
    let frozen_in_time: Vec<QueryStats> = fixed_bands()
        .iter()
        .map(|&b| pinned.query_stats(&engine, b).expect("query"))
        .collect();

    // Overwrite every cell and swap the plane twice.
    for round in 0..2 {
        for cell in 0..field.num_cells() {
            let mut rec = field.cell_record(cell);
            rec.vals = [200.0 + round as f64, 201.0, 202.0, 203.0];
            live.ingest(&engine, cell, rec).expect("ingest");
        }
        let report = live.repack(&engine).expect("repack");
        assert!(report.repacked, "round {round}");
        assert!(report.pages_retired > 0, "round {round}");
    }

    for (i, &band) in fixed_bands().iter().enumerate() {
        let again = pinned.query_stats(&engine, band).expect("pinned query");
        assert_bitexact(&again, &frozen_in_time[i], &format!("pinned band {i}"));
    }
    // And the fresh snapshot sees the new world: nothing qualifies in
    // the old value range, everything in the new one.
    let fresh = live.snapshot();
    let old_world = fresh
        .query_stats(&engine, Interval::new(-60.0, 60.0))
        .expect("query");
    assert_eq!(old_world.cells_qualifying, 0);
    let new_world = fresh
        .query_stats(&engine, Interval::new(199.0, 205.0))
        .expect("query");
    assert_eq!(new_world.cells_qualifying, field.num_cells());
}

/// The epoch GC contract: pages retired by a repack are not recycled
/// while any snapshot of an older epoch is alive, and are recycled
/// once the last such reader drops.
#[test]
fn retired_pages_recycle_only_after_the_last_reader_drops() {
    let field = wavy_field(12);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    let mut rng = Rng(11);

    for _ in 0..10 {
        let cell = rng.below(field.num_cells());
        let rec = rand_record(&field, cell, &mut rng);
        live.ingest(&engine, cell, rec).expect("ingest");
    }
    let reader = live.snapshot();
    let report = live.repack(&engine).expect("repack");
    assert!(report.repacked && report.pages_retired > 0);

    // The reader still pins the pre-repack epoch: nothing may free.
    assert_eq!(engine.collect_deferred().expect("collect"), 0);
    let deferred = engine
        .metrics()
        .gauge_value("storage_deferred_free_pages", &[])
        .unwrap_or(0.0);
    assert!(
        deferred >= report.pages_retired as f64,
        "retired pages must be parked in the GC, gauge {deferred}"
    );
    // ... and the old epoch still answers from those parked pages.
    reader
        .query_stats(&engine, Interval::new(-60.0, 60.0))
        .expect("old epoch query");

    drop(reader);
    let freed = engine.collect_deferred().expect("collect");
    assert!(
        freed >= report.pages_retired,
        "dropping the last reader must release the retired runs ({freed} freed)"
    );
    assert_eq!(
        engine
            .metrics()
            .gauge_value("storage_deferred_free_pages", &[])
            .unwrap_or(-1.0),
        0.0
    );
}

/// Snapshots are plain [`ValueIndex`] values: the multi-threaded
/// [`QueryBatch`] runs over one unchanged, and every per-query answer
/// matches the oracle bit-for-bit.
#[test]
fn query_batch_over_a_snapshot_matches_oracle() {
    let field = wavy_field(16);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let mut oracle = IHilbert::build(&engine, &field).expect("build oracle");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    let mut rng = Rng(23);
    for _ in 0..60 {
        let cell = rng.below(field.num_cells());
        let rec = rand_record(&field, cell, &mut rng);
        live.ingest(&engine, cell, rec).expect("ingest");
        oracle.update_cell(&engine, cell, rec).expect("oracle");
    }
    let snap = live.snapshot();
    let report = QueryBatch::new(fixed_bands())
        .threads(4)
        .run(&engine, &*snap)
        .expect("batch");
    for (i, r) in report.results.iter().enumerate() {
        let want = oracle.query_stats(&engine, r.band).expect("oracle query");
        assert_bitexact(&r.stats, &want, &format!("batch query {i}"));
    }
}

/// Concurrent smoke: one writer streaming updates while reader threads
/// query their pinned snapshots — readers must always see internally
/// consistent epochs (every answer matches one of the oracle states),
/// and nothing deadlocks or panics.
#[test]
fn concurrent_readers_make_progress_during_writes_and_repacks() {
    let field = wavy_field(12);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = std::sync::Arc::new(
        LiveIngest::new(
            &engine,
            base,
            IngestConfig {
                capacity: 64,
                scan_threshold: None,
            },
        )
        .expect("live"),
    );
    let band = Interval::new(-60.0, 60.0);
    let total_cells = field.num_cells();

    std::thread::scope(|scope| {
        let writer = {
            let live = std::sync::Arc::clone(&live);
            let engine = &engine;
            let field = &field;
            scope.spawn(move || {
                let mut rng = Rng(31);
                for i in 0..300 {
                    let cell = rng.below(field.num_cells());
                    let rec = rand_record(field, cell, &mut rng);
                    live.ingest(engine, cell, rec).expect("ingest");
                    if i % 97 == 0 {
                        live.repack(engine).expect("repack");
                    }
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let live = std::sync::Arc::clone(&live);
                let engine = &engine;
                scope.spawn(move || {
                    let mut answered = 0u32;
                    for _ in 0..200 {
                        let snap = live.snapshot();
                        let stats = snap.query_stats(engine, band).expect("reader query");
                        // Every record keeps intersecting the wide
                        // band (values stay inside it), so a
                        // consistent epoch always answers the full
                        // cell count — a torn epoch would not.
                        assert_eq!(stats.cells_qualifying, total_cells);
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();
        writer.join().expect("writer");
        for reader in readers {
            assert_eq!(reader.join().expect("reader"), 200);
        }
    });
}

/// Planner threading: a snapshot whose config routes wide bands to the
/// overlay-aware full scan answers bit-identically to the probing
/// snapshot (same qualifying records, same ascending accumulation
/// order).
#[test]
fn planner_scan_and_probe_snapshots_agree_bit_for_bit() {
    let field = wavy_field(16);
    let engine = StorageEngine::in_memory();
    let probe_base = IHilbert::build(&engine, &field).expect("build");
    let scan_base = IHilbert::build(&engine, &field).expect("build");
    let probing = LiveIngest::new(&engine, probe_base, IngestConfig::default()).expect("live");
    // Threshold 0: every band routes to the full scan.
    let scanning = LiveIngest::new(
        &engine,
        scan_base,
        IngestConfig {
            scan_threshold: Some(0.0),
            ..Default::default()
        },
    )
    .expect("live");
    let mut rng = Rng(41);
    for _ in 0..50 {
        let cell = rng.below(field.num_cells());
        let rec = rand_record(&field, cell, &mut rng);
        probing.ingest(&engine, cell, rec).expect("ingest");
        scanning.ingest(&engine, cell, rec).expect("ingest");
    }
    let p = probing.snapshot();
    let s = scanning.snapshot();
    for (i, &band) in fixed_bands().iter().enumerate() {
        let a = p.query_stats(&engine, band).expect("probe");
        let b = s.query_stats(&engine, band).expect("scan");
        assert_bitexact(&a, &b, &format!("band {i}"));
        // The scan really scanned: it examined the whole cell file.
        assert_eq!(b.cells_examined, field.num_cells(), "band {i}");
    }
}

/// Catalog v4 round-trip: the ingest plane (base + net delta + epoch
/// pointer) survives save and reopen, bit-identically, and keeps
/// accepting writes.
#[test]
fn live_ingest_survives_save_and_reopen() {
    let field = wavy_field(16);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    let mut rng = Rng(53);
    for _ in 0..40 {
        let cell = rng.below(field.num_cells());
        let rec = rand_record(&field, cell, &mut rng);
        live.ingest(&engine, cell, rec).expect("ingest");
    }
    let want: Vec<QueryStats> = fixed_bands()
        .iter()
        .map(|&b| live.snapshot().query_stats(&engine, b).expect("query"))
        .collect();
    let (_, epoch, _) = live.status();
    let catalog = live.save(&engine).expect("save");

    engine.clear_cache();
    let reopened =
        LiveIngest::<GridField>::open(&engine, catalog, IngestConfig::default()).expect("open");
    let (delta, reopened_epoch, _) = reopened.status();
    assert_eq!(reopened_epoch, epoch, "epoch pointer must survive");
    assert!(delta > 0, "net delta must be replayed on reopen");
    for (i, &band) in fixed_bands().iter().enumerate() {
        let got = reopened
            .snapshot()
            .query_stats(&engine, band)
            .expect("query");
        assert_bitexact(&got, &want[i], &format!("reopened band {i}"));
    }

    // The reopened plane is live, not read-only.
    let mut rec = field.cell_record(3);
    rec.vals = [400.0; 4];
    reopened
        .ingest(&engine, 3, rec)
        .expect("ingest after reopen");
    let stats = reopened
        .snapshot()
        .query_stats(&engine, Interval::new(399.0, 401.0))
        .expect("query");
    assert_eq!(stats.cells_qualifying, 1);
}

/// A bad cell id through the ingest plane surfaces the same typed
/// error as the in-place path — and leaves the delta untouched.
#[test]
fn ingest_rejects_invalid_cells_with_typed_error() {
    let field = wavy_field(8);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    let rec = field.cell_record(0);
    let err = live
        .ingest(&engine, field.num_cells() + 5, rec)
        .expect_err("invalid cell");
    assert!(err.is_invalid_cell(), "{err}");
    let (delta, epoch, _) = live.status();
    assert_eq!((delta, epoch), (0, 0), "failed ingest must not publish");
}

/// Regression for the backpressure path: a write landing on a
/// ring-at-capacity plane performs an inline synchronous drain, and
/// the pressure gauges must stay truthful through it —
/// `ingest_repack_inflight` rises and falls back to 0,
/// `ingest_delta_records` drops from `capacity` to exactly the one
/// triggering write, and the epoch-lifecycle journal records the
/// drain as `repack_start` → `repack_end` with an `epoch_published`
/// for the publication.
#[test]
fn inline_drain_backpressure_keeps_gauges_and_journal_truthful() {
    let field = wavy_field(12);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let capacity = 8;
    let live = LiveIngest::new(
        &engine,
        base,
        IngestConfig {
            capacity,
            ..Default::default()
        },
    )
    .expect("live");
    let mut rng = Rng(37);
    let gauge = |name: &str| engine.metrics().gauge_value(name, &[]).unwrap_or(-1.0);

    for _ in 0..capacity {
        let cell = rng.below(field.num_cells());
        let rec = rand_record(&field, cell, &mut rng);
        live.ingest(&engine, cell, rec).expect("ingest");
    }
    assert_eq!(gauge("ingest_delta_records"), capacity as f64);
    assert_eq!(gauge("ingest_repack_inflight"), 0.0);
    let epoch_before = gauge("ingest_epoch");
    // Discard the fill phase's journal entries so the assertions below
    // see only the backpressure write's events.
    let _ = engine.metrics().journal().take();

    // Ring at capacity: this write must drain inline first.
    let cell = rng.below(field.num_cells());
    let rec = rand_record(&field, cell, &mut rng);
    live.ingest(&engine, cell, rec)
        .expect("backpressure ingest");

    assert_eq!(
        gauge("ingest_delta_records"),
        1.0,
        "after the inline drain only the triggering write may remain"
    );
    assert_eq!(
        gauge("ingest_repack_inflight"),
        0.0,
        "the inline drain must clear the inflight flag on its way out"
    );
    assert!(
        gauge("ingest_epoch") >= epoch_before + 2.0,
        "the drain and the write each publish an epoch"
    );
    let (ring_len, _, repacks) = live.status();
    assert_eq!((ring_len, repacks), (1, 1));

    #[cfg(not(feature = "obs-off"))]
    {
        let events: Vec<String> = engine
            .metrics()
            .journal()
            .take()
            .iter()
            .filter_map(|e| e.get("event").and_then(|v| v.as_str()).map(str::to_string))
            .collect();
        let pos = |name: &str| events.iter().position(|e| e == name);
        let start = pos("repack_start").expect("journal must record repack_start");
        let end = pos("repack_end").expect("journal must record repack_end");
        assert!(
            start < end,
            "repack_start must precede repack_end: {events:?}"
        );
        assert!(
            pos("epoch_published").is_some(),
            "publications must be journaled: {events:?}"
        );
    }
}

/// An ingest whose interval recompute fails mid-write (fault
/// injection on the read path) must leave the writer state, gauges
/// and published snapshot exactly as before the attempt — no
/// half-applied overlay, no stale `ingest_delta_records`.
#[test]
fn failed_ingest_leaves_state_and_gauges_consistent() {
    let field = wavy_field(8);
    let engine = StorageEngine::in_memory();
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    let mut rng = Rng(41);
    let cell = rng.below(field.num_cells());
    let rec = rand_record(&field, cell, &mut rng);
    live.ingest(&engine, cell, rec).expect("ingest");
    let (delta_before, epoch_before, _) = live.status();
    let snap_before = live.snapshot();

    // Cold cache + ordinal 0: the interval recompute's first physical
    // read fails.
    engine.clear_faults();
    engine.clear_cache();
    engine.inject_fault(Fault::FailRead { nth: 0 });
    let cell2 = rng.below(field.num_cells());
    let rec2 = rand_record(&field, cell2, &mut rng);
    let err = live
        .ingest(&engine, cell2, rec2)
        .expect_err("injected fault");
    assert!(err.is_injected(), "{err}");
    engine.clear_faults();

    let (delta_after, epoch_after, _) = live.status();
    assert_eq!(
        (delta_after, epoch_after),
        (delta_before, epoch_before),
        "failed ingest must not mutate the writer state"
    );
    let gauge = |name: &str| engine.metrics().gauge_value(name, &[]).unwrap_or(-1.0);
    assert_eq!(gauge("ingest_delta_records"), delta_before as f64);
    assert_eq!(live.snapshot().epoch(), snap_before.epoch());
    // The plane still works after the fault.
    let cell3 = rng.below(field.num_cells());
    let rec3 = rand_record(&field, cell3, &mut rng);
    live.ingest(&engine, cell3, rec3).expect("recovered ingest");
}
