//! Crash-consistency of the two-slot catalog commit, driven by the
//! deterministic fault injector.
//!
//! The property under test: **every** physical-write prefix of
//! [`IHilbert::save_to`] — including a torn final commit write — leaves
//! a catalog that [`IHilbert::open`] accepts, and the reopened index
//! answers queries exactly like the live one. The cell/subfield/tree
//! pages are updated in place before the save, so whichever slot wins
//! after the crash, the answers must reflect the current data.

use cf_field::{FieldModel, GridField};
use cf_geom::Interval;
use cf_index::{
    CurveChoice, IHilbert, IHilbertConfig, LinearScan, QueryPlane, QueryStats, ValueIndex,
};
use cf_sfc::Curve;
use cf_storage::{
    codec, compress, Fault, FaultOp, PageBuf, PageCodec, PageId, StorageConfig, StorageEngine,
    PAGE_SIZE,
};
use std::path::{Path, PathBuf};

fn wavy_field(n: usize, phase: f64) -> GridField {
    let vw = n + 1;
    let mut values = Vec::new();
    for y in 0..vw {
        for x in 0..vw {
            values.push((x as f64 * 0.4 + phase).sin() * 30.0 + (y as f64 * 0.3).cos() * 20.0);
        }
    }
    GridField::from_values(vw, vw, values)
}

fn bands() -> Vec<Interval> {
    (0..12)
        .map(|i| {
            let lo = -50.0 + i as f64 * 8.0;
            Interval::new(lo, lo + 11.0)
        })
        .collect()
}

fn answers(index: &IHilbert<GridField>, engine: &StorageEngine) -> Vec<QueryStats> {
    bands()
        .iter()
        .map(|&b| index.query_stats(engine, b).expect("query"))
        .collect()
}

fn assert_same_answers(got: &[QueryStats], want: &[QueryStats], ctx: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.cells_qualifying, w.cells_qualifying, "{ctx}: band {i}");
        assert_eq!(g.num_regions, w.num_regions, "{ctx}: band {i}");
        assert_eq!(
            g.area.to_bits(),
            w.area.to_bits(),
            "{ctx}: band {i} area {} vs {}",
            g.area,
            w.area
        );
    }
}

/// Builds an index over `field_a`, saves it, then updates every cell to
/// `field_b`'s records — the persisted data pages now hold state B while
/// the live catalog epoch still describes the same layout.
fn build_saved_and_updated(
    engine: &StorageEngine,
) -> (IHilbert<GridField>, cf_storage::PageId, Vec<QueryStats>) {
    let field_a = wavy_field(24, 0.0);
    let field_b = wavy_field(24, 1.7);
    let mut index = IHilbert::build(engine, &field_a).expect("build");
    let catalog = index.save(engine).expect("save");
    for cell in 0..field_b.num_cells() {
        index
            .update_cell(engine, cell, field_b.cell_record(cell))
            .expect("update");
    }
    let expected = answers(&index, engine);
    // Sanity: the expected answers really are state B, not state A.
    let scan = LinearScan::build(engine, &field_b).expect("build");
    for (s, b) in expected.iter().zip(bands()) {
        let w = scan.query_stats(engine, b).expect("query");
        assert_eq!(s.cells_qualifying, w.cells_qualifying);
    }
    // Record-file creation buffers its writes, so the scan above left
    // dirty pages in the pool. Drain them now so the callers' baseline
    // write counts measure save_to alone, not leftover flush traffic.
    engine.flush().expect("drain pool");
    (index, catalog, expected)
}

#[test]
fn every_write_prefix_of_save_leaves_an_openable_catalog() {
    let engine = StorageEngine::in_memory();
    let (index, catalog, expected) = build_saved_and_updated(&engine);

    // Count the physical writes of one full save_to.
    engine.clear_faults();
    index.save_to(&engine, catalog).expect("baseline save");
    let (_, writes) = engine.fault_ops();
    assert!(writes >= 2, "save_to must write pos pages + commit slot");

    let metrics = engine.metrics().clone();
    let fired_before = metrics
        .counter_value("storage_faults_injected_total", &[("op", "write")])
        .unwrap_or(0);
    for k in 0..writes {
        engine.clear_faults();
        engine.inject_fault(Fault::FailWrite { nth: k });
        let err = index
            .save_to(&engine, catalog)
            .expect_err("armed write fault must fire");
        assert!(err.is_injected(), "crash at write {k}: {err}");
        // The injector recorded exactly the armed crash point: the
        // fault we configured, fired at its own ordinal, on a write.
        let fired = engine.fired_faults();
        assert_eq!(fired.len(), 1, "crash at write {k}: {fired:?}");
        assert_eq!(fired[0].op, FaultOp::Write, "crash at write {k}");
        assert_eq!(fired[0].ordinal, k, "crash at write {k}");
        assert_eq!(fired[0].fault, Fault::FailWrite { nth: k });
        engine.clear_faults();
        // A crash loses the buffer pool; reopen reads the disk's truth.
        engine.clear_cache();
        let reopened = IHilbert::<GridField>::open(&engine, catalog)
            .unwrap_or_else(|e| panic!("reopen after crash at write {k}: {e}"));
        let got = answers(&reopened, &engine);
        assert_same_answers(&got, &expected, &format!("crash at write {k}"));
    }

    // Every injected crash also landed in the metrics registry: one
    // fired write fault per loop iteration, none lost to clear_faults.
    assert_eq!(
        metrics
            .counter_value("storage_faults_injected_total", &[("op", "write")])
            .unwrap_or(0)
            - fired_before,
        writes,
        "registry must count every fired write fault"
    );

    // After surviving every crash point, a clean save still commits.
    engine.clear_faults();
    index.save_to(&engine, catalog).expect("final save");
    engine.clear_cache();
    let reopened = IHilbert::<GridField>::open(&engine, catalog).expect("final open");
    assert_same_answers(&answers(&reopened, &engine), &expected, "final");
}

#[test]
fn torn_commit_write_falls_back_to_previous_slot() {
    let engine = StorageEngine::in_memory();
    let (index, catalog, expected) = build_saved_and_updated(&engine);

    engine.clear_faults();
    index.save_to(&engine, catalog).expect("baseline save");
    let (_, writes) = engine.fault_ops();

    // Tear the *commit* write — the last physical write of save_to — at
    // several cut points, including one byte and almost-whole.
    for keep in [1usize, 96, 1024, 4095] {
        engine.clear_faults();
        engine.inject_fault(Fault::TornWrite {
            nth: writes - 1,
            keep,
        });
        let err = index
            .save_to(&engine, catalog)
            .expect_err("torn commit must report the crash");
        assert!(err.is_injected(), "keep={keep}: {err}");
        let fired = engine.fired_faults();
        assert_eq!(fired.len(), 1, "keep={keep}: {fired:?}");
        assert_eq!(
            fired[0].fault,
            Fault::TornWrite {
                nth: writes - 1,
                keep
            },
            "keep={keep}"
        );
        assert_eq!(fired[0].ordinal, writes - 1, "keep={keep}");
        engine.clear_faults();
        engine.clear_cache();
        let reopened = IHilbert::<GridField>::open(&engine, catalog)
            .unwrap_or_else(|e| panic!("reopen after torn commit (keep={keep}): {e}"));
        assert_same_answers(
            &answers(&reopened, &engine),
            &expected,
            &format!("torn commit keep={keep}"),
        );
    }
}

#[test]
fn open_survives_one_unreadable_slot() {
    let engine = StorageEngine::in_memory();
    let (index, catalog, expected) = build_saved_and_updated(&engine);
    engine.clear_faults();
    index.save_to(&engine, catalog).expect("save");

    // Fail the first physical read (slot 0's page) during open: the
    // lenient slot scan must fall through to the other slot.
    engine.clear_cache();
    engine.clear_faults();
    engine.inject_fault(Fault::FailRead { nth: 0 });
    let reopened = IHilbert::<GridField>::open(&engine, catalog).expect("open with one dead slot");
    let fired = engine.fired_faults();
    assert_eq!(fired.len(), 1, "{fired:?}");
    assert_eq!(fired[0].op, FaultOp::Read);
    assert_eq!(fired[0].ordinal, 0);
    engine.clear_faults();
    assert_same_answers(&answers(&reopened, &engine), &expected, "one dead slot");
}

// ---------------------------------------------------------------------
// The same properties over real file backing: a crash is simulated by
// opening a *second* engine on the same path — it sees only the bytes
// that physically reached the file, never the first engine's buffer
// pool.
// ---------------------------------------------------------------------

fn cleanup(path: &Path) {
    for ext in ["", ".crc", ".fsm"] {
        let _ = std::fs::remove_file(format!("{}{ext}", path.display()));
    }
}

fn file_engine(tag: &str) -> (StorageEngine, PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "cf_crash_{tag}_{}_{:?}.db",
        std::process::id(),
        std::thread::current().id()
    ));
    cleanup(&path);
    let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("open file");
    (engine, path)
}

#[test]
fn save_crash_points_leave_an_openable_catalog_on_file_backing() {
    let (engine, path) = file_engine("save");
    let (index, catalog, expected) = build_saved_and_updated(&engine);

    engine.clear_faults();
    index.save_to(&engine, catalog).expect("baseline save");
    let (_, writes) = engine.fault_ops();
    assert!(writes >= 2, "save_to must write pos pages + commit slot");

    for k in 0..writes {
        engine.clear_faults();
        engine.inject_fault(Fault::FailWrite { nth: k });
        let err = index
            .save_to(&engine, catalog)
            .expect_err("armed write fault must fire");
        assert!(err.is_injected(), "crash at write {k}: {err}");
        engine.clear_faults();
        // The post-crash disk view: a second engine on the same file.
        // The crashed engine's dirty frames are invisible to it.
        let after = StorageEngine::open_file(&path, StorageConfig::default())
            .unwrap_or_else(|e| panic!("reopen engine after crash at write {k}: {e}"));
        let reopened = IHilbert::<GridField>::open(&after, catalog)
            .unwrap_or_else(|e| panic!("reopen catalog after crash at write {k}: {e}"));
        assert_same_answers(
            &answers(&reopened, &after),
            &expected,
            &format!("file crash at write {k}"),
        );
        drop(after);
        // Drain the crashed save's orphaned buffers so every loop
        // iteration starts from the same pool state (deterministic
        // write ordinals).
        engine.clear_cache();
    }

    engine.clear_faults();
    index.save_to(&engine, catalog).expect("final save");
    engine.sync().expect("sync");
    drop(index);
    drop(engine);
    let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("final reopen");
    let reopened = IHilbert::<GridField>::open(&engine, catalog).expect("final open");
    assert_same_answers(&answers(&reopened, &engine), &expected, "file final");
    drop(reopened);
    drop(engine);
    cleanup(&path);
}

/// Crashes a free+reallocate cycle at every physical-write ordinal —
/// including the freelist superblock commit writes — and checks the
/// storage-level invariant: a crash may *leak* pages, but a reopened
/// engine never hands out a page that still holds live data.
#[test]
fn freelist_crash_points_on_file_backing_never_double_allocate() {
    const LIVE: [u64; 4] = [0, 1, 6, 7];

    fn stamp(i: u64) -> PageBuf {
        let mut page = [0u8; PAGE_SIZE];
        page[..8].copy_from_slice(&(0xC0FF_EE00 + i).to_le_bytes());
        page
    }

    // One fresh file per crash point: the cycle's write sequence is
    // deterministic, so the ordinal count measured once carries over.
    fn setup(tag: &str) -> (StorageEngine, PathBuf) {
        let (engine, path) = file_engine(tag);
        let first = engine.allocate_run(8).expect("allocate");
        assert_eq!(first, PageId(0));
        for i in 0..8u64 {
            engine.write_page(PageId(i), &stamp(i)).expect("write");
        }
        engine.sync().expect("sync");
        engine.clear_faults();
        (engine, path)
    }

    let (engine, path) = setup("fsm_baseline");
    engine.free_run(PageId(2), 4).expect("free");
    let reused = engine.allocate_run(4).expect("reallocate");
    assert_eq!(reused, PageId(2), "the hole must be reused");
    let (_, writes) = engine.fault_ops();
    assert!(writes >= 2, "cycle must hit the superblock and zero pages");
    drop(engine);
    cleanup(&path);

    for k in 0..writes {
        let (engine, path) = setup(&format!("fsm_{k}"));
        engine.inject_fault(Fault::FailWrite { nth: k });
        let err = engine
            .free_run(PageId(2), 4)
            .and_then(|()| engine.allocate_run(4).map(|_| ()))
            .expect_err("armed write fault must fire");
        assert!(err.is_injected(), "crash at write {k}: {err}");
        drop(engine);

        let after = StorageEngine::open_file(&path, StorageConfig::default())
            .unwrap_or_else(|e| panic!("reopen after crash at write {k}: {e}"));
        for i in LIVE {
            let got = after
                .with_page(PageId(i), |buf| buf[..8].to_vec())
                .unwrap_or_else(|e| panic!("live page {i} after crash at write {k}: {e}"));
            assert_eq!(
                got,
                stamp(i)[..8].to_vec(),
                "live page {i}, crash at write {k}"
            );
        }
        // Whatever the freelist recovered to, it must never hand the
        // live pages out again.
        let run = after.allocate_run(4).expect("allocate after crash");
        for i in LIVE {
            assert!(
                !(run.0..run.0 + 4).contains(&i),
                "crash at write {k}: reallocated live page {i} (run starts at {})",
                run.0
            );
        }
        for off in 0..4u64 {
            after
                .write_page(PageId(run.0 + off), &stamp(100 + off))
                .expect("write to fresh run");
        }
        for i in LIVE {
            let got = after
                .with_page(PageId(i), |buf| buf[..8].to_vec())
                .expect("live page");
            assert_eq!(
                got,
                stamp(i)[..8].to_vec(),
                "live page {i} clobbered, crash at write {k}"
            );
        }
        drop(after);
        cleanup(&path);
    }
}

/// Repeated `save_to` cycles on file backing must not grow the file
/// without bound: each commit frees the position map its slot replaced,
/// so allocation recycles the holes and the size plateaus.
#[test]
fn repeated_saves_on_file_backing_reach_a_steady_state_size() {
    let (engine, path) = file_engine("steady");
    let field = wavy_field(24, 0.3);
    let index = IHilbert::build(&engine, &field).expect("build");
    let catalog = index.save(&engine).expect("save");
    let mut sizes = Vec::new();
    for _ in 0..8 {
        index.save_to(&engine, catalog).expect("save");
        sizes.push(engine.num_pages());
    }
    // Two position maps stay in flight (live slot + fallback slot); the
    // rest recycle. Once the pipeline fills, the size may oscillate by
    // one pos-map run as tail frees truncate, but never trends upward.
    assert!(
        *sizes.last().unwrap() <= sizes[2],
        "file must stop growing under repeated saves: {sizes:?}"
    );
    let reused = engine.metrics().counter_total("storage_pages_reused_total");
    assert!(reused > 0, "steady state requires hole reuse: {sizes:?}");
    // And the recycled file still opens with the right answers.
    engine.sync().expect("sync");
    let expected = answers(&index, &engine);
    drop(index);
    drop(engine);
    let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("reopen");
    let reopened = IHilbert::<GridField>::open(&engine, catalog).expect("open");
    assert_same_answers(&answers(&reopened, &engine), &expected, "steady state");
    drop(reopened);
    drop(engine);
    cleanup(&path);
}

/// Acceptance: the file-backed database answers byte-identically after
/// a real close-and-reopen, for all four curves on both query planes.
#[test]
fn file_backed_round_trip_preserves_answers_for_all_curves_and_planes() {
    let field = wavy_field(20, 0.6);
    for curve in Curve::ALL {
        for plane in [QueryPlane::Paged, QueryPlane::Frozen] {
            let (engine, path) = file_engine(&format!("rt_{curve:?}_{plane:?}"));
            let index = IHilbert::build_with(
                &engine,
                &field,
                IHilbertConfig {
                    curve: CurveChoice(curve),
                    plane,
                    ..Default::default()
                },
            )
            .expect("build");
            let want: Vec<QueryStats> = answers(&index, &engine);
            let catalog = index.save(&engine).expect("save");
            engine.sync().expect("sync");
            drop(index);
            drop(engine);

            let engine = StorageEngine::open_file(&path, StorageConfig::default()).expect("reopen");
            let mut reopened = IHilbert::<GridField>::open(&engine, catalog).expect("open");
            if plane == QueryPlane::Frozen {
                reopened.freeze(&engine).expect("freeze");
            }
            let got = answers(&reopened, &engine);
            assert_same_answers(&got, &want, &format!("file {curve:?}/{plane:?}"));
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.filter_nodes, w.filter_nodes,
                    "file {curve:?}/{plane:?}: band {i} filter_nodes"
                );
            }
            drop(reopened);
            drop(engine);
            cleanup(&path);
        }
    }
}

fn compressed_engine() -> StorageEngine {
    StorageEngine::new(StorageConfig {
        codec: PageCodec::Compressed,
        ..StorageConfig::default()
    })
}

/// Save/open round-trip under the compressed page codec: the v3 catalog
/// must carry the codec tag and data-page counts, and the reopened
/// index must answer bit-identically — including after in-place cell
/// updates against compressed pages.
#[test]
fn compressed_catalog_round_trip_preserves_answers_and_updates() {
    let engine = compressed_engine();
    let field_a = wavy_field(24, 0.0);
    let field_b = wavy_field(24, 1.7);
    let mut index = IHilbert::build(&engine, &field_a).expect("build");
    let catalog = index.save(&engine).expect("save");

    engine.clear_cache();
    let reopened = IHilbert::<GridField>::open(&engine, catalog).expect("open");
    assert_same_answers(
        &answers(&reopened, &engine),
        &answers(&index, &engine),
        "compressed reopen",
    );

    // In-place updates re-encode compressed pages; the build-time slack
    // must absorb one rewrite per page. A second save/open round-trip
    // then carries the new state.
    for cell in 0..field_b.num_cells() {
        index
            .update_cell(&engine, cell, field_b.cell_record(cell))
            .expect("update");
    }
    let expected = answers(&index, &engine);
    index.save_to(&engine, catalog).expect("save 2");
    engine.clear_cache();
    let reopened = IHilbert::<GridField>::open(&engine, catalog).expect("open 2");
    assert_same_answers(&answers(&reopened, &engine), &expected, "after updates");
}

/// Every physical-write prefix of `save_to` leaves an openable catalog
/// under the compressed codec too — the commit protocol is codec-blind.
#[test]
fn compressed_save_crash_points_leave_an_openable_catalog() {
    let engine = compressed_engine();
    let field = wavy_field(24, 0.0);
    let index = IHilbert::build(&engine, &field).expect("build");
    let catalog = index.save(&engine).expect("save");
    let expected = answers(&index, &engine);
    engine.flush().expect("drain pool");

    engine.clear_faults();
    index.save_to(&engine, catalog).expect("baseline save");
    let (_, writes) = engine.fault_ops();
    for k in 0..writes {
        engine.clear_faults();
        engine.inject_fault(Fault::FailWrite { nth: k });
        let err = index
            .save_to(&engine, catalog)
            .expect_err("armed write fault must fire");
        assert!(err.is_injected(), "crash at write {k}: {err}");
        engine.clear_faults();
        engine.clear_cache();
        let reopened = IHilbert::<GridField>::open(&engine, catalog)
            .unwrap_or_else(|e| panic!("reopen after crash at write {k}: {e}"));
        assert_same_answers(
            &answers(&reopened, &engine),
            &expected,
            &format!("compressed crash at write {k}"),
        );
    }
}

/// Satellite: a torn write *inside* an encoded cell page decodes to
/// `CfError::Corrupt` naming the page — never a wrong answer, never a
/// panic. The garbage is written through `write_page`, which reseals
/// the physical page checksum, so only the codec's structural
/// validation stands between the corruption and the query result.
#[test]
fn torn_compressed_cell_page_surfaces_corrupt_not_wrong_answers() {
    let engine = compressed_engine();
    let field = wavy_field(24, 0.0);
    let index = IHilbert::build(&engine, &field).expect("build");

    // The cell file is the build's first allocation on a fresh engine,
    // so its first data page is page 0; verify via the codec magic
    // rather than trusting the layout.
    let cell_page = PageId(0);
    let mut buf = engine.with_page(cell_page, |p| *p).expect("read");
    assert_eq!(
        codec::get_u16(&buf, 0),
        compress::PAGE_MAGIC,
        "expected the cell file's first compressed page at page 0"
    );

    let pristine = buf;
    // Several tear shapes: header clobbered, payload clobbered with a
    // value whose control bytes are structurally invalid, payload
    // zeroed mid-way (a real torn write's tail), and a single bit flip.
    type Tear = Box<dyn Fn(&mut PageBuf)>;
    let tears: Vec<(&str, Tear)> = vec![
        ("zero header", Box::new(|p: &mut PageBuf| p[..8].fill(0))),
        (
            "garbage payload",
            Box::new(|p: &mut PageBuf| p[8..2048].fill(0xA5)),
        ),
        ("zero tail", Box::new(|p: &mut PageBuf| p[64..].fill(0))),
        (
            "count inflated",
            Box::new(|p: &mut PageBuf| {
                let n = codec::get_u16(p, 2);
                codec::put_u16(p, 2, n.wrapping_add(7));
            }),
        ),
    ];
    for (what, tear) in tears {
        buf = pristine;
        tear(&mut buf);
        engine.write_page(cell_page, &buf).expect("corrupt write");
        engine.clear_cache();
        let err = index
            .query_stats(&engine, Interval::new(-100.0, 100.0))
            .expect_err(&format!("query over torn page ({what}) must fail"));
        assert!(err.is_corrupt(), "{what}: {err}");
        assert_eq!(err.page(), Some(cell_page), "{what}: {err}");
    }

    // Restoring the page restores bit-identical answers.
    engine.write_page(cell_page, &pristine).expect("restore");
    engine.clear_cache();
    index
        .query_stats(&engine, Interval::new(-100.0, 100.0))
        .expect("query after restore");
}

/// Satellite: every physical-write ordinal of the live-ingest epoch
/// publish sequence — net-delta flush, position-map flush, catalog v4
/// slot commit, post-commit frees — crashes onto a **consistent
/// epoch**: the reopened ingest plane answers exactly like either the
/// last committed state or the state being committed, never a torn
/// mix of the two.
#[test]
fn live_ingest_save_crash_points_land_on_a_consistent_epoch() {
    use cf_index::{IngestConfig, LiveIngest};

    fn snap_answers(live: &LiveIngest<GridField>, engine: &StorageEngine) -> Vec<QueryStats> {
        bands()
            .iter()
            .map(|&b| {
                live.snapshot()
                    .query_stats(engine, b)
                    .expect("snapshot query")
            })
            .collect()
    }

    fn same_answers(got: &[QueryStats], want: &[QueryStats]) -> bool {
        got.iter().zip(want).all(|(g, w)| {
            g.cells_qualifying == w.cells_qualifying
                && g.num_regions == w.num_regions
                && g.area.to_bits() == w.area.to_bits()
        })
    }

    let engine = StorageEngine::in_memory();
    let field = wavy_field(20, 0.0);
    let base = IHilbert::build(&engine, &field).expect("build");
    let live = LiveIngest::new(&engine, base, IngestConfig::default()).expect("live");
    // Seed the delta so every save really flushes one, then commit a
    // baseline epoch.
    for cell in 0..24 {
        let mut rec = field.cell_record(cell);
        rec.vals = [90.0 + cell as f64; 4];
        live.ingest(&engine, cell, rec).expect("ingest");
    }
    let catalog = live.save(&engine).expect("baseline save");
    let mut want_old = snap_answers(&live, &engine);

    let mut crashes = 0usize;
    for k in 0u64.. {
        // Each iteration commits a *different* state, so the fallback
        // epoch and the committed epoch are distinguishable.
        let cell = k as usize % field.num_cells();
        let mut rec = field.cell_record(cell);
        rec.vals = [-80.0 - k as f64; 4];
        live.ingest(&engine, cell, rec).expect("ingest");
        let want_new = snap_answers(&live, &engine);

        engine.clear_faults();
        engine.inject_fault(Fault::FailWrite { nth: k });
        match live.save_to(&engine, catalog) {
            Err(err) => {
                assert!(err.is_injected(), "crash at write {k}: {err}");
                let fired = engine.fired_faults();
                assert_eq!(fired.len(), 1, "crash at write {k}: {fired:?}");
                assert_eq!(fired[0].op, FaultOp::Write, "crash at write {k}");
                assert_eq!(fired[0].ordinal, k, "crash at write {k}");
                engine.clear_faults();
                // A crash loses the buffer pool; reopen disk truth.
                engine.clear_cache();
                let reopened =
                    LiveIngest::<GridField>::open(&engine, catalog, IngestConfig::default())
                        .unwrap_or_else(|e| panic!("reopen after crash at write {k}: {e}"));
                let got = snap_answers(&reopened, &engine);
                assert!(
                    same_answers(&got, &want_old) || same_answers(&got, &want_new),
                    "crash at write {k}: reopened epoch matches neither the fallback nor \
                     the committed state"
                );
                // Reconverge: commit the current state cleanly so the
                // next iteration's fallback is well-defined.
                live.save_to(&engine, catalog).expect("clean save");
                want_old = want_new;
                crashes += 1;
            }
            Ok(()) => {
                // Ordinal past the save's write count: the armed fault
                // never fired and the sequence is fully covered.
                assert!(engine.fired_faults().is_empty(), "write {k}");
                engine.clear_faults();
                break;
            }
        }
    }
    assert!(
        crashes >= 3,
        "must cover delta flush, pos flush, commit and frees ({crashes} ordinals)"
    );
}

/// Satellite: catalog round-trip across every curve and both query
/// planes — the reopened index must answer Q2 identically, including
/// the filter-step visit counts.
#[test]
fn round_trip_preserves_answers_for_all_curves_and_planes() {
    let field = wavy_field(20, 0.6);
    for curve in Curve::ALL {
        for plane in [QueryPlane::Paged, QueryPlane::Frozen] {
            let engine = StorageEngine::in_memory();
            let index = IHilbert::build_with(
                &engine,
                &field,
                IHilbertConfig {
                    curve: CurveChoice(curve),
                    plane,
                    ..Default::default()
                },
            )
            .expect("build");
            let want: Vec<QueryStats> = answers(&index, &engine);
            let catalog = index.save(&engine).expect("save");

            engine.clear_cache();
            let mut reopened = IHilbert::<GridField>::open(&engine, catalog).expect("open");
            if plane == QueryPlane::Frozen {
                reopened.freeze(&engine).expect("freeze");
            }
            let got = answers(&reopened, &engine);
            assert_same_answers(&got, &want, &format!("{curve:?}/{plane:?}"));
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.filter_nodes, w.filter_nodes,
                    "{curve:?}/{plane:?}: band {i} filter_nodes"
                );
            }
        }
    }
}
