//! Work-stealing helpers of the parallel build pipeline.
//!
//! The batch executor (`crate::batch`) fans *queries* over scoped
//! threads with an atomic-cursor work list; this module applies the same
//! pattern to *building* an index. Two primitives cover the pipeline's
//! parallel phases:
//!
//! * [`par_map_chunks`] — embarrassingly parallel per-cell work (curve
//!   key extraction, value-interval extraction, record materialization):
//!   workers claim fixed-size chunks of the input range off an atomic
//!   cursor and the chunk outputs are stitched back in input order, so
//!   the result is identical to the sequential map.
//! * [`par_sort_keyed`] — a deterministic parallel merge sort for the
//!   `(curve key, cell)` tuples of the cell ordering. All tuples are
//!   distinct (cell ids are unique), so the sorted sequence is the
//!   *unique* ascending permutation — any correct sort, parallel or not,
//!   produces exactly the bytes `sort_unstable` would.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Cells claimed per cursor fetch. Large enough to amortize the atomic
/// and keep each worker streaming, small enough to balance skewed
/// per-cell costs (TIN cells vary in vertex fan-out).
pub(crate) const CHUNK: usize = 4096;

/// Maps the index range `0..n` through `f` on `threads` workers and
/// returns the concatenated outputs in input order.
///
/// `f(range, out)` must append exactly one output element per index of
/// `range`, computed independently of every other index — that is what
/// makes the stitched result identical to the sequential map.
pub(crate) fn par_map_chunks<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>, &mut Vec<T>) + Sync,
{
    let num_chunks = n.div_ceil(CHUNK);
    if threads <= 1 || num_chunks <= 1 {
        let mut out = Vec::with_capacity(n);
        f(0..n, &mut out);
        debug_assert_eq!(out.len(), n, "f must produce one output per index");
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let tagged: Vec<(usize, Vec<T>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(num_chunks))
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let range = c * CHUNK..((c + 1) * CHUNK).min(n);
                        let mut out = Vec::with_capacity(range.len());
                        f(range, &mut out);
                        mine.push((c, out));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("build worker panicked"))
            .collect()
    });

    let mut parts = tagged;
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n, "f must produce one output per index");
    out
}

/// Sorts `(curve key, cell)` tuples ascending with a parallel merge
/// sort: `threads` contiguous runs are sorted concurrently, then merged
/// pairwise in rounds (each round's merges write disjoint output slices
/// on their own threads).
///
/// Deterministic by construction — the tuples are pairwise distinct, so
/// the ascending order is unique and the output equals what
/// `sort_unstable` produces on one thread.
pub(crate) fn par_sort_keyed(keyed: &mut Vec<(u64, usize)>, threads: usize) {
    let n = keyed.len();
    if threads <= 1 || n < 2 * CHUNK {
        keyed.sort_unstable();
        return;
    }

    let run = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for part in keyed.chunks_mut(run) {
            scope.spawn(move || part.sort_unstable());
        }
    });

    let mut src = std::mem::take(keyed);
    let mut dst = vec![(0u64, 0usize); n];
    let mut width = run;
    while width < n {
        std::thread::scope(|scope| {
            for (out, pair) in dst.chunks_mut(2 * width).zip(src.chunks(2 * width)) {
                scope.spawn(move || merge_runs(pair, width, out));
            }
        });
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    *keyed = src;
}

/// Merges the sorted runs `pair[..width]` and `pair[width..]` into `out`
/// (`pair.len() == out.len()`; a lone run is copied through).
fn merge_runs(pair: &[(u64, usize)], width: usize, out: &mut [(u64, usize)]) {
    if pair.len() <= width {
        out.copy_from_slice(pair);
        return;
    }
    let (a, b) = pair.split_at(width);
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn par_map_equals_sequential_map() {
        for n in [0usize, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            let want: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
            for threads in [1usize, 2, 3, 8] {
                let got = par_map_chunks(n, threads, |range, out| {
                    out.extend(range.map(|i| (i as u64).wrapping_mul(0x9E37)));
                });
                assert_eq!(got, want, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn par_sort_equals_sort_unstable() {
        let mut rng = StdRng::seed_from_u64(0x50_47);
        for n in [0usize, 5, 2 * CHUNK, 4 * CHUNK + 311, 10 * CHUNK + 1] {
            // Heavy key ties stress determinism: ties are broken by the
            // distinct cell component.
            let base: Vec<(u64, usize)> = (0..n).map(|i| (rng.gen_range(0..64u64), i)).collect();
            let mut want = base.clone();
            want.sort_unstable();
            for threads in [1usize, 2, 3, 4, 7] {
                let mut got = base.clone();
                par_sort_keyed(&mut got, threads);
                assert_eq!(got, want, "n={n} threads={threads}");
            }
        }
    }
}
