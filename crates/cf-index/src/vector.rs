//! Subfield indexing for vector fields — the §5 future-work extension.
//!
//! "In future work we would like to extend our method to process value
//! queries in vector field databases such as wind." The generalization
//! is direct: a cell's value summary becomes a `K`-dimensional box, a
//! subfield's key the union box of its cells, and the 1-D R\*-tree
//! becomes a `K`-dimensional one. The cost function generalizes the
//! Kamel–Faloutsos model to `K` dimensions:
//!
//! ```text
//! size(B) = Π_d (extent_d(B) + base)        C = size(SF) / Σ size(cell)
//! ```
//!
//! which for `K = 1` reduces exactly to the paper's scalar rule. The
//! motivating multi-attribute query from §1 — "find regions where the
//! temperature is between 20° and 25° *and* the salinity is between 12%
//! and 13%" — is a box intersection against this index (see the
//! `ocean_salmon` example).

use crate::order::CURVE_ORDER;
use crate::stats::QueryStats;
use cf_field::{VectorCellRecord, VectorGridField};
use cf_geom::{Aabb, Polygon};
use cf_rtree::{PagedRTree, RStarTree, RTreeConfig};
use cf_sfc::Curve;
use cf_storage::{CfResult, RecordFile, StorageEngine};

/// The vector-field I-Hilbert index.
pub struct VectorIHilbert<const K: usize> {
    file: RecordFile<VectorCellRecord<K>>,
    tree: PagedRTree<K>,
    num_subfields: usize,
}

/// A vector subfield: a record range plus its value box.
#[derive(Debug, Clone, Copy)]
struct VectorSubfield<const K: usize> {
    start: u32,
    end: u32,
    bbox: Aabb<K>,
}

/// Greedy grouping with the K-dimensional cost rule.
fn build_vector_subfields<const K: usize>(boxes: &[Aabb<K>], base: f64) -> Vec<VectorSubfield<K>> {
    assert!(
        boxes.len() <= u32::MAX as usize,
        "cell file too large for u32 subfield pointers"
    );
    let size = |b: &Aabb<K>| -> f64 { (0..K).map(|d| b.extent(d) + base).product() };
    let mut out = Vec::new();
    let Some(first) = boxes.first() else {
        return out;
    };
    let mut start = 0u32;
    let mut union = *first;
    let mut si = size(first);
    for (i, b) in boxes.iter().enumerate().skip(1) {
        let cost_before = size(&union) / si;
        let new_union = union.union(b);
        let new_si = si + size(b);
        let cost_after = size(&new_union) / new_si;
        if cost_before > cost_after {
            union = new_union;
            si = new_si;
        } else {
            out.push(VectorSubfield {
                start,
                end: i as u32,
                bbox: union,
            });
            start = i as u32;
            union = *b;
            si = size(b);
        }
    }
    out.push(VectorSubfield {
        start,
        end: boxes.len() as u32,
        bbox: union,
    });
    out
}

impl<const K: usize> VectorIHilbert<K> {
    /// Builds the index with the paper-default `base = 1.0`.
    pub fn build(engine: &StorageEngine, field: &VectorGridField<K>) -> CfResult<Self> {
        Self::build_with(engine, field, 1.0)
    }

    /// Builds the index with an explicit interval-size base.
    pub fn build_with(
        engine: &StorageEngine,
        field: &VectorGridField<K>,
        base: f64,
    ) -> CfResult<Self> {
        let n = field.num_cells();
        // Hilbert-order the cells by centroid.
        let domain = field.domain();
        let side = (1u64 << CURVE_ORDER) - 1;
        let (w, h) = (domain.extent(0), domain.extent(1));
        let mut keyed: Vec<(u64, usize)> = (0..n)
            .map(|cell| {
                let c = field.cell_centroid(cell);
                let qx = if w > 0.0 {
                    (((c.x - domain.lo[0]) / w).clamp(0.0, 1.0) * side as f64) as u64
                } else {
                    0
                };
                let qy = if h > 0.0 {
                    (((c.y - domain.lo[1]) / h).clamp(0.0, 1.0) * side as f64) as u64
                } else {
                    0
                };
                (Curve::Hilbert.index(qx, qy, CURVE_ORDER), cell)
            })
            .collect();
        keyed.sort_unstable();
        let order: Vec<usize> = keyed.into_iter().map(|(_, c)| c).collect();

        let boxes: Vec<Aabb<K>> = order.iter().map(|&c| field.cell_value_box(c)).collect();
        let subfields = build_vector_subfields(&boxes, base);

        let records: Vec<VectorCellRecord<K>> =
            order.iter().map(|&c| field.cell_record(c)).collect();
        let file = RecordFile::create(engine, records)?;

        let mut tree: RStarTree<K> = RStarTree::new(RTreeConfig::page_sized::<K>());
        for sf in &subfields {
            tree.insert(sf.bbox, (u64::from(sf.start) << 32) | u64::from(sf.end));
        }
        let tree = PagedRTree::persist(&tree, engine)?;
        Ok(Self {
            file,
            tree,
            num_subfields: subfields.len(),
        })
    }

    /// Number of subfields.
    pub fn num_subfields(&self) -> usize {
        self.num_subfields
    }

    /// Pages occupied by the index.
    pub fn index_pages(&self) -> usize {
        self.tree.num_pages()
    }

    /// Multi-attribute value query: regions where every component lies
    /// inside `query` (a box in the K-dimensional value domain).
    pub fn query_with(
        &self,
        engine: &StorageEngine,
        query: &Aabb<K>,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let search = self.tree.search(engine, query, |data, _| {
            ranges.push(((data >> 32) as u32, data as u32));
        })?;
        stats.filter_nodes = search.nodes_visited;
        stats.intervals_retrieved = ranges.len();
        stats.filter_pages = (cf_storage::thread_io_stats() - before).logical_reads();
        ranges.sort_unstable();
        for (start, end) in ranges {
            self.file
                .for_each_in_range(engine, start as usize..end as usize, |_, rec| {
                    stats.cells_examined += 1;
                    if rec.value_box().intersects(query) {
                        stats.cells_qualifying += 1;
                        for region in rec.band_region(query) {
                            stats.num_regions += 1;
                            stats.area += region.area();
                            sink(region);
                        }
                    }
                })?;
        }
        stats.io = cf_storage::thread_io_stats() - before;
        Ok(stats)
    }

    /// Query collecting statistics only.
    pub fn query_stats(&self, engine: &StorageEngine, query: &Aabb<K>) -> CfResult<QueryStats> {
        self.query_with(engine, query, &mut |_| {})
    }
}

/// Reference implementation: scan every cell (used to validate the index
/// and as the baseline in the vector-field bench).
pub fn vector_linear_scan<const K: usize>(
    engine: &StorageEngine,
    file: &RecordFile<VectorCellRecord<K>>,
    query: &Aabb<K>,
) -> CfResult<QueryStats> {
    let before = cf_storage::thread_io_stats();
    let mut stats = QueryStats::default();
    file.for_each_in_range(engine, 0..file.len(), |_, rec| {
        stats.cells_examined += 1;
        if rec.value_box().intersects(query) {
            stats.cells_qualifying += 1;
            for region in rec.band_region(query) {
                stats.num_regions += 1;
                stats.area += region.area();
            }
        }
    })?;
    stats.io = cf_storage::thread_io_stats() - before;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smooth 2-component field: (temperature-like bump, salinity ramp).
    fn sample_field(n: usize) -> VectorGridField<2> {
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                let (fx, fy) = (x as f64 / n as f64, y as f64 / n as f64);
                let temp = 15.0 + 15.0 * (-((fx - 0.4).powi(2) + (fy - 0.5).powi(2)) * 6.0).exp();
                let sal = 10.0 + 5.0 * fx;
                values.push([temp, sal]);
            }
        }
        VectorGridField::from_values(vw, vw, values)
    }

    #[test]
    fn matches_linear_scan() {
        let engine = StorageEngine::in_memory();
        let field = sample_field(24);
        let index = VectorIHilbert::build(&engine, &field).expect("build");
        // Separate file in native order for the scan baseline.
        let records: Vec<VectorCellRecord<2>> = (0..field.num_cells())
            .map(|c| field.cell_record(c))
            .collect();
        let scan_file = RecordFile::create(&engine, records).expect("create");

        for q in [
            Aabb::new([20.0, 12.0], [25.0, 13.0]),
            Aabb::new([0.0, 0.0], [100.0, 100.0]),
            Aabb::new([29.9, 10.0], [30.5, 15.0]),
            Aabb::new([100.0, 100.0], [101.0, 101.0]),
        ] {
            let a = vector_linear_scan(&engine, &scan_file, &q).expect("scan");
            let b = index.query_stats(&engine, &q).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "query {q:?}");
            assert!(
                (a.area - b.area).abs() < 1e-9 * a.area.max(1.0),
                "query {q:?}: {} vs {}",
                a.area,
                b.area
            );
        }
    }

    #[test]
    fn fewer_subfields_than_cells() {
        let engine = StorageEngine::in_memory();
        let field = sample_field(32);
        let index = VectorIHilbert::build(&engine, &field).expect("build");
        assert!(index.num_subfields() < field.num_cells());
        assert!(index.num_subfields() >= 1);
    }

    #[test]
    fn selective_query_reads_less_than_scan() {
        let engine = StorageEngine::in_memory();
        let field = sample_field(48);
        let index = VectorIHilbert::build(&engine, &field).expect("build");
        let records: Vec<VectorCellRecord<2>> = (0..field.num_cells())
            .map(|c| field.cell_record(c))
            .collect();
        let scan_file = RecordFile::create(&engine, records).expect("create");

        let q = Aabb::new([29.0, 10.0], [30.0, 12.0]); // peak temp + low salinity
        engine.clear_cache();
        let a = vector_linear_scan(&engine, &scan_file, &q).expect("scan");
        engine.clear_cache();
        let b = index.query_stats(&engine, &q).expect("query");
        assert_eq!(a.cells_qualifying, b.cells_qualifying);
        assert!(
            b.io.logical_reads() < a.io.logical_reads(),
            "index {} vs scan {}",
            b.io.logical_reads(),
            a.io.logical_reads()
        );
    }
}
