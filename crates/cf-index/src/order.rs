//! Linearizing cells along a space-filling curve.
//!
//! Paper §3.1.2: "the cells will be linearized in order of the Hilbert
//! value of their spatial position, specifically the Hilbert value of the
//! center of cells". Cell centers are quantized onto a `2^ORDER` grid
//! over the field's domain; ties (cells whose centers quantize to the
//! same grid cell) are broken by cell index for determinism.

use cf_field::FieldModel;
use cf_sfc::Curve;

/// Quantization order of the curve grid (32768 × 32768 positions — finer
/// than any workload's cell grid, so grid DEM cells map injectively).
pub const CURVE_ORDER: u32 = 15;

/// Quantizes cell centroids onto the curve grid.
#[derive(Debug, Clone, Copy)]
struct Quantizer {
    lo: [f64; 2],
    w: f64,
    h: f64,
}

impl Quantizer {
    fn new<F: FieldModel>(field: &F) -> Self {
        let domain = field.domain();
        Self {
            lo: domain.lo,
            w: domain.extent(0),
            h: domain.extent(1),
        }
    }

    fn grid_point<F: FieldModel>(&self, field: &F, cell: usize) -> (u64, u64) {
        let side = (1u64 << CURVE_ORDER) - 1;
        let c = field.cell_centroid(cell);
        let qx = if self.w > 0.0 {
            (((c.x - self.lo[0]) / self.w).clamp(0.0, 1.0) * side as f64) as u64
        } else {
            0
        };
        let qy = if self.h > 0.0 {
            (((c.y - self.lo[1]) / self.h).clamp(0.0, 1.0) * side as f64) as u64
        } else {
            0
        };
        (qx, qy)
    }
}

/// Returns the cell indices of `field` ordered along `curve`.
pub fn cell_order<F: FieldModel>(field: &F, curve: Curve) -> Vec<usize> {
    let n = field.num_cells();
    let q = Quantizer::new(field);
    let mut keyed: Vec<(u64, usize)> = (0..n)
        .map(|cell| {
            let (qx, qy) = q.grid_point(field, cell);
            (curve.index(qx, qy, CURVE_ORDER), cell)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, cell)| cell).collect()
}

/// Parallel [`cell_order`]: curve keys are extracted chunk-wise by
/// work-stealing workers (batched through [`Curve::index_batch`] so the
/// curve dispatch is hoisted out of the per-cell loop) and the
/// `(key, cell)` tuples are sorted with a deterministic parallel merge
/// sort. Returns **exactly** the permutation [`cell_order`] returns —
/// tuples are pairwise distinct, so the ascending order is unique and
/// independent of thread count and scheduling.
pub fn par_cell_order<F>(field: &F, curve: Curve, threads: usize) -> Vec<usize>
where
    F: FieldModel + Sync,
{
    let n = field.num_cells();
    let q = Quantizer::new(field);
    let mut keyed: Vec<(u64, usize)> = crate::par::par_map_chunks(n, threads, |range, out| {
        let points: Vec<(u64, u64)> = range
            .clone()
            .map(|cell| q.grid_point(field, cell))
            .collect();
        let mut keys = Vec::new();
        curve.index_batch(&points, CURVE_ORDER, &mut keys);
        out.extend(keys.into_iter().zip(range));
    });
    crate::par::par_sort_keyed(&mut keyed, threads);
    keyed.into_iter().map(|(_, cell)| cell).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_field::GridField;

    fn grid(n: usize) -> GridField {
        let vw = n + 1;
        let values = vec![0.0; vw * vw];
        GridField::from_values(vw, vw, values)
    }

    #[test]
    fn order_is_a_permutation() {
        let g = grid(8);
        for curve in Curve::ALL {
            let order = cell_order(&g, curve);
            let mut seen = vec![false; g.num_cells()];
            for &c in &order {
                assert!(!seen[c]);
                seen[c] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn hilbert_order_has_unit_steps_on_a_grid() {
        // On a 2^k cell grid, consecutive cells in Hilbert order must be
        // 4-neighbors (the "no jumps" property the subfields exploit).
        let g = grid(16);
        let order = cell_order(&g, Curve::Hilbert);
        let (cw, _) = g.cell_dims();
        for w in order.windows(2) {
            let (x0, y0) = (w[0] % cw, w[0] / cw);
            let (x1, y1) = (w[1] % cw, w[1] / cw);
            let d = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(d, 1, "jump between cells {} and {}", w[0], w[1]);
        }
    }

    #[test]
    fn parallel_order_equals_sequential_order() {
        // 100×100 cells (> 2 × CHUNK) so both the chunked key extraction
        // and the parallel merge sort actually engage.
        let g = grid(100);
        for curve in Curve::ALL {
            let want = cell_order(&g, curve);
            for threads in [1usize, 2, 4, 7] {
                let got = par_cell_order(&g, curve, threads);
                assert_eq!(got, want, "curve {curve:?} threads {threads}");
            }
        }
    }

    #[test]
    fn row_major_order_is_identity_for_grid() {
        let g = grid(4);
        let order = cell_order(&g, Curve::RowMajor);
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }
}
