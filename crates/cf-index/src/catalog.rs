//! Database catalog: persisting an I-Hilbert index so a (file-backed)
//! database can be closed and reopened by a later process.
//!
//! Everything the index owns already lives on pages — the cell file, the
//! subfield metadata file, the position-map file and the R\*-tree. The
//! catalog records where each of those starts, plus a magic/version
//! header; [`IHilbert::save`] writes it and [`IHilbert::open`]
//! reattaches.
//!
//! # Shadow-paged atomic commit
//!
//! The catalog occupies a run of **two** pages — two versioned slots.
//! Each slot carries an epoch counter and a CRC-32 over its contents.
//! [`IHilbert::save_to`] never overwrites the live slot: it writes the
//! freshly serialized catalog into the *inactive* slot with
//! `epoch = live_epoch + 1`. That single page write is the commit point;
//! a crash (or injected fault) anywhere before it leaves the old slot
//! untouched, and a torn write of the new slot fails its CRC, so
//! [`IHilbert::open`] — which picks the highest-epoch slot that
//! validates — falls back to the previous consistent catalog. See
//! DESIGN.md §9 for the full protocol and its caveats.

use crate::ihilbert::IHilbert;
use crate::ingest::{DeltaRec, IngestConfig, LiveIngest};
use crate::sfindex::SubfieldIndex;
use crate::subfield::Subfield;
use cf_field::FieldModel;
use cf_rtree::PagedRTree;
use cf_sfc::Curve;
use cf_storage::{
    checksum, codec, CellFile, CfError, CfResult, CompressedRecordFile, PageBuf, PageCodec, PageId,
    Record, RecordFile, StorageEngine, PAGE_SIZE,
};

/// Catalog page magic ("CFIELDB1" in LE bytes).
const MAGIC: u64 = 0x3142_444C_4549_4643;
/// Catalog format version (2 = two-slot epoch commit; 3 appends the
/// page codec tag and the cell/subfield files' data-page counts, which
/// the compressed layout needs to locate its page directory; 4 appends
/// the live-ingest epoch pointer and the flushed delta file's run, so
/// a [`LiveIngest`] plane survives close/reopen).
const VERSION: u32 = 4;
/// Number of slot pages a catalog occupies.
const NUM_SLOTS: u64 = 2;
/// Bytes covered by the slot checksum (header + payload).
const CRC_COVER: usize = 144;

/// A `u32` cell→position mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosRecord(pub u32);

impl Record for PosRecord {
    const SIZE: usize = 4;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_u32(buf, 0, self.0);
    }

    fn decode(buf: &[u8]) -> Self {
        Self(codec::get_u32(buf, 0))
    }
}

fn curve_tag(curve: Curve) -> u32 {
    match curve {
        Curve::Hilbert => 0,
        Curve::ZOrder => 1,
        Curve::GrayCode => 2,
        Curve::RowMajor => 3,
    }
}

fn curve_from_tag(tag: u32) -> Option<Curve> {
    match tag {
        0 => Some(Curve::Hilbert),
        1 => Some(Curve::ZOrder),
        2 => Some(Curve::GrayCode),
        3 => Some(Curve::RowMajor),
        _ => None,
    }
}

/// One decoded catalog slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    curve: Curve,
    epoch: u64,
    cell_first: u64,
    cell_len: usize,
    sf_first: u64,
    sf_len: usize,
    pos_first: u64,
    pos_len: usize,
    t_root: u64,
    t_height: u32,
    t_len: u64,
    t_pages: u64,
    codec: PageCodec,
    cell_data_pages: u64,
    sf_data_pages: u64,
    /// Live-ingest publication epoch at save time (0: plain index
    /// save, no ingest plane).
    ingest_epoch: u64,
    /// First page of the flushed net-delta record file (meaningless
    /// when `delta_len == 0`).
    delta_first: u64,
    /// Net delta records flushed alongside the base (0: empty delta).
    delta_len: usize,
}

fn encode_slot(slot: &Slot) -> PageBuf {
    let mut buf: PageBuf = [0u8; PAGE_SIZE];
    let mut off = 0;
    off = codec::put_u64(&mut buf, off, MAGIC);
    off = codec::put_u32(&mut buf, off, VERSION);
    off = codec::put_u32(&mut buf, off, curve_tag(slot.curve));
    off = codec::put_u64(&mut buf, off, slot.epoch);
    off = codec::put_u64(&mut buf, off, slot.cell_first);
    off = codec::put_u64(&mut buf, off, slot.cell_len as u64);
    off = codec::put_u64(&mut buf, off, slot.sf_first);
    off = codec::put_u64(&mut buf, off, slot.sf_len as u64);
    off = codec::put_u64(&mut buf, off, slot.pos_first);
    off = codec::put_u64(&mut buf, off, slot.pos_len as u64);
    off = codec::put_u64(&mut buf, off, slot.t_root);
    off = codec::put_u32(&mut buf, off, slot.t_height);
    off = codec::put_u64(&mut buf, off, slot.t_len);
    off = codec::put_u64(&mut buf, off, slot.t_pages);
    off = codec::put_u32(&mut buf, off, slot.codec.tag());
    off = codec::put_u64(&mut buf, off, slot.cell_data_pages);
    off = codec::put_u64(&mut buf, off, slot.sf_data_pages);
    off = codec::put_u64(&mut buf, off, slot.ingest_epoch);
    off = codec::put_u64(&mut buf, off, slot.delta_first);
    let end = codec::put_u64(&mut buf, off, slot.delta_len as u64);
    debug_assert_eq!(end, CRC_COVER);
    let crc = checksum::crc32(&buf[..CRC_COVER]);
    codec::put_u32(&mut buf, CRC_COVER, crc);
    buf
}

/// Decodes one slot page, validating magic, version, curve tag and the
/// slot CRC. Every failure is a typed [`CfError::Corrupt`] naming the
/// slot page and what was wrong with it.
fn decode_slot(page: PageId, buf: &PageBuf) -> CfResult<Slot> {
    let mut off = 0;
    let magic = codec::get_u64(buf, off);
    off += 8;
    if magic != MAGIC {
        return Err(CfError::corrupt(
            page,
            format!("not a contfield catalog page (magic {magic:#018x}, expected {MAGIC:#018x})"),
        ));
    }
    let version = codec::get_u32(buf, off);
    off += 4;
    if version != VERSION {
        return Err(CfError::corrupt(
            page,
            format!("unsupported catalog version {version} (this build reads version {VERSION})"),
        ));
    }
    let stored_crc = codec::get_u32(buf, CRC_COVER);
    let computed = checksum::crc32(&buf[..CRC_COVER]);
    if stored_crc != computed {
        return Err(CfError::corrupt(
            page,
            format!(
                "catalog slot checksum mismatch (stored {stored_crc:#010x}, computed \
                 {computed:#010x}) — torn or partial commit"
            ),
        ));
    }
    let tag = codec::get_u32(buf, off);
    off += 4;
    let curve = curve_from_tag(tag).ok_or_else(|| {
        CfError::corrupt(
            page,
            format!("unknown curve tag {tag} (known: 0=Hilbert, 1=ZOrder, 2=GrayCode, 3=RowMajor)"),
        )
    })?;
    let epoch = codec::get_u64(buf, off);
    off += 8;
    let cell_first = codec::get_u64(buf, off);
    off += 8;
    let cell_len = codec::get_u64(buf, off) as usize;
    off += 8;
    let sf_first = codec::get_u64(buf, off);
    off += 8;
    let sf_len = codec::get_u64(buf, off) as usize;
    off += 8;
    let pos_first = codec::get_u64(buf, off);
    off += 8;
    let pos_len = codec::get_u64(buf, off) as usize;
    off += 8;
    let t_root = codec::get_u64(buf, off);
    off += 8;
    let t_height = codec::get_u32(buf, off);
    off += 4;
    let t_len = codec::get_u64(buf, off);
    off += 8;
    let t_pages = codec::get_u64(buf, off);
    off += 8;
    let codec_tag = codec::get_u32(buf, off);
    off += 4;
    let codec = PageCodec::from_tag(codec_tag).ok_or_else(|| {
        CfError::corrupt(
            page,
            format!("unknown page codec tag {codec_tag} (known: 0=raw, 1=compressed)"),
        )
    })?;
    let cell_data_pages = codec::get_u64(buf, off);
    off += 8;
    let sf_data_pages = codec::get_u64(buf, off);
    off += 8;
    let ingest_epoch = codec::get_u64(buf, off);
    off += 8;
    let delta_first = codec::get_u64(buf, off);
    off += 8;
    let delta_len = codec::get_u64(buf, off) as usize;
    Ok(Slot {
        curve,
        epoch,
        cell_first,
        cell_len,
        sf_first,
        sf_len,
        pos_first,
        pos_len,
        t_root,
        t_height,
        t_len,
        t_pages,
        codec,
        cell_data_pages,
        sf_data_pages,
        ingest_epoch,
        delta_first,
        delta_len,
    })
}

/// Reads and decodes one slot page; any failure (unreadable page,
/// failed page checksum, bad slot contents) comes back as `Err`.
fn read_slot(engine: &StorageEngine, page: PageId) -> CfResult<Slot> {
    engine.try_with_page(page, |buf| decode_slot(page, buf))
}

impl<F: FieldModel> IHilbert<F> {
    /// Persists the index catalog into a freshly allocated two-slot
    /// catalog run, returning its first page id (the database's
    /// "bootstrap" pointer — store it at a known location, e.g. page 0,
    /// or externally).
    pub fn save(&self, engine: &StorageEngine) -> CfResult<PageId> {
        let catalog = engine.allocate_run(NUM_SLOTS as usize)?;
        self.save_to(engine, catalog)?;
        Ok(catalog)
    }

    /// Persists the index catalog into an existing two-slot catalog run
    /// (allocated by a previous [`IHilbert::save`]), committing via the
    /// shadow-slot protocol.
    ///
    /// The cell file, subfield file and tree pages are already on disk;
    /// this writes the cell→position map to fresh pages, then commits by
    /// writing the serialized catalog into the slot that is *not*
    /// currently live. The old catalog stays intact (and wins on
    /// [`IHilbert::open`]) until that final single-page write lands
    /// whole.
    pub fn save_to(&self, engine: &StorageEngine, catalog: PageId) -> CfResult<()> {
        self.save_slot_with_delta(engine, catalog, 0, 0, 0)
    }

    /// Shared commit path of [`IHilbert::save_to`] and
    /// [`LiveIngest::save_to`]: writes the next shadow slot, carrying
    /// the live-ingest epoch pointer and the (already flushed) net
    /// delta run. A plain index save passes zeros.
    pub(crate) fn save_slot_with_delta(
        &self,
        engine: &StorageEngine,
        catalog: PageId,
        ingest_epoch: u64,
        delta_first: u64,
        delta_len: usize,
    ) -> CfResult<()> {
        // Lenient look at both slots: an unreadable or invalid slot is
        // simply not live. `max_by_key` breaks ties toward slot 1, so a
        // (never-produced) epoch tie still yields a deterministic pick.
        let slots: Vec<Option<Slot>> = (0..NUM_SLOTS)
            .map(|i| read_slot(engine, PageId(catalog.0 + i)).ok())
            .collect();
        let live = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, s.epoch)))
            .max_by_key(|&(_, e)| e);
        let (target, epoch) = match live {
            Some((live_idx, live_epoch)) => (1 - live_idx as u64, live_epoch + 1),
            None => (0, 1),
        };
        // The slot about to be overwritten references the
        // previous-but-one epoch's position map; once the commit below
        // lands, no slot references it and its run can be freed.
        let replaced_pos = slots[target as usize].map(|s| {
            let pages = RecordFile::<PosRecord>::open(PageId(s.pos_first), s.pos_len).num_pages();
            (PageId(s.pos_first), pages)
        });
        // Same lifecycle for the replaced slot's flushed delta run:
        // dead once no slot references it, freed only after the commit.
        let replaced_delta = slots[target as usize].and_then(|s| {
            if s.delta_len == 0 {
                return None;
            }
            let pages =
                RecordFile::<DeltaRec<F::CellRec>>::open(PageId(s.delta_first), s.delta_len)
                    .num_pages();
            Some((PageId(s.delta_first), pages))
        });

        // The only index state not already on its own pages: the
        // cell→position map. Written to fresh pages, never in place, so
        // the slot still referencing the old copy stays consistent.
        let pos_file = RecordFile::create(
            engine,
            self.cell_to_pos()
                .iter()
                .map(|&p| PosRecord(p))
                .collect::<Vec<_>>(),
        )?;
        // Commit-ordering invariant: everything the new slot references
        // must be physically on disk before the slot write. Record-file
        // creation (including the pos file above) buffers its writes,
        // so flush the pool here — ascending page order, deterministic
        // fault ordinals — before the commit point below.
        engine.flush()?;
        let inner = self.inner();
        let (t_root, t_height, t_len, t_pages) = inner.tree.to_parts();
        let slot = Slot {
            curve: self.curve(),
            epoch,
            cell_first: inner.file.first_page().0,
            cell_len: inner.file.len(),
            sf_first: inner.sf_file.first_page().0,
            sf_len: inner.sf_file.len(),
            pos_first: pos_file.first_page().0,
            pos_len: pos_file.len(),
            t_root,
            t_height,
            t_len,
            t_pages,
            codec: inner.file.codec(),
            cell_data_pages: inner.file.data_pages() as u64,
            sf_data_pages: inner.sf_file.data_pages() as u64,
            ingest_epoch,
            delta_first,
            delta_len,
        };
        // Commit point: one full-page write. Torn → CRC mismatch → the
        // slot is not live and the previous epoch still wins.
        engine.write_page(PageId(catalog.0 + target), &encode_slot(&slot))?;
        // Garbage-collect the superseded position map, keeping repeated
        // saves from growing the file without bound (two pos files stay
        // in flight: the live epoch's and the fallback slot's). Ordered
        // after the commit, so a crash anywhere earlier leaves it
        // intact for the fallback slot; a crash between the commit and
        // this free leaks the run, never corrupts.
        if let Some((first, pages)) = replaced_pos {
            if first.0 != slot.pos_first {
                engine.free_run(first, pages)?;
            }
        }
        if let Some((first, pages)) = replaced_delta {
            if first.0 != slot.delta_first || slot.delta_len == 0 {
                engine.free_run(first, pages)?;
            }
        }
        Ok(())
    }

    /// Reattaches to an index saved with [`IHilbert::save`] — typically
    /// on a file-backed engine reopened by a new process.
    ///
    /// Picks the highest-epoch slot that validates (magic, version,
    /// CRC). Returns [`CfError::Corrupt`] when neither slot holds a
    /// consistent catalog, or when the winning slot references pages
    /// past the end of the database (a corrupt length field).
    pub fn open(engine: &StorageEngine, catalog: PageId) -> CfResult<Self> {
        Self::open_slot(engine, catalog).map(|(index, _)| index)
    }

    /// [`IHilbert::open`] plus the winning slot itself, so the
    /// live-ingest reopen path can reach the v4 delta fields.
    fn open_slot(engine: &StorageEngine, catalog: PageId) -> CfResult<(Self, Slot)> {
        let mut winner: Option<Slot> = None;
        let mut failures: Vec<String> = Vec::new();
        for i in 0..NUM_SLOTS {
            match read_slot(engine, PageId(catalog.0 + i)) {
                Ok(slot) => {
                    if winner.is_none_or(|w| slot.epoch > w.epoch) {
                        winner = Some(slot);
                    }
                }
                Err(e) => failures.push(format!("slot {i}: {e}")),
            }
        }
        let Some(slot) = winner else {
            return Err(CfError::corrupt(
                catalog,
                format!("no valid catalog slot ({})", failures.join("; ")),
            ));
        };

        let pos_file = RecordFile::<PosRecord>::open(PageId(slot.pos_first), slot.pos_len);

        // Validate every referenced span against the database size
        // before reading (or allocating buffers for) any of it: a
        // corrupt length would otherwise demand absurd memory or fault
        // unallocated pages one by one. Compressed spans (data pages +
        // trailing directory) are computed from the slot fields alone —
        // opening a compressed file reads its directory, which must not
        // happen before this check.
        let (cell_pages, sf_pages) = match slot.codec {
            PageCodec::Raw => (
                RecordFile::<F::CellRec>::open(PageId(slot.cell_first), slot.cell_len).num_pages()
                    as u64,
                RecordFile::<Subfield>::open(PageId(slot.sf_first), slot.sf_len).num_pages() as u64,
            ),
            PageCodec::Compressed => (
                CompressedRecordFile::<F::CellRec>::total_pages(slot.cell_data_pages as usize)
                    as u64,
                CompressedRecordFile::<Subfield>::total_pages(slot.sf_data_pages as usize) as u64,
            ),
        };
        let num_pages = engine.num_pages() as u64;
        let delta_pages = if slot.delta_len > 0 {
            RecordFile::<DeltaRec<F::CellRec>>::open(PageId(slot.delta_first), slot.delta_len)
                .num_pages() as u64
        } else {
            0
        };
        let spans = [
            ("cell file", slot.cell_first, cell_pages),
            ("subfield file", slot.sf_first, sf_pages),
            ("position map", slot.pos_first, pos_file.num_pages() as u64),
            ("tree root", slot.t_root, 1),
            ("delta file", slot.delta_first, delta_pages),
        ];
        for (what, first, len) in spans {
            if first.saturating_add(len) > num_pages {
                return Err(CfError::corrupt(
                    catalog,
                    format!(
                        "catalog {what} spans pages {first}..{} but the database has {num_pages} \
                         pages",
                        first.saturating_add(len)
                    ),
                ));
            }
        }
        let file = CellFile::<F::CellRec>::open(
            engine,
            slot.codec,
            PageId(slot.cell_first),
            slot.cell_len,
            slot.cell_data_pages as usize,
        )?;
        let sf_file = CellFile::<Subfield>::open(
            engine,
            slot.codec,
            PageId(slot.sf_first),
            slot.sf_len,
            slot.sf_data_pages as usize,
        )?;

        let mut tree = PagedRTree::from_parts(slot.t_root, slot.t_height, slot.t_len, slot.t_pages);
        tree.attach_metrics(engine);
        let inner = SubfieldIndex::open(engine, file, tree, sf_file)?;
        let cell_to_pos: Vec<u32> = pos_file
            .read_range(engine, 0..slot.pos_len)?
            .into_iter()
            .map(|r| r.0)
            .collect();

        let index = Self::from_parts(inner, slot.curve, cell_to_pos);
        // Structural health gauges come straight from the reopened
        // metadata; the cost-C distribution needs per-cell intervals and
        // reappears on the first update.
        index.inner().publish_health(engine.metrics(), None);
        Ok((index, slot))
    }
}

impl<F: FieldModel> LiveIngest<F> {
    /// Persists the ingest plane into a freshly allocated two-slot
    /// catalog run: base index + flushed net delta + epoch pointer.
    pub fn save(&self, engine: &StorageEngine) -> CfResult<PageId> {
        let catalog = engine.allocate_run(NUM_SLOTS as usize)?;
        self.save_to(engine, catalog)?;
        Ok(catalog)
    }

    /// Persists the ingest plane into an existing catalog run via the
    /// shadow-slot protocol, in crash-ordered steps: (1) flush the net
    /// delta to a fresh record-file run, (2) commit the v4 slot
    /// (pointing at base + delta + epoch) with one page write, (3)
    /// free the runs only the replaced slot referenced. A crash
    /// anywhere in the sequence leaves a previous consistent epoch
    /// winning on reopen.
    pub fn save_to(&self, engine: &StorageEngine, catalog: PageId) -> CfResult<()> {
        let (base, deltas, epoch) = self.persist_state();
        let (delta_first, delta_len) = if deltas.is_empty() {
            (0, 0)
        } else {
            let len = deltas.len();
            let file = RecordFile::create(engine, deltas)?;
            (file.first_page().0, len)
        };
        base.save_slot_with_delta(engine, catalog, epoch, delta_first, delta_len)
    }

    /// Reattaches a saved ingest plane: reopens the base index from
    /// the winning slot, replays the flushed net delta into the
    /// overlay maps (rebuilding the per-subfield interval summary) and
    /// resumes publishing from the persisted epoch.
    pub fn open(engine: &StorageEngine, catalog: PageId, config: IngestConfig) -> CfResult<Self> {
        let (base, slot) = IHilbert::<F>::open_slot(engine, catalog)?;
        let ring: Vec<DeltaRec<F::CellRec>> = if slot.delta_len > 0 {
            RecordFile::<DeltaRec<F::CellRec>>::open(PageId(slot.delta_first), slot.delta_len)
                .read_range(engine, 0..slot.delta_len)?
        } else {
            Vec::new()
        };
        Self::from_state(engine, base, config, slot.ingest_epoch, ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::stats::ValueIndex;
    use cf_field::GridField;
    use cf_geom::Interval;

    fn bumpy_field(n: usize) -> GridField {
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push((x as f64 * 0.3).sin() * 20.0 + (y as f64 * 0.2).cos() * 15.0);
            }
        }
        GridField::from_values(vw, vw, values)
    }

    #[test]
    fn save_open_round_trip_in_memory() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(24);
        let built = IHilbert::build(&engine, &field).expect("build");
        let catalog = built.save(&engine).expect("save");

        let reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog).expect("open");
        assert_eq!(reopened.num_subfields(), built.num_subfields());
        for band in [
            Interval::new(-10.0, 10.0),
            Interval::point(0.0),
            Interval::new(30.0, 40.0),
        ] {
            let a = built.query_stats(&engine, band).expect("query");
            let b = reopened.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!((a.area - b.area).abs() < 1e-12);
        }
    }

    #[test]
    fn reopened_index_supports_updates() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(12);
        let built = IHilbert::build(&engine, &field).expect("build");
        let catalog = built.save(&engine).expect("save");
        let mut reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog).expect("open");

        // Update through the reopened handle and verify against a scan.
        let cell = 17;
        let rec = cf_field::GridCellRecord {
            vals: [500.0; 4],
            ..field.cell_record(cell)
        };
        reopened.update_cell(&engine, cell, rec).expect("update");
        let stats = reopened
            .query_stats(&engine, Interval::new(499.0, 501.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 1);

        // A second save/open carries the update forward.
        let catalog2 = reopened.save(&engine).expect("save");
        let third: IHilbert<GridField> = IHilbert::open(&engine, catalog2).expect("open");
        let stats = third
            .query_stats(&engine, Interval::new(499.0, 501.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 1);
    }

    #[test]
    fn rejects_garbage_page_with_typed_error() {
        let engine = StorageEngine::in_memory();
        let page = engine.allocate_run(2).expect("allocate");
        let err = IHilbert::<GridField>::open(&engine, page)
            .map(|_| ())
            .expect_err("garbage catalog");
        assert!(err.is_corrupt());
        assert_eq!(err.page(), Some(page));
        let msg = err.to_string();
        assert!(
            msg.contains("not a contfield catalog page"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn rejects_unknown_curve_tag() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(8);
        let built = IHilbert::build(&engine, &field).expect("build");
        let catalog = built.save(&engine).expect("save");
        // Corrupt the live slot's curve tag and re-seal its CRC so only
        // the tag validation can reject it.
        let mut buf = engine.with_page(catalog, |p| *p).expect("read");
        codec::put_u32(&mut buf, 12, 99);
        let crc = checksum::crc32(&buf[..CRC_COVER]);
        codec::put_u32(&mut buf, CRC_COVER, crc);
        engine.write_page(catalog, &buf).expect("write");
        // Also clobber the second slot so no fallback exists.
        engine
            .write_page(PageId(catalog.0 + 1), &[0u8; PAGE_SIZE])
            .expect("write");
        let err = IHilbert::<GridField>::open(&engine, catalog)
            .map(|_| ())
            .expect_err("bad curve tag");
        assert!(err.is_corrupt());
        assert!(
            err.to_string().contains("unknown curve tag 99"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn rejects_version_from_the_future() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(8);
        let built = IHilbert::build(&engine, &field).expect("build");
        let catalog = built.save(&engine).expect("save");
        let mut buf = engine.with_page(catalog, |p| *p).expect("read");
        codec::put_u32(&mut buf, 8, VERSION + 7);
        let crc = checksum::crc32(&buf[..CRC_COVER]);
        codec::put_u32(&mut buf, CRC_COVER, crc);
        engine.write_page(catalog, &buf).expect("write");
        engine
            .write_page(PageId(catalog.0 + 1), &[0u8; PAGE_SIZE])
            .expect("write");
        let err = IHilbert::<GridField>::open(&engine, catalog)
            .map(|_| ())
            .expect_err("future version");
        assert!(
            err.to_string().contains("unsupported catalog version"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn rejects_spans_past_database_end() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(8);
        let built = IHilbert::build(&engine, &field).expect("build");
        let catalog = built.save(&engine).expect("save");
        let mut buf = engine.with_page(catalog, |p| *p).expect("read");
        // cell_len at offset 32: claim an absurd record count.
        codec::put_u64(&mut buf, 32, u64::MAX / 8);
        let crc = checksum::crc32(&buf[..CRC_COVER]);
        codec::put_u32(&mut buf, CRC_COVER, crc);
        engine.write_page(catalog, &buf).expect("write");
        engine
            .write_page(PageId(catalog.0 + 1), &[0u8; PAGE_SIZE])
            .expect("write");
        let err = IHilbert::<GridField>::open(&engine, catalog)
            .map(|_| ())
            .expect_err("absurd span");
        assert!(err.is_corrupt());
        assert!(
            err.to_string().contains("spans pages"),
            "unexpected message: {err}"
        );
    }

    #[test]
    fn save_to_alternates_slots_and_bumps_epochs() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(8);
        let built = IHilbert::build(&engine, &field).expect("build");
        let catalog = built.save(&engine).expect("save");
        let epoch_of = |page: PageId| read_slot(&engine, page).map(|s| s.epoch);
        assert_eq!(epoch_of(catalog).expect("slot 0"), 1);
        assert!(epoch_of(PageId(catalog.0 + 1)).is_err(), "slot 1 unused");

        built.save_to(&engine, catalog).expect("save 2");
        assert_eq!(epoch_of(catalog).expect("slot 0"), 1, "slot 0 untouched");
        assert_eq!(epoch_of(PageId(catalog.0 + 1)).expect("slot 1"), 2);

        built.save_to(&engine, catalog).expect("save 3");
        assert_eq!(epoch_of(catalog).expect("slot 0"), 3, "oldest slot reused");
        assert_eq!(epoch_of(PageId(catalog.0 + 1)).expect("slot 1"), 2);

        let reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog).expect("open");
        assert_eq!(reopened.num_subfields(), built.num_subfields());
    }

    #[test]
    fn answers_match_scan_after_reopen() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(16);
        let catalog = IHilbert::build(&engine, &field)
            .expect("build")
            .save(&engine)
            .expect("save");
        let scan = LinearScan::build(&engine, &field).expect("build");
        let reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog).expect("open");
        let dom = cf_field::FieldModel::value_domain(&field);
        for t in [0.0, 0.3, 0.7] {
            let band = Interval::new(dom.denormalize(t), dom.denormalize((t + 0.2).min(1.0)));
            let a = scan.query_stats(&engine, band).expect("query");
            let b = reopened.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying);
            assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
        }
    }
}
