//! Database catalog: persisting an I-Hilbert index so a (file-backed)
//! database can be closed and reopened by a later process.
//!
//! Everything the index owns already lives on pages — the cell file, the
//! subfield metadata file, the position-map file and the R\*-tree. The
//! catalog is one more page recording where each of those starts, plus a
//! magic/version header; [`IHilbert::save`] writes it and
//! [`IHilbert::open`] reattaches.

use crate::ihilbert::IHilbert;
use crate::sfindex::SubfieldIndex;
use crate::subfield::Subfield;
use cf_field::FieldModel;
use cf_rtree::PagedRTree;
use cf_sfc::Curve;
use cf_storage::{codec, PageBuf, PageId, Record, RecordFile, StorageEngine, PAGE_SIZE};

/// Catalog page magic ("CFIELDB1" in LE bytes).
const MAGIC: u64 = 0x3142_444C_4549_4643;
/// Catalog format version.
const VERSION: u32 = 1;

/// A `u32` cell→position mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosRecord(pub u32);

impl Record for PosRecord {
    const SIZE: usize = 4;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_u32(buf, 0, self.0);
    }

    fn decode(buf: &[u8]) -> Self {
        Self(codec::get_u32(buf, 0))
    }
}

fn curve_tag(curve: Curve) -> u32 {
    match curve {
        Curve::Hilbert => 0,
        Curve::ZOrder => 1,
        Curve::GrayCode => 2,
        Curve::RowMajor => 3,
    }
}

fn curve_from_tag(tag: u32) -> Curve {
    match tag {
        0 => Curve::Hilbert,
        1 => Curve::ZOrder,
        2 => Curve::GrayCode,
        3 => Curve::RowMajor,
        other => panic!("corrupt catalog: unknown curve tag {other}"),
    }
}

impl<F: FieldModel> IHilbert<F> {
    /// Persists the index catalog, returning the catalog page id (the
    /// database's "bootstrap" pointer — store it at a known location,
    /// e.g. page 0, or externally).
    ///
    /// The cell file, subfield file and tree pages are already on disk;
    /// this writes the cell→position map plus one catalog page.
    pub fn save(&self, engine: &StorageEngine) -> PageId {
        let pos_file = RecordFile::create(
            engine,
            self.cell_to_pos()
                .iter()
                .map(|&p| PosRecord(p))
                .collect::<Vec<_>>(),
        );
        let inner = self.inner();
        let (t_root, t_height, t_len, t_pages) = inner.tree.to_parts();

        let page = engine.allocate_page();
        let mut buf: PageBuf = [0u8; PAGE_SIZE];
        let mut off = 0;
        off = codec::put_u64(&mut buf, off, MAGIC);
        off = codec::put_u32(&mut buf, off, VERSION);
        off = codec::put_u32(&mut buf, off, curve_tag(self.curve()));
        off = codec::put_u64(&mut buf, off, inner.file.first_page().0);
        off = codec::put_u64(&mut buf, off, inner.file.len() as u64);
        off = codec::put_u64(&mut buf, off, inner.sf_file.first_page().0);
        off = codec::put_u64(&mut buf, off, inner.sf_file.len() as u64);
        off = codec::put_u64(&mut buf, off, pos_file.first_page().0);
        off = codec::put_u64(&mut buf, off, pos_file.len() as u64);
        off = codec::put_u64(&mut buf, off, t_root);
        off = codec::put_u32(&mut buf, off, t_height);
        off = codec::put_u64(&mut buf, off, t_len);
        let _ = codec::put_u64(&mut buf, off, t_pages);
        engine.write_page(page, &buf);
        page
    }

    /// Reattaches to an index saved with [`IHilbert::save`] — typically
    /// on a file-backed engine reopened by a new process.
    ///
    /// # Panics
    ///
    /// Panics on a bad magic number or unsupported version (a corrupt
    /// or foreign catalog page).
    pub fn open(engine: &StorageEngine, catalog: PageId) -> Self {
        let buf: PageBuf = engine.with_page(catalog, |p| *p);
        let mut off = 0;
        let magic = codec::get_u64(&buf, off);
        off += 8;
        assert_eq!(magic, MAGIC, "not a contfield catalog page");
        let version = codec::get_u32(&buf, off);
        off += 4;
        assert_eq!(version, VERSION, "unsupported catalog version");
        let curve = curve_from_tag(codec::get_u32(&buf, off));
        off += 4;
        let cell_first = codec::get_u64(&buf, off);
        off += 8;
        let cell_len = codec::get_u64(&buf, off) as usize;
        off += 8;
        let sf_first = codec::get_u64(&buf, off);
        off += 8;
        let sf_len = codec::get_u64(&buf, off) as usize;
        off += 8;
        let pos_first = codec::get_u64(&buf, off);
        off += 8;
        let pos_len = codec::get_u64(&buf, off) as usize;
        off += 8;
        let t_root = codec::get_u64(&buf, off);
        off += 8;
        let t_height = codec::get_u32(&buf, off);
        off += 4;
        let t_len = codec::get_u64(&buf, off);
        off += 8;
        let t_pages = codec::get_u64(&buf, off);

        let file = RecordFile::<F::CellRec>::open(PageId(cell_first), cell_len);
        let sf_file = RecordFile::<Subfield>::open(PageId(sf_first), sf_len);
        let tree = PagedRTree::from_parts(t_root, t_height, t_len, t_pages);
        let inner = SubfieldIndex::open(engine, file, tree, sf_file);

        let pos_file = RecordFile::<PosRecord>::open(PageId(pos_first), pos_len);
        let cell_to_pos: Vec<u32> = pos_file
            .read_range(engine, 0..pos_len)
            .into_iter()
            .map(|r| r.0)
            .collect();

        Self::from_parts(inner, curve, cell_to_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::stats::ValueIndex;
    use cf_field::GridField;
    use cf_geom::Interval;

    fn bumpy_field(n: usize) -> GridField {
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push((x as f64 * 0.3).sin() * 20.0 + (y as f64 * 0.2).cos() * 15.0);
            }
        }
        GridField::from_values(vw, vw, values)
    }

    #[test]
    fn save_open_round_trip_in_memory() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(24);
        let built = IHilbert::build(&engine, &field);
        let catalog = built.save(&engine);

        let reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog);
        assert_eq!(reopened.num_subfields(), built.num_subfields());
        for band in [
            Interval::new(-10.0, 10.0),
            Interval::point(0.0),
            Interval::new(30.0, 40.0),
        ] {
            let a = built.query_stats(&engine, band);
            let b = reopened.query_stats(&engine, band);
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!((a.area - b.area).abs() < 1e-12);
        }
    }

    #[test]
    fn reopened_index_supports_updates() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(12);
        let catalog = IHilbert::build(&engine, &field).save(&engine);
        let mut reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog);

        // Update through the reopened handle and verify against a scan.
        let cell = 17;
        let rec = cf_field::GridCellRecord {
            vals: [500.0; 4],
            ..field.cell_record(cell)
        };
        reopened.update_cell(&engine, cell, rec);
        let stats = reopened.query_stats(&engine, Interval::new(499.0, 501.0));
        assert_eq!(stats.cells_qualifying, 1);

        // A second save/open carries the update forward.
        let catalog2 = reopened.save(&engine);
        let third: IHilbert<GridField> = IHilbert::open(&engine, catalog2);
        let stats = third.query_stats(&engine, Interval::new(499.0, 501.0));
        assert_eq!(stats.cells_qualifying, 1);
    }

    #[test]
    #[should_panic(expected = "not a contfield catalog")]
    fn rejects_garbage_page() {
        let engine = StorageEngine::in_memory();
        let page = engine.allocate_page();
        let _: IHilbert<GridField> = IHilbert::open(&engine, page);
    }

    #[test]
    fn answers_match_scan_after_reopen() {
        let engine = StorageEngine::in_memory();
        let field = bumpy_field(16);
        let catalog = IHilbert::build(&engine, &field).save(&engine);
        let scan = LinearScan::build(&engine, &field);
        let reopened: IHilbert<GridField> = IHilbert::open(&engine, catalog);
        let dom = cf_field::FieldModel::value_domain(&field);
        for t in [0.0, 0.3, 0.7] {
            let band = Interval::new(dom.denormalize(t), dom.denormalize((t + 0.2).min(1.0)));
            let a = scan.query_stats(&engine, band);
            let b = reopened.query_stats(&engine, band);
            assert_eq!(a.cells_qualifying, b.cells_qualifying);
            assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
        }
    }
}
