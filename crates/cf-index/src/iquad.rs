//! The Interval Quadtree (Kang et al., CIKM 1999) — the authors' earlier
//! method, used here as the division-strategy ablation.
//!
//! Paper §3.1.1: "the field space is recursively divided into four
//! subspaces in the manner of Quadtree until each subspace satisfies the
//! condition that interval size of the subspace must be less than the
//! given threshold. Then the final subspaces of this division procedure
//! become subfields. However, there is no justifiable way to decide the
//! optimal threshold".
//!
//! To isolate the *division strategy* from everything else, the leaf
//! subspaces feed the same subfield storage as I-Hilbert: cells are
//! written grouped by leaf (in Z-order of the recursion), and leaf
//! intervals go into the same paged 1-D R\*-tree.

use crate::sfindex::{SubfieldIndex, TreeBuild};
use crate::stats::{QueryStats, ValueIndex};
use crate::subfield::Subfield;
use cf_field::FieldModel;
use cf_geom::{Aabb, Interval, Polygon};
use cf_storage::{CfResult, StorageEngine};

/// Hard recursion cap: guards against non-termination when many cell
/// centroids coincide.
const MAX_DEPTH: u32 = 24;

/// The Interval-Quadtree value index.
pub struct IntervalQuadtree<F: FieldModel> {
    inner: SubfieldIndex<F>,
    threshold: f64,
}

impl<F: FieldModel> IntervalQuadtree<F> {
    /// Builds the index with the given interval-size threshold
    /// (absolute, in value units: a leaf subspace is not divided further
    /// once the width of its value interval is at most `threshold`).
    pub fn build(engine: &StorageEngine, field: &F, threshold: f64) -> CfResult<Self> {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        let n = field.num_cells();
        assert!(
            n <= u32::MAX as usize,
            "cell file too large for u32 subfield pointers ({n} cells)"
        );
        let intervals: Vec<Interval> = (0..n).map(|c| field.cell_interval(c)).collect();
        let centroids: Vec<[f64; 2]> = (0..n)
            .map(|c| {
                let p = field.cell_centroid(c);
                [p.x, p.y]
            })
            .collect();

        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut subfields: Vec<Subfield> = Vec::new();
        let all: Vec<usize> = (0..n).collect();
        divide(
            &all,
            field.domain(),
            0,
            threshold,
            &intervals,
            &centroids,
            &mut order,
            &mut subfields,
        );
        debug_assert_eq!(order.len(), n);

        let mut inner =
            SubfieldIndex::build(engine, field, &order, &subfields, TreeBuild::Dynamic)?;
        inner.set_metric_label("I-Quad");
        let costs: Vec<f64> = subfields
            .iter()
            .map(|sf| {
                let si: f64 = order[sf.start as usize..sf.end as usize]
                    .iter()
                    .map(|&c| intervals[c].size_with_base(1.0))
                    .sum();
                sf.interval.size_with_base(1.0) / si
            })
            .collect();
        inner.publish_health(engine.metrics(), Some(&costs));
        Ok(Self { inner, threshold })
    }

    /// The division threshold used at build time.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of leaf subfields the division produced.
    pub fn num_subfields(&self) -> usize {
        self.inner.subfields.len()
    }
}

/// Recursive quadtree division; appends leaves to `order`/`subfields`.
#[allow(clippy::too_many_arguments)]
fn divide(
    cells: &[usize],
    bbox: Aabb<2>,
    depth: u32,
    threshold: f64,
    intervals: &[Interval],
    centroids: &[[f64; 2]],
    order: &mut Vec<usize>,
    subfields: &mut Vec<Subfield>,
) {
    if cells.is_empty() {
        return;
    }
    let union = cells
        .iter()
        .map(|&c| intervals[c])
        .reduce(|a, b| a.union(b))
        .expect("non-empty cell set");
    if union.width() <= threshold || cells.len() == 1 || depth >= MAX_DEPTH {
        let start = order.len() as u32;
        order.extend_from_slice(cells);
        subfields.push(Subfield {
            start,
            end: order.len() as u32,
            interval: union,
        });
        return;
    }
    let c = bbox.center();
    // Z-order of quadrants: SW, SE, NW, NE.
    let quadrant_boxes = [
        Aabb::new(bbox.lo, c),
        Aabb::new([c[0], bbox.lo[1]], [bbox.hi[0], c[1]]),
        Aabb::new([bbox.lo[0], c[1]], [c[0], bbox.hi[1]]),
        Aabb::new(c, bbox.hi),
    ];
    let mut quadrants: [Vec<usize>; 4] = Default::default();
    for &cell in cells {
        let p = centroids[cell];
        let east = p[0] >= c[0];
        let north = p[1] >= c[1];
        let q = usize::from(east) + 2 * usize::from(north);
        quadrants[q].push(cell);
    }
    // If the division failed to separate anything (all centroids in one
    // quadrant *equal to the parent set*), force a leaf to terminate.
    if quadrants.iter().any(|q| q.len() == cells.len()) && depth > 0 {
        let start = order.len() as u32;
        order.extend_from_slice(cells);
        subfields.push(Subfield {
            start,
            end: order.len() as u32,
            interval: union,
        });
        return;
    }
    for (q, qbox) in quadrants.iter().zip(quadrant_boxes) {
        divide(
            q,
            qbox,
            depth + 1,
            threshold,
            intervals,
            centroids,
            order,
            subfields,
        );
    }
}

impl<F: FieldModel> ValueIndex for IntervalQuadtree<F> {
    fn name(&self) -> String {
        "I-Quad".into()
    }

    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        self.inner.query_with(engine, band, sink)
    }

    fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        scratch: &mut crate::stats::QueryScratch,
    ) -> CfResult<QueryStats> {
        self.inner.query_stats_scratch(engine, band, scratch)
    }

    fn index_pages(&self) -> usize {
        self.inner.tree.num_pages()
    }

    fn data_pages(&self) -> usize {
        self.inner.file.data_pages()
    }

    fn num_intervals(&self) -> usize {
        self.inner.subfields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use cf_field::GridField;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn ramp(n: usize) -> GridField {
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push((x + y) as f64);
            }
        }
        GridField::from_values(vw, vw, values)
    }

    #[test]
    fn matches_linear_scan() {
        let engine = StorageEngine::in_memory();
        let field = ramp(16);
        let scan = LinearScan::build(&engine, &field).expect("build");
        let iq = IntervalQuadtree::build(&engine, &field, 4.0).expect("build");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let lo: f64 = rng.gen_range(-2.0..34.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..6.0));
            let a = scan.query_stats(&engine, band).expect("query");
            let b = iq.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
        }
    }

    #[test]
    fn threshold_controls_leaf_count() {
        let engine = StorageEngine::in_memory();
        let field = ramp(16);
        let fine = IntervalQuadtree::build(&engine, &field, 1.0).expect("build");
        let coarse = IntervalQuadtree::build(&engine, &field, 100.0).expect("build");
        assert!(fine.num_subfields() > coarse.num_subfields());
        // Threshold larger than the whole value domain: one subfield.
        assert_eq!(coarse.num_subfields(), 1);
        assert_eq!(coarse.threshold(), 100.0);
    }

    #[test]
    fn zero_threshold_terminates() {
        // Forces maximal division; the depth/progress guards must stop
        // the recursion.
        let engine = StorageEngine::in_memory();
        let field = ramp(4);
        let iq = IntervalQuadtree::build(&engine, &field, 0.0).expect("build");
        assert!(iq.num_subfields() >= 1);
        let stats = iq
            .query_stats(&engine, Interval::new(0.0, 10.0))
            .expect("query");
        assert!(stats.cells_qualifying > 0);
    }
}
