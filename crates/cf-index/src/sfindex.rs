//! Shared machinery of subfield-based indexes (I-Hilbert and the
//! Interval-Quadtree ablation): a cell file in a chosen linear order,
//! subfields as `[start, end)` record ranges, and a paged 1-D R\*-tree
//! over the subfield intervals whose leaf payloads are the packed
//! ranges (paper Fig. 6: leaf entries store `ptr_start, ptr_end`).

use crate::stats::{QueryMetrics, QueryStats};
use crate::subfield::{build_subfields, Subfield, SubfieldConfig};
use cf_field::FieldModel;
use cf_geom::{Aabb, Interval, Polygon};
use cf_rtree::{bulk_load_str, FrozenTree, PagedRTree, RStarTree, RTreeConfig};
use cf_storage::{
    answer_digest, CellFile, CfResult, HeatKind, MetricsRegistry, RecordFile, Stopwatch,
    StorageEngine, TraceEvent,
};
use std::marker::PhantomData;
use std::sync::OnceLock;

/// How the subfield R\*-tree is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeBuild {
    /// One-by-one R\* insertion (what the paper's system does).
    #[default]
    Dynamic,
    /// Packed bulk loading (Kamel–Faloutsos) — the build-time ablation.
    Bulk,
}

/// Which representation of the interval R\*-tree serves the filtering
/// step of queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryPlane {
    /// Search the paged tree through the buffer pool — the paper's
    /// disk-resident cost model, where filter I/O counts as page reads.
    #[default]
    Paged,
    /// Search a frozen cache-resident flattening of the tree
    /// ([`cf_rtree::FrozenTree`]): identical answers and visited-node
    /// counts (`QueryStats::filter_nodes`), but the filter step touches
    /// no pages, so `QueryStats::filter_pages` reports 0.
    Frozen,
}

/// Bucket bounds of the `index_health_cost_c` histogram. `C = P/SI` is
/// 1.0 for a single-cell subfield and falls toward 0 as a subfield
/// absorbs more cells of similar values, so the deciles of `(0, 1]`
/// resolve the whole distribution.
const COST_BUCKETS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// A cell file in subfield order plus the interval tree over subfields.
pub(crate) struct SubfieldIndex<F: FieldModel> {
    pub(crate) file: CellFile<F::CellRec>,
    pub(crate) tree: PagedRTree<1>,
    /// Subfield catalog (interval + record range), kept for incremental
    /// maintenance — the system-catalog analogue of Fig. 6's metadata.
    pub(crate) subfields: Vec<Subfield>,
    /// On-disk copy of the subfield catalog (for database reopen).
    pub(crate) sf_file: CellFile<Subfield>,
    /// File position → subfield index.
    pub(crate) pos_to_subfield: Vec<u32>,
    /// Frozen query plane: when present, the filtering step searches
    /// this flattened copy of `tree` instead of faulting tree pages.
    frozen: Option<FrozenTree<1>>,
    /// `index` label value of every metric this index publishes
    /// (overridden by the owning method — `"I-Hilbert"`, `"I-Quad"` — via
    /// [`SubfieldIndex::set_metric_label`]).
    metric_label: String,
    /// Space-filling-curve name reported in EXPLAIN records (set by the
    /// owning method via [`SubfieldIndex::set_curve_label`]).
    curve_label: &'static str,
    /// Cached registry handles, wired against the first engine queried.
    qmetrics: OnceLock<QueryMetrics>,
    _field: PhantomData<fn() -> F>,
}

/// Sorts retrieved `[start, end)` record ranges and merges touching
/// neighbors into maximal runs.
///
/// Subfields adjacent on the Hilbert-ordered file hold cells of similar
/// values, so a band query typically retrieves *runs* of neighbors;
/// reading each subfield separately would fetch every straddled page
/// boundary twice. Merging first makes the estimation step's page cost
/// `ceil(run_cells / per_page) + 1` per run instead of per subfield.
pub(crate) fn coalesce_ranges(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.sort_unstable();
    let mut runs: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match runs.last_mut() {
            Some(last) if r.0 <= last.1 => last.1 = last.1.max(r.1),
            _ => runs.push(r),
        }
    }
    runs
}

impl<F: FieldModel> SubfieldIndex<F> {
    /// Writes cells in `order` and indexes `subfields` (expressed in
    /// positions of `order`).
    pub(crate) fn build(
        engine: &StorageEngine,
        field: &F,
        order: &[usize],
        subfields: &[Subfield],
        tree_build: TreeBuild,
    ) -> CfResult<Self> {
        debug_assert_eq!(order.len(), field.num_cells());
        let records: Vec<F::CellRec> = order.iter().map(|&c| field.cell_record(c)).collect();
        let file = CellFile::create(engine, records)?;
        Self::finish(engine, file, subfields, tree_build)
    }

    /// Parallel [`SubfieldIndex::build`]: record materialization fans
    /// out over work-stealing chunks and the cell file's pages are
    /// written by [`RecordFile::create_parallel`]. The page-allocation
    /// call sequence is identical to the sequential build (cell-file
    /// run, then tree pages, then subfield catalog), so the resulting
    /// engine state is byte-identical. The subfield R\*-tree itself is
    /// built sequentially — it holds one entry per *subfield*, orders of
    /// magnitude fewer than cells.
    pub(crate) fn build_par(
        engine: &StorageEngine,
        field: &F,
        order: &[usize],
        subfields: &[Subfield],
        tree_build: TreeBuild,
        threads: usize,
    ) -> CfResult<Self>
    where
        F: Sync,
    {
        debug_assert_eq!(order.len(), field.num_cells());
        let records: Vec<F::CellRec> =
            crate::par::par_map_chunks(order.len(), threads, |r, out| {
                out.extend(order[r].iter().map(|&c| field.cell_record(c)));
            });
        let file = CellFile::create_parallel(engine, &records, threads)?;
        Self::finish(engine, file, subfields, tree_build)
    }

    /// Shared tail of both builds: index the subfield intervals and
    /// persist the catalog.
    fn finish(
        engine: &StorageEngine,
        file: CellFile<F::CellRec>,
        subfields: &[Subfield],
        tree_build: TreeBuild,
    ) -> CfResult<Self> {
        let config = RTreeConfig::page_sized::<1>();
        let tree = match tree_build {
            TreeBuild::Dynamic => {
                let mut tree: RStarTree<1> = RStarTree::new(config);
                for sf in subfields {
                    tree.insert(sf.interval.into(), sf.pack());
                }
                tree
            }
            TreeBuild::Bulk => bulk_load_str(
                subfields
                    .iter()
                    .map(|sf| (sf.interval.into(), sf.pack()))
                    .collect(),
                config,
            ),
        };
        let tree = PagedRTree::persist(&tree, engine)?;
        let sf_file = CellFile::create(engine, subfields.to_vec())?;
        Ok(Self::assemble(file, tree, subfields.to_vec(), sf_file))
    }

    /// Builds an index over records already materialized by the caller
    /// (the live-ingest repacker, which reads the old base and applies
    /// its delta overlays before regrouping). The records must be in
    /// the intended file order; `subfields` is expressed in positions
    /// of that order.
    pub(crate) fn build_from_records(
        engine: &StorageEngine,
        records: Vec<F::CellRec>,
        subfields: &[Subfield],
        tree_build: TreeBuild,
    ) -> CfResult<Self> {
        let file = CellFile::create(engine, records)?;
        Self::finish(engine, file, subfields, tree_build)
    }

    /// Reattaches to an index persisted in `engine` from its catalog
    /// handles, reading the subfield metadata back from its on-disk
    /// copy.
    pub(crate) fn open(
        engine: &StorageEngine,
        file: CellFile<F::CellRec>,
        tree: PagedRTree<1>,
        sf_file: CellFile<Subfield>,
    ) -> CfResult<Self> {
        let subfields = sf_file.read_range(engine, 0..sf_file.len())?;
        Ok(Self::assemble(file, tree, subfields, sf_file))
    }

    fn assemble(
        file: CellFile<F::CellRec>,
        tree: PagedRTree<1>,
        subfields: Vec<Subfield>,
        sf_file: CellFile<Subfield>,
    ) -> Self {
        let mut pos_to_subfield = vec![0u32; file.len()];
        for (i, sf) in subfields.iter().enumerate() {
            for pos in sf.start..sf.end {
                pos_to_subfield[pos as usize] = i as u32;
            }
        }
        Self {
            file,
            tree,
            subfields,
            sf_file,
            pos_to_subfield,
            frozen: None,
            metric_label: "subfield".to_owned(),
            curve_label: "-",
            qmetrics: OnceLock::new(),
            _field: PhantomData,
        }
    }

    /// Sets the `index` label of this index's metrics. Must be called
    /// before the first query (the label is baked into the cached
    /// handles then); the owning method does so right after build/open.
    pub(crate) fn set_metric_label(&mut self, label: impl Into<String>) {
        self.metric_label = label.into();
    }

    /// Sets the curve name EXPLAIN records report for this index.
    pub(crate) fn set_curve_label(&mut self, curve: &'static str) {
        self.curve_label = curve;
    }

    /// The curve name EXPLAIN records report for this index.
    pub(crate) fn curve_label(&self) -> &'static str {
        self.curve_label
    }

    fn query_metrics(&self, registry: &MetricsRegistry) -> &QueryMetrics {
        self.qmetrics
            .get_or_init(|| QueryMetrics::wire(registry, &self.metric_label))
    }

    /// Publishes the derived index-health gauges, labeled with this
    /// index's method name:
    ///
    /// * `index_health_subfields` — subfield count;
    /// * `index_health_mean_interval_len` — mean subfield interval size
    ///   `L` (with the paper's `+1` base, the numerator of `C = P/SI`);
    /// * `index_health_mean_cells_per_subfield` — clustering quality
    ///   proxy: the better the curve clusters similar values, the more
    ///   cells each subfield absorbs before the cost rule closes it.
    ///
    /// When the per-subfield cost distribution is known (`costs`, exact
    /// only at build time, when the per-cell intervals are in hand),
    /// also sets `index_health_mean_cost_c` and fills the
    /// `index_health_cost_c` histogram. Indexes reopened from a catalog
    /// publish the gauges but leave the cost distribution empty rather
    /// than re-reading the whole cell file.
    pub(crate) fn publish_health(&self, registry: &MetricsRegistry, costs: Option<&[f64]>) {
        let labels: &[(&str, &str)] = &[("index", &self.metric_label)];
        // (Re)publishing health is where the cell-file length is
        // authoritative — fix the spatial heatmap's bucket width so
        // examined/qualifying heat buckets span exactly this file.
        registry.heat().set_cell_domain(self.file.len() as u64);
        let n = self.subfields.len();
        registry
            .gauge_with("index_health_subfields", labels)
            .set(n as f64);
        if n > 0 {
            let mean_len = self
                .subfields
                .iter()
                .map(|sf| sf.interval.size_with_base(1.0))
                .sum::<f64>()
                / n as f64;
            registry
                .gauge_with("index_health_mean_interval_len", labels)
                .set(mean_len);
            registry
                .gauge_with("index_health_mean_cells_per_subfield", labels)
                .set(self.file.len() as f64 / n as f64);
        }
        // Storage-side geometry of the cell file, the denominator of the
        // paper's page-count metric: how many cells each data page holds
        // and how much smaller the file is than its fixed-slot layout.
        registry
            .gauge_with("storage_cells_per_page", labels)
            .set(self.file.records_per_page());
        let raw_pages = self
            .file
            .len()
            .div_ceil(RecordFile::<F::CellRec>::records_per_page());
        registry
            .gauge_with("storage_compression_ratio", labels)
            .set(raw_pages as f64 / self.file.data_pages().max(1) as f64);
        if let Some(costs) = costs {
            // The mean is only meaningful over the full distribution
            // (build time); incremental updates contribute single costs
            // to the histogram without skewing the build-time mean.
            if costs.len() == n {
                registry
                    .gauge_with("index_health_mean_cost_c", labels)
                    .set(costs.iter().sum::<f64>() / n.max(1) as f64);
            }
            let hist = registry.histogram_with("index_health_cost_c", labels, &COST_BUCKETS);
            for &c in costs {
                hist.observe(c);
            }
        }
    }

    /// `(interval, data pages spanned)` of every subfield — the spans
    /// the cost-model advisor scores. Pages come from the cell file's
    /// measured page geometry (the fixed slot grid for raw pages, the
    /// page directory for compressed ones), no I/O.
    pub(crate) fn subfield_page_spans(&self) -> Vec<(Interval, f64)> {
        self.subfields
            .iter()
            .map(|sf| {
                let pages = self.file.pages_in_range(sf.start as usize..sf.end as usize);
                (sf.interval, pages as f64)
            })
            .collect()
    }

    /// `(start, end, data pages spanned)` of every subfield — the
    /// record-position spans the *spatial* cost model scores against
    /// the heatmap's position buckets. Same page geometry as
    /// [`SubfieldIndex::subfield_page_spans`], no I/O.
    pub(crate) fn subfield_record_spans(&self) -> Vec<(u32, u32, f64)> {
        self.subfields
            .iter()
            .map(|sf| {
                let pages = self.file.pages_in_range(sf.start as usize..sf.end as usize);
                (sf.start, sf.end, pages as f64)
            })
            .collect()
    }

    /// Regroups the *unchanged* cell file into fresh subfields under
    /// `config`, rebuilding the interval tree and the on-disk subfield
    /// catalog. Cell records never move, so query answers are
    /// byte-identical before and after — only the filter cost changes.
    /// Returns `false` (leaving everything untouched) when the new
    /// grouping equals the current one.
    ///
    /// The old tree and subfield-catalog pages are handed back to the
    /// engine's freelist once the replacements are fully written: later
    /// allocations reuse the holes, and a run at the end of a
    /// file-backed engine shrinks the file. (Pages the old tree gained
    /// from incremental splits after its own persist are not tracked
    /// and stay leaked until a full rebuild.) Freeing the old pages
    /// invalidates any database catalog saved *before* the repack —
    /// callers that persist the index must save again afterwards.
    /// `refine` is a post-grouping refinement pass: it receives the
    /// greedy value-model grouping plus the per-position intervals and
    /// may split subfields further (the spatial advisor cuts at
    /// heat-bucket boundaries; pass `|sfs, _| sfs` for the pure value
    /// model). The refined grouping must cover the same positions in
    /// the same order — only boundaries may move.
    pub(crate) fn repack_refined(
        &mut self,
        engine: &StorageEngine,
        config: SubfieldConfig,
        refine: impl FnOnce(Vec<Subfield>, &[Interval]) -> Vec<Subfield>,
    ) -> CfResult<bool> {
        let mut intervals: Vec<Interval> = Vec::with_capacity(self.file.len());
        self.file
            .for_each_in_range(engine, 0..self.file.len(), |_, rec| {
                intervals.push(F::record_interval(&rec));
            })?;
        let subfields = refine(build_subfields(&intervals, config), &intervals);
        if subfields == self.subfields {
            return Ok(false);
        }
        let tree_config = RTreeConfig::page_sized::<1>();
        let mut tree: RStarTree<1> = RStarTree::new(tree_config);
        for sf in &subfields {
            tree.insert(sf.interval.into(), sf.pack());
        }
        let old_tree_run = self.tree.page_run();
        let old_sf_run = (self.sf_file.first_page(), self.sf_file.num_pages());
        self.tree = PagedRTree::persist(&tree, engine)?;
        self.sf_file = CellFile::create(engine, subfields.clone())?;
        // Both replacements exist on fresh pages now; the old tree and
        // subfield catalog are dead. Return them to the freelist (a
        // failure here would leak pages, never double-allocate).
        if let Some((first, pages)) = old_tree_run {
            engine.free_run(first, pages)?;
        }
        engine.free_run(old_sf_run.0, old_sf_run.1)?;
        for (i, sf) in subfields.iter().enumerate() {
            for pos in sf.start..sf.end {
                self.pos_to_subfield[pos as usize] = i as u32;
            }
        }
        self.subfields = subfields;
        // The frozen plane is a copy of the tree — rebuild it too.
        if self.frozen.is_some() {
            self.freeze(engine)?;
        }
        // Health gauges derive from the subfield catalog; refresh them
        // with the exact new cost distribution (intervals are in hand).
        let costs: Vec<f64> = self
            .subfields
            .iter()
            .map(|sf| {
                let si: f64 = intervals[sf.start as usize..sf.end as usize]
                    .iter()
                    .map(|iv| iv.size_with_base(config.base))
                    .sum();
                (sf.interval.size_with_base(config.base) + config.query_len) / si
            })
            .collect();
        self.publish_health(engine.metrics(), Some(&costs));
        Ok(true)
    }

    /// Enters the frozen query plane: flattens the paged tree into a
    /// cache-resident [`FrozenTree`] (one pass over its pages) that the
    /// filtering step searches from then on. Incremental updates that
    /// mutate the tree re-freeze it automatically.
    pub(crate) fn freeze(&mut self, engine: &StorageEngine) -> CfResult<()> {
        self.frozen = Some(self.tree.freeze(engine)?);
        Ok(())
    }

    /// Whether the frozen query plane is active.
    pub(crate) fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Runs the filtering step on whichever plane is active, feeding
    /// every retrieved subfield's record range to `ranges`.
    pub(crate) fn filter_step(
        &self,
        engine: &StorageEngine,
        band: Interval,
        ranges: &mut Vec<(u32, u32)>,
    ) -> CfResult<cf_rtree::SearchStats> {
        let mut on_hit = |data: u64, mbr: &Aabb<1>| {
            let sf = Subfield::unpack(data, Interval::new(mbr.lo[0], mbr.hi[0]));
            ranges.push((sf.start, sf.end));
        };
        match &self.frozen {
            Some(frozen) => Ok(frozen.search(&band.into(), &mut on_hit)),
            None => self.tree.search(engine, &band.into(), &mut on_hit),
        }
    }

    /// Parallel variant of the two-step query: the filtering step runs
    /// on the calling thread, then the retrieved subfield ranges are
    /// partitioned across `threads` worker threads that each run the
    /// estimation step over their share (the storage engine is fully
    /// thread-safe, so workers fault pages concurrently).
    ///
    /// Region geometry is not collected — this is the analytics path
    /// (counts + exact area). Results are identical to
    /// [`SubfieldIndex::query_with`].
    pub(crate) fn par_query_stats(
        &self,
        engine: &StorageEngine,
        band: Interval,
        threads: usize,
    ) -> CfResult<QueryStats> {
        assert!(threads >= 1, "need at least one thread");
        let tracer = engine.metrics().tracer();
        let query_id = tracer.is_enabled().then(|| tracer.next_query_id());
        let query_clock = Stopwatch::start();
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();

        let filter_clock = Stopwatch::start();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let search = self.filter_step(engine, band, &mut ranges)?;
        stats.filter_nodes = search.nodes_visited;
        stats.intervals_retrieved = ranges.len();
        stats.filter_pages = (cf_storage::thread_io_stats() - before).logical_reads();
        let filter_ns = filter_clock.elapsed_ns();
        let refine_clock = Stopwatch::start();

        // Balance by cell count: assign maximal runs to the least-loaded
        // worker, largest first (LPT heuristic). Runs (not raw subfield
        // ranges) keep the sequential path's page cost: a run split
        // across workers would re-read its straddle pages.
        let mut by_size = coalesce_ranges(ranges);
        // Examined heat covers every cell of every run regardless of
        // which worker reads it; bump once here rather than per worker.
        let heat = engine.metrics().heat();
        for &(s, e) in &by_size {
            heat.table(HeatKind::Examined)
                .bump_range(u64::from(s), u64::from(e));
        }
        by_size.sort_by_key(|&(s, e)| std::cmp::Reverse(e - s));
        let mut shares: Vec<Vec<(u32, u32)>> = vec![Vec::new(); threads];
        let mut loads = vec![0u64; threads];
        for r in by_size {
            let k = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .expect("threads >= 1");
            loads[k] += u64::from(r.1 - r.0);
            shares[k].push(r);
        }

        let partials: Vec<CfResult<QueryStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shares
                .iter()
                .map(|share| {
                    scope.spawn(move || -> CfResult<QueryStats> {
                        // Worker I/O lands in the worker's thread tally,
                        // so snapshot it here and carry the delta back.
                        let worker_before = cf_storage::thread_io_stats();
                        let mut part = QueryStats::default();
                        let mut runs: Vec<std::ops::Range<usize>> =
                            share.iter().map(|&(s, e)| s as usize..e as usize).collect();
                        runs.sort_by_key(|r| r.start);
                        let heat = engine.metrics().heat();
                        self.file.for_each_in_ranges(engine, &runs, |pos, rec| {
                            part.cells_examined += 1;
                            if F::record_interval(&rec).intersects(band) {
                                part.cells_qualifying += 1;
                                heat.table(HeatKind::Qualifying).bump(pos as u64);
                                for region in F::record_band_region(&rec, band) {
                                    part.num_regions += 1;
                                    part.area += region.area();
                                }
                            }
                        })?;
                        part.io = cf_storage::thread_io_stats() - worker_before;
                        Ok(part)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for p in partials {
            let p = p?;
            stats.cells_examined += p.cells_examined;
            stats.cells_qualifying += p.cells_qualifying;
            stats.num_regions += p.num_regions;
            stats.area += p.area;
            stats.io = stats.io + p.io;
        }
        // Filter-step I/O happened on this thread; estimation I/O came
        // back with the worker partials. The sum is exact per query even
        // while other queries run concurrently on the same engine.
        stats.io = stats.io + (cf_storage::thread_io_stats() - before);
        let refine_ns = refine_clock.elapsed_ns();
        let query_ns = query_clock.elapsed_ns();
        self.query_metrics(engine.metrics())
            .publish(&stats, band, query_ns, filter_ns, refine_ns);
        if let Some(query_id) = query_id {
            self.trace_query(
                engine, query_id, band, &stats, query_ns, filter_ns, refine_ns,
            );
        }
        Ok(stats)
    }

    /// Rewrites the cell record at file position `pos` and incrementally
    /// maintains its subfield's interval in the paged R\*-tree.
    pub(crate) fn update_record(
        &mut self,
        engine: &StorageEngine,
        pos: usize,
        record: &F::CellRec,
    ) -> CfResult<()> {
        self.file.put(engine, pos, record)?;
        let sf_idx = self.pos_to_subfield[pos] as usize;
        let sf = self.subfields[sf_idx];
        // Recompute the subfield interval from its (updated) records,
        // accumulating SI (the denominator of `C = P/SI`) in the same
        // scan so the health metrics get the subfield's fresh cost.
        let mut new_iv: Option<Interval> = None;
        let mut si = 0.0;
        self.file
            .for_each_in_range(engine, sf.start as usize..sf.end as usize, |_, rec| {
                let iv = F::record_interval(&rec);
                si += iv.size_with_base(1.0);
                new_iv = Some(match new_iv {
                    Some(a) => a.union(iv),
                    None => iv,
                });
            })?;
        let new_iv = new_iv.expect("subfields are non-empty");
        if new_iv != sf.interval {
            let removed = self.tree.remove(engine, &sf.interval.into(), sf.pack())?;
            debug_assert!(removed, "stale subfield entry must exist in the tree");
            self.tree.insert(engine, new_iv.into(), sf.pack())?;
            self.subfields[sf_idx].interval = new_iv;
            self.sf_file.put(engine, sf_idx, &self.subfields[sf_idx])?;
            // The frozen plane is a copy of the tree — keep it current.
            if self.frozen.is_some() {
                self.freeze(engine)?;
            }
            // Gauges derive from the subfield catalog, which just
            // changed; the touched subfield's new cost joins the
            // distribution (build-time costs stay, as a history).
            let cost = new_iv.size_with_base(1.0) / si;
            self.publish_health(engine.metrics(), Some(&[cost]));
        }
        Ok(())
    }

    /// The two-step query of §3.2: filter subfields through the R\*-tree,
    /// then read each retrieved record range and estimate exact regions.
    pub(crate) fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let mut ranges = Vec::new();
        let mut runs = Vec::new();
        self.query_impl(engine, band, &mut ranges, &mut runs, sink)
    }

    /// [`SubfieldIndex::query_with`] minus region geometry, reusing the
    /// caller's scratch buffers (the batch executor's hot loop).
    pub(crate) fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        scratch: &mut crate::stats::QueryScratch,
    ) -> CfResult<QueryStats> {
        let crate::stats::QueryScratch { ranges, runs, .. } = scratch;
        self.query_impl(engine, band, ranges, runs, &mut |_| {})
    }

    fn query_impl(
        &self,
        engine: &StorageEngine,
        band: Interval,
        ranges: &mut Vec<(u32, u32)>,
        runs: &mut Vec<std::ops::Range<usize>>,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let tracer = engine.metrics().tracer();
        let query_id = tracer.is_enabled().then(|| tracer.next_query_id());
        let query_clock = Stopwatch::start();
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();

        // Step 1 (filtering): subfields whose interval intersects w.
        let filter_clock = Stopwatch::start();
        ranges.clear();
        let search = self.filter_step(engine, band, ranges)?;
        stats.filter_nodes = search.nodes_visited;
        stats.intervals_retrieved = ranges.len();
        stats.filter_pages = (cf_storage::thread_io_stats() - before).logical_reads();
        let filter_ns = filter_clock.elapsed_ns();

        // Step 2 (estimation): read the contiguous cell runs, merging
        // adjacent subfields and visiting every data page exactly once
        // (same merge rule as `coalesce_ranges`, building runs in place).
        let refine_clock = Stopwatch::start();
        ranges.sort_unstable();
        runs.clear();
        for &(s, e) in ranges.iter() {
            match runs.last_mut() {
                Some(last) if s as usize <= last.end => last.end = last.end.max(e as usize),
                _ => runs.push(s as usize..e as usize),
            }
        }
        // Spatial heat: one range bump per run covers every examined
        // cell (the run sum equals `cells_examined` exactly); qualifying
        // heat lands per cell inside the loop. No-ops under `obs-off`.
        let heat = engine.metrics().heat();
        for run in runs.iter() {
            heat.table(HeatKind::Examined)
                .bump_range(run.start as u64, run.end as u64);
        }
        self.file.for_each_in_ranges(engine, runs, |pos, rec| {
            stats.cells_examined += 1;
            if F::record_interval(&rec).intersects(band) {
                stats.cells_qualifying += 1;
                heat.table(HeatKind::Qualifying).bump(pos as u64);
                for region in F::record_band_region(&rec, band) {
                    stats.num_regions += 1;
                    stats.area += region.area();
                    sink(region);
                }
            }
        })?;
        stats.io = cf_storage::thread_io_stats() - before;
        let refine_ns = refine_clock.elapsed_ns();
        let query_ns = query_clock.elapsed_ns();

        self.query_metrics(engine.metrics())
            .publish(&stats, band, query_ns, filter_ns, refine_ns);
        if let Some(query_id) = query_id {
            self.trace_query(
                engine, query_id, band, &stats, query_ns, filter_ns, refine_ns,
            );
        }
        Ok(stats)
    }

    /// Records the query's phase breakdown into the trace ring, its
    /// [`cf_storage::ExplainRecord`] into the EXPLAIN ring, and — when
    /// it crossed the slow-query threshold — a full
    /// [`cf_storage::SlowQueryReport`] with the EXPLAIN attached. Only
    /// called when tracing is enabled, so the ordinary hot path never
    /// builds these events.
    #[allow(clippy::too_many_arguments)]
    fn trace_query(
        &self,
        engine: &StorageEngine,
        query_id: u64,
        band: Interval,
        stats: &QueryStats,
        query_ns: u64,
        filter_ns: u64,
        refine_ns: u64,
    ) {
        let tracer = engine.metrics().tracer();
        let phases = [
            TraceEvent {
                query_id,
                phase: "filter",
                pages: stats.filter_pages,
                nanos: filter_ns,
                depth: 1,
            },
            TraceEvent {
                query_id,
                phase: "refine",
                pages: stats.io.logical_reads() - stats.filter_pages,
                nanos: refine_ns,
                depth: 1,
            },
        ];
        for event in &phases {
            tracer.record(*event);
        }
        tracer.record(TraceEvent {
            query_id,
            phase: "query",
            pages: stats.io.logical_reads(),
            nanos: query_ns,
            depth: 0,
        });
        let explain = crate::explain_record(
            query_id,
            &self.metric_label,
            "probe",
            if self.is_frozen() { "frozen" } else { "paged" },
            self.curve_label,
            band,
            stats,
            query_ns,
            filter_ns,
            refine_ns,
            0,
        );
        // Traced queries also enter the flight recorder: the band, plane
        // and an answer digest are enough to replay and re-verify the
        // query later (`repro replay`).
        engine.metrics().recorder().record(
            band.lo,
            band.hi,
            if self.is_frozen() { "frozen" } else { "paged" },
            self.curve_label,
            0,
            answer_digest(
                stats.cells_examined as u64,
                stats.cells_qualifying as u64,
                stats.num_regions as u64,
                stats.area,
            ),
        );
        tracer.finish_query_explained(query_id, query_ns, &phases, Some(explain));
    }
}
