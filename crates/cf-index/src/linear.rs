//! The `LinearScan` baseline: no index, scan every cell page.
//!
//! Paper §2.2.2: "Without indexing, we should scan all cells of the
//! database, which will degrade dramatically the system performance. We
//! term this method as 'LinearScan'."

use crate::stats::{QueryStats, ValueIndex};
use cf_field::FieldModel;
use cf_geom::{Interval, Polygon};
use cf_storage::{CfResult, RecordFile, StorageEngine};
use std::marker::PhantomData;

/// The unindexed baseline: all cells stored in native order, every query
/// scans the whole cell file.
pub struct LinearScan<F: FieldModel> {
    file: RecordFile<F::CellRec>,
    _field: PhantomData<fn() -> F>,
}

impl<F: FieldModel> LinearScan<F> {
    /// Writes the field's cells (in native order) into `engine` and
    /// returns the scan-based "index".
    pub fn build(engine: &StorageEngine, field: &F) -> CfResult<Self> {
        let records: Vec<F::CellRec> = (0..field.num_cells())
            .map(|c| field.cell_record(c))
            .collect();
        Ok(Self {
            file: RecordFile::create(engine, records)?,
            _field: PhantomData,
        })
    }

    /// The underlying cell file.
    pub fn file(&self) -> &RecordFile<F::CellRec> {
        &self.file
    }
}

impl<F: FieldModel> ValueIndex for LinearScan<F> {
    fn name(&self) -> String {
        "LinearScan".into()
    }

    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();
        self.file
            .for_each_in_range(engine, 0..self.file.len(), |_, rec| {
                stats.cells_examined += 1;
                if F::record_interval(&rec).intersects(band) {
                    stats.cells_qualifying += 1;
                    for region in F::record_band_region(&rec, band) {
                        stats.num_regions += 1;
                        stats.area += region.area();
                        sink(region);
                    }
                }
            })?;
        stats.io = cf_storage::thread_io_stats() - before;
        Ok(stats)
    }

    fn index_pages(&self) -> usize {
        0
    }

    fn data_pages(&self) -> usize {
        self.file.num_pages()
    }

    fn num_intervals(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_field::GridField;

    fn small_field() -> GridField {
        // 5x5 vertices: w = x + y (monotonic ramp, values 0..8).
        let mut values = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                values.push((x + y) as f64);
            }
        }
        GridField::from_values(5, 5, values)
    }

    #[test]
    fn scan_examines_every_cell() {
        let engine = StorageEngine::in_memory();
        let field = small_field();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let stats = scan
            .query_stats(&engine, Interval::new(3.0, 4.0))
            .expect("query");
        assert_eq!(stats.cells_examined, 16);
        assert!(stats.cells_qualifying > 0);
        assert!(stats.cells_qualifying < 16);
        // Every data page is read.
        assert_eq!(stats.io.logical_reads() as usize, scan.data_pages());
    }

    #[test]
    fn full_band_covers_domain_area() {
        let engine = StorageEngine::in_memory();
        let field = small_field();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let stats = scan
            .query_stats(&engine, Interval::new(-1.0, 9.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 16);
        assert!((stats.area - 16.0).abs() < 1e-9, "area {}", stats.area);
    }

    #[test]
    fn empty_band_finds_nothing() {
        let engine = StorageEngine::in_memory();
        let field = small_field();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let stats = scan
            .query_stats(&engine, Interval::new(100.0, 200.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 0);
        assert_eq!(stats.area, 0.0);
        // Still scans everything — that is the point of the baseline.
        assert_eq!(stats.cells_examined, 16);
    }
}
