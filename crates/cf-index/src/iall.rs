//! The `I-All` baseline: every individual cell interval in the R\*-tree.
//!
//! Paper §3: "One straightforward way is therefore to index all these
//! intervals associated with the cells … However storing all these
//! individual intervals in an R\*-tree has the problems as follows: the
//! R\*-tree will become tall and slow due to a large number of intervals
//! … the search speed will also suffer because of the overlapping of so
//! many similar intervals."

use crate::stats::{QueryMetrics, QueryStats, ValueIndex};
use cf_field::FieldModel;
use cf_geom::{Interval, Polygon};
use cf_rtree::{FrozenTree, PagedRTree, RStarTree, RTreeConfig};
use cf_storage::{CfError, CfResult, RecordFile, Stopwatch, StorageEngine, TraceEvent};
use std::marker::PhantomData;
use std::sync::OnceLock;

/// One R\*-tree entry per cell: `interval → cell index`.
pub struct IAll<F: FieldModel> {
    file: RecordFile<F::CellRec>,
    tree: PagedRTree<1>,
    /// Frozen query plane (see [`crate::QueryPlane`]): when present, the
    /// filtering step searches this flattened copy of `tree`.
    frozen: Option<FrozenTree<1>>,
    /// `index_*` registry handles, wired at first query.
    qmetrics: OnceLock<QueryMetrics>,
    _field: PhantomData<fn() -> F>,
}

impl<F: FieldModel> IAll<F> {
    /// Builds the index: cells in native order plus a page-fanout 1-D
    /// R\*-tree with one entry per cell, built by dynamic R\* insertion
    /// (as the paper's implementation would).
    pub fn build(engine: &StorageEngine, field: &F) -> CfResult<Self> {
        let n = field.num_cells();
        let records: Vec<F::CellRec> = (0..n).map(|c| field.cell_record(c)).collect();
        let file = RecordFile::create(engine, records)?;

        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::page_sized::<1>());
        for cell in 0..n {
            tree.insert(field.cell_interval(cell).into(), cell as u64);
        }
        let tree = PagedRTree::persist(&tree, engine)?;
        Ok(Self {
            file,
            tree,
            frozen: None,
            qmetrics: OnceLock::new(),
            _field: PhantomData,
        })
    }

    /// Enters the frozen query plane: the filtering step searches a
    /// cache-resident flattening of the interval tree from now on —
    /// identical answers and `filter_nodes`, zero filter-step page reads.
    pub fn freeze(&mut self, engine: &StorageEngine) -> CfResult<()> {
        self.frozen = Some(self.tree.freeze(engine)?);
        Ok(())
    }

    /// Incremental maintenance: rewrites `cell`'s record in place and,
    /// if its value interval changed, replaces the cell's entry in the
    /// interval R\*-tree (the frozen plane, when active, is re-frozen).
    ///
    /// # Errors
    ///
    /// Returns [`CfError::InvalidCell`] when `cell` is outside the
    /// indexed range — cell ids are user input and must not panic.
    pub fn update_cell(
        &mut self,
        engine: &StorageEngine,
        cell: usize,
        record: F::CellRec,
    ) -> CfResult<()> {
        if cell >= self.file.len() {
            return Err(CfError::InvalidCell {
                cell,
                cells: self.file.len(),
            });
        }
        let old = self.file.get(engine, cell)?;
        let old_iv = F::record_interval(&old);
        let new_iv = F::record_interval(&record);
        self.file.put(engine, cell, &record)?;
        if new_iv != old_iv {
            let removed = self.tree.remove(engine, &old_iv.into(), cell as u64)?;
            if !removed {
                return Err(CfError::corrupt(
                    None,
                    format!("cell {cell}'s interval entry is missing from the I-All tree"),
                ));
            }
            self.tree.insert(engine, new_iv.into(), cell as u64)?;
            if self.frozen.is_some() {
                self.freeze(engine)?;
            }
        }
        Ok(())
    }

    fn query_impl(
        &self,
        engine: &StorageEngine,
        band: Interval,
        candidates: &mut Vec<u64>,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let tracer = engine.metrics().tracer();
        let query_id = tracer.is_enabled().then(|| tracer.next_query_id());
        let query_clock = Stopwatch::start();
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();

        // Filtering step: every intersecting cell interval.
        let filter_clock = Stopwatch::start();
        candidates.clear();
        let mut on_hit = |cell: u64, _mbr: &cf_geom::Aabb<1>| candidates.push(cell);
        let search = match &self.frozen {
            Some(frozen) => frozen.search(&band.into(), &mut on_hit),
            None => self.tree.search(engine, &band.into(), &mut on_hit)?,
        };
        stats.filter_nodes = search.nodes_visited;
        stats.intervals_retrieved = candidates.len();
        stats.filter_pages = (cf_storage::thread_io_stats() - before).logical_reads();
        let filter_ns = filter_clock.elapsed_ns();
        let refine_clock = Stopwatch::start();

        // Estimation step: read the candidate cells (sorted for page
        // locality) and compute exact regions.
        candidates.sort_unstable();
        for &cell in candidates.iter() {
            let rec = self.file.get(engine, cell as usize)?;
            stats.cells_examined += 1;
            debug_assert!(F::record_interval(&rec).intersects(band));
            stats.cells_qualifying += 1;
            for region in F::record_band_region(&rec, band) {
                stats.num_regions += 1;
                stats.area += region.area();
                sink(region);
            }
        }
        stats.io = cf_storage::thread_io_stats() - before;
        let refine_ns = refine_clock.elapsed_ns();
        let query_ns = query_clock.elapsed_ns();
        self.qmetrics
            .get_or_init(|| QueryMetrics::wire(engine.metrics(), "I-All"))
            .publish(&stats, band, query_ns, filter_ns, refine_ns);
        if let Some(query_id) = query_id {
            let phases = [
                TraceEvent {
                    query_id,
                    phase: "filter",
                    pages: stats.filter_pages,
                    nanos: filter_ns,
                    depth: 1,
                },
                TraceEvent {
                    query_id,
                    phase: "refine",
                    pages: stats.io.logical_reads() - stats.filter_pages,
                    nanos: refine_ns,
                    depth: 1,
                },
            ];
            for event in &phases {
                tracer.record(*event);
            }
            tracer.record(TraceEvent {
                query_id,
                phase: "query",
                pages: stats.io.logical_reads(),
                nanos: query_ns,
                depth: 0,
            });
            tracer.finish_query(query_id, query_ns, &phases);
        }
        Ok(stats)
    }
}

impl<F: FieldModel> ValueIndex for IAll<F> {
    fn name(&self) -> String {
        "I-All".into()
    }

    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let mut candidates = Vec::new();
        self.query_impl(engine, band, &mut candidates, sink)
    }

    fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        scratch: &mut crate::stats::QueryScratch,
    ) -> CfResult<QueryStats> {
        self.query_impl(engine, band, &mut scratch.candidates, &mut |_| {})
    }

    fn index_pages(&self) -> usize {
        self.tree.num_pages()
    }

    fn data_pages(&self) -> usize {
        self.file.num_pages()
    }

    fn num_intervals(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use cf_field::GridField;

    fn ramp_field(n: usize) -> GridField {
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push((x + y) as f64);
            }
        }
        GridField::from_values(vw, vw, values)
    }

    #[test]
    fn matches_linear_scan_answers() {
        let engine = StorageEngine::in_memory();
        let field = ramp_field(12);
        let scan = LinearScan::build(&engine, &field).expect("build");
        let iall = IAll::build(&engine, &field).expect("build");
        assert_eq!(iall.num_intervals(), field.num_cells());

        for band in [
            Interval::new(3.0, 5.0),
            Interval::point(7.0),
            Interval::new(-10.0, 100.0),
            Interval::new(23.5, 23.6),
            Interval::new(50.0, 60.0), // out of range
        ] {
            let a = scan.query_stats(&engine, band).expect("query");
            let b = iall.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!((a.area - b.area).abs() < 1e-9, "band {band}");
        }
    }

    #[test]
    fn frozen_plane_matches_paged_plane() {
        use crate::stats::ValueIndex;
        let engine = StorageEngine::in_memory();
        let field = ramp_field(12);
        let paged = IAll::build(&engine, &field).expect("build");
        let mut frozen = IAll::build(&engine, &field).expect("build");
        frozen.freeze(&engine).expect("freeze");
        for band in [
            Interval::new(3.0, 5.0),
            Interval::point(7.0),
            Interval::new(-10.0, 100.0),
            Interval::new(50.0, 60.0),
        ] {
            let a = paged.query_stats(&engine, band).expect("query");
            let b = frozen.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert_eq!(a.filter_nodes, b.filter_nodes, "band {band}");
            assert_eq!(a.intervals_retrieved, b.intervals_retrieved);
            assert_eq!(b.filter_pages, 0, "band {band}");
            assert!((a.area - b.area).abs() < 1e-9, "band {band}");
        }
    }

    #[test]
    fn update_cell_maintains_tree_and_rejects_bad_ids() {
        use crate::stats::ValueIndex;
        let engine = StorageEngine::in_memory();
        let field = ramp_field(8);
        let mut iall = IAll::build(&engine, &field).expect("build");
        iall.freeze(&engine).expect("freeze");

        // A typed error, not a panic, on an out-of-range cell id.
        let err = iall
            .update_cell(&engine, field.num_cells() + 3, field.cell_record(0))
            .expect_err("out-of-range cell id");
        assert!(err.is_invalid_cell(), "{err}");

        // A real update moves the cell into a distant band.
        let cell = 11;
        let rec = cf_field::GridCellRecord {
            vals: [777.0; 4],
            ..field.cell_record(cell)
        };
        iall.update_cell(&engine, cell, rec).expect("update");
        let stats = iall
            .query_stats(&engine, Interval::new(776.0, 778.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 1);
        // remove + insert, not a second insert: still one entry per cell.
        assert_eq!(iall.num_intervals(), field.num_cells());
        // The re-frozen plane agrees with a paged-plane index that
        // applied the same update.
        let mut paged = IAll::build(&engine, &field).expect("build");
        let rec = cf_field::GridCellRecord {
            vals: [777.0; 4],
            ..field.cell_record(cell)
        };
        paged.update_cell(&engine, cell, rec).expect("update");
        for band in [
            Interval::new(5.0, 9.0),
            Interval::new(776.0, 778.0),
            Interval::new(-10.0, 1000.0),
        ] {
            let a = paged.query_stats(&engine, band).expect("query");
            let b = iall.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert_eq!(a.area.to_bits(), b.area.to_bits(), "band {band}");
        }
    }

    #[test]
    fn filtering_visits_index_nodes() {
        let engine = StorageEngine::in_memory();
        let field = ramp_field(12);
        let iall = IAll::build(&engine, &field).expect("build");
        let stats = iall
            .query_stats(&engine, Interval::new(3.0, 4.0))
            .expect("query");
        assert!(stats.filter_nodes >= 1);
        assert!(iall.index_pages() >= 1);
        // Only qualifying cells are examined (unlike LinearScan).
        assert_eq!(stats.cells_examined, stats.cells_qualifying);
        assert!(stats.cells_examined < field.num_cells());
    }
}
