//! Selectivity estimation and adaptive query planning.
//!
//! The paper's evaluation shows the core trade-off: index probes win on
//! selective queries, while for wide bands ("the small H leads to the
//! high query selectivity") even I-All can fall behind a plain scan.
//! A database system resolves this with an optimizer: estimate the
//! query's selectivity from a value-distribution statistic and pick the
//! cheaper plan. This module provides
//!
//! * [`SelectivityEstimator`] — an equi-width histogram over cell value
//!   intervals (the classic 1-D "stabbing count" statistic): O(buckets)
//!   memory, O(1) per estimate;
//! * [`AdaptiveIndex`] — wraps [`IHilbert`] and routes each query to an
//!   index probe or a full scan *of the same Hilbert-ordered cell file*
//!   based on estimated cost, so no second copy of the data is needed.

use crate::ihilbert::IHilbert;
use crate::stats::{QueryMetrics, QueryStats, ValueIndex};
use cf_field::FieldModel;
use cf_geom::{Interval, Polygon};
use cf_storage::{CfResult, Counter, Stopwatch, StorageEngine, TraceEvent};
use std::sync::OnceLock;

/// Equi-width histogram estimator for interval-intersection queries.
///
/// For a query band `[a, b]`, the number of cell intervals intersecting
/// it is `n − (intervals entirely below a) − (intervals entirely above
/// b)`; both terms come from cumulative bucket counts of interval
/// endpoints.
#[derive(Debug, Clone)]
pub struct SelectivityEstimator {
    domain: Interval,
    /// `below[k]` = number of intervals with `hi` strictly inside the
    /// first `k` buckets (entirely below bucket boundary `k`).
    below: Vec<usize>,
    /// `above[k]` = number of intervals with `lo` strictly above bucket
    /// boundary `k`.
    above: Vec<usize>,
    n: usize,
}

impl SelectivityEstimator {
    /// Builds the histogram from cell intervals with `buckets` bins.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn build(intervals: impl Iterator<Item = Interval>, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let items: Vec<Interval> = intervals.collect();
        let n = items.len();
        let domain = items
            .iter()
            .copied()
            .reduce(|a, b| a.union(b))
            .unwrap_or(Interval::point(0.0));

        // Bucket boundary k is at domain value `denormalize(k / buckets)`,
        // k in 0..=buckets.
        let mut hi_in_bucket = vec![0usize; buckets + 1];
        let mut lo_in_bucket = vec![0usize; buckets + 1];
        let bucket_of = |v: f64| -> usize {
            ((domain.normalize(v) * buckets as f64) as usize).min(buckets - 1)
        };
        for iv in &items {
            hi_in_bucket[bucket_of(iv.hi)] += 1;
            lo_in_bucket[bucket_of(iv.lo)] += 1;
        }
        // below[k] = intervals whose hi falls in buckets 0..k-1 — they
        // end before boundary k (conservatively: an interval whose hi is
        // inside bucket k-1 may still cross boundary k-1.. we count it
        // below boundary k, which is exact at bucket granularity).
        let mut below = vec![0usize; buckets + 2];
        let mut above = vec![0usize; buckets + 2];
        for k in 1..=buckets + 1 {
            below[k] = below[k - 1] + hi_in_bucket.get(k - 1).copied().unwrap_or(0);
        }
        for k in (0..=buckets).rev() {
            above[k] = above[k + 1] + lo_in_bucket.get(k).copied().unwrap_or(0);
        }
        Self {
            domain,
            below,
            above,
            n,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.below.len() - 2
    }

    /// Estimated number of cell intervals intersecting `band`.
    ///
    /// The estimate is exact up to bucket granularity and errs on the
    /// *high* side (never underestimates by more than two buckets' worth
    /// of endpoints).
    pub fn estimate_candidates(&self, band: Interval) -> usize {
        if self.n == 0 || band.hi < self.domain.lo || band.lo > self.domain.hi {
            return 0;
        }
        let buckets = self.buckets();
        // Conservative: round the band outward to bucket boundaries.
        let lo_bucket =
            ((self.domain.normalize(band.lo) * buckets as f64).floor() as usize).min(buckets);
        let hi_bucket =
            ((self.domain.normalize(band.hi) * buckets as f64).ceil() as usize).min(buckets);
        let entirely_below = self.below[lo_bucket];
        let entirely_above = self.above[hi_bucket];
        self.n.saturating_sub(entirely_below + entirely_above)
    }

    /// Estimated selectivity in `[0, 1]`.
    pub fn estimate_selectivity(&self, band: Interval) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.estimate_candidates(band) as f64 / self.n as f64
        }
    }
}

/// The plan chosen for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Probe the subfield R\*-tree, then read retrieved runs.
    IndexProbe,
    /// Read the whole cell file sequentially (wide queries).
    FullScan,
}

/// Registry handles for the optimizer's own metrics: one
/// `planner_plans_total` series per plan, plus `index_*` series for the
/// scan fallback (the probe path publishes under the wrapped index's own
/// label).
#[derive(Debug)]
struct PlannerMetrics {
    probe_plans: Counter,
    scan_plans: Counter,
    scan_query: QueryMetrics,
}

/// [`IHilbert`] plus an optimizer that falls back to scanning the (same)
/// cell file when the estimated selectivity makes a probe pointless.
pub struct AdaptiveIndex<F: FieldModel> {
    index: IHilbert<F>,
    estimator: SelectivityEstimator,
    /// Selectivity above which a scan is chosen. Retrieved subfields
    /// drag in co-located cells and re-read straddled pages, so the
    /// break-even sits well below 1.0; 0.5 is a robust default.
    scan_threshold: f64,
    /// Wired at first query (the registry arrives with the engine).
    pmetrics: OnceLock<PlannerMetrics>,
}

impl<F: FieldModel> AdaptiveIndex<F> {
    /// Builds the index and its statistics (64-bucket histogram).
    pub fn build(engine: &StorageEngine, field: &F) -> CfResult<Self>
    where
        F: Sync,
    {
        let index = IHilbert::build(engine, field)?;
        let estimator =
            SelectivityEstimator::build((0..field.num_cells()).map(|c| field.cell_interval(c)), 64);
        Ok(Self {
            index,
            estimator,
            scan_threshold: 0.35,
            pmetrics: OnceLock::new(),
        })
    }

    /// Overrides the scan-fallback threshold (fraction of cells).
    pub fn with_scan_threshold(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        self.scan_threshold = threshold;
        self
    }

    /// The estimator (for inspection / testing).
    pub fn estimator(&self) -> &SelectivityEstimator {
        &self.estimator
    }

    /// The plan the optimizer would choose for `band`.
    pub fn plan(&self, band: Interval) -> Plan {
        if self.estimator.estimate_selectivity(band) >= self.scan_threshold {
            Plan::FullScan
        } else {
            Plan::IndexProbe
        }
    }
}

impl<F: FieldModel> ValueIndex for AdaptiveIndex<F> {
    fn name(&self) -> String {
        "I-Hilbert/adaptive".into()
    }

    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let pm = self.pmetrics.get_or_init(|| {
            let registry = engine.metrics();
            PlannerMetrics {
                probe_plans: registry
                    .counter_with("planner_plans_total", &[("plan", "index_probe")]),
                scan_plans: registry.counter_with("planner_plans_total", &[("plan", "full_scan")]),
                scan_query: QueryMetrics::wire(registry, "adaptive-scan"),
            }
        });
        match self.plan(band) {
            Plan::IndexProbe => {
                pm.probe_plans.inc();
                self.index.query_with(engine, band, sink)
            }
            Plan::FullScan => {
                pm.scan_plans.inc();
                let tracer = engine.metrics().tracer();
                let query_id = tracer.is_enabled().then(|| tracer.next_query_id());
                let query_clock = Stopwatch::start();
                // Sequential scan of the Hilbert-ordered cell file.
                let before = cf_storage::thread_io_stats();
                let mut stats = QueryStats::default();
                let inner = self.index.inner();
                inner
                    .file
                    .for_each_in_range(engine, 0..inner.file.len(), |_, rec| {
                        stats.cells_examined += 1;
                        if F::record_interval(&rec).intersects(band) {
                            stats.cells_qualifying += 1;
                            for region in F::record_band_region(&rec, band) {
                                stats.num_regions += 1;
                                stats.area += region.area();
                                sink(region);
                            }
                        }
                    })?;
                stats.io = cf_storage::thread_io_stats() - before;
                let query_ns = query_clock.elapsed_ns();
                // The scan has no filter step: the whole query is one
                // refinement pass over the cell file.
                pm.scan_query.publish(&stats, band, query_ns, 0, query_ns);
                if let Some(query_id) = query_id {
                    let phases = [TraceEvent {
                        query_id,
                        phase: "scan",
                        pages: stats.io.logical_reads(),
                        nanos: query_ns,
                        depth: 1,
                    }];
                    for event in &phases {
                        tracer.record(*event);
                    }
                    tracer.record(TraceEvent {
                        query_id,
                        phase: "query",
                        pages: stats.io.logical_reads(),
                        nanos: query_ns,
                        depth: 0,
                    });
                    let explain = crate::explain_record(
                        query_id,
                        "adaptive-scan",
                        "scan",
                        "cells",
                        inner.curve_label(),
                        band,
                        &stats,
                        query_ns,
                        0,
                        query_ns,
                        0,
                    );
                    tracer.finish_query_explained(query_id, query_ns, &phases, Some(explain));
                }
                Ok(stats)
            }
        }
    }

    fn index_pages(&self) -> usize {
        self.index.index_pages()
    }

    fn data_pages(&self) -> usize {
        self.index.data_pages()
    }

    fn num_intervals(&self) -> usize {
        self.index.num_intervals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use cf_field::GridField;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn est_domain_width(intervals: &[Interval]) -> f64 {
        intervals
            .iter()
            .copied()
            .reduce(|a, b| a.union(b))
            .expect("non-empty")
            .width()
    }

    fn random_field(n: usize, seed: u64) -> GridField {
        let mut rng = StdRng::seed_from_u64(seed);
        let vw = n + 1;
        let values: Vec<f64> = (0..vw * vw).map(|_| rng.gen_range(0.0..100.0)).collect();
        GridField::from_values(vw, vw, values)
    }

    #[test]
    fn estimator_is_conservative_and_tight() {
        let field = random_field(24, 3);
        let intervals: Vec<Interval> = (0..cf_field::FieldModel::num_cells(&field))
            .map(|c| field.cell_interval(c))
            .collect();
        let est = SelectivityEstimator::build(intervals.iter().copied(), 64);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let lo: f64 = rng.gen_range(-10.0..110.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..40.0));
            let truth = intervals.iter().filter(|iv| iv.intersects(band)).count();
            let guess = est.estimate_candidates(band);
            assert!(
                guess >= truth,
                "underestimate: {guess} < {truth} for {band}"
            );
            // The only error source is endpoint mass inside the two
            // boundary buckets; compute that slack exactly.
            let bw = est_domain_width(&intervals) / est.buckets() as f64;
            let slack = intervals
                .iter()
                .filter(|iv| iv.hi >= band.lo - bw && iv.hi <= band.lo + bw)
                .count()
                + intervals
                    .iter()
                    .filter(|iv| iv.lo >= band.hi - bw && iv.lo <= band.hi + bw)
                    .count();
            assert!(
                guess <= truth + slack + 2,
                "wild overestimate: {guess} vs {truth} (slack {slack}) for {band}"
            );
        }
    }

    #[test]
    fn estimator_edge_cases() {
        let est = SelectivityEstimator::build(std::iter::empty(), 8);
        assert_eq!(est.estimate_candidates(Interval::new(0.0, 1.0)), 0);

        let est = SelectivityEstimator::build(vec![Interval::new(0.0, 10.0)].into_iter(), 8);
        assert_eq!(est.estimate_candidates(Interval::new(2.0, 3.0)), 1);
        assert_eq!(est.estimate_candidates(Interval::new(100.0, 101.0)), 0);
        assert_eq!(est.estimate_candidates(Interval::new(-10.0, -5.0)), 0);
        assert!((est.estimate_selectivity(Interval::new(0.0, 10.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planner_routes_by_selectivity() {
        let field = random_field(24, 7);
        let engine = StorageEngine::in_memory();
        let adaptive = AdaptiveIndex::build(&engine, &field).expect("build");
        let dom = cf_field::FieldModel::value_domain(&field);
        // Whole domain: must scan. Random-value cells have wide
        // intervals, so even a narrow band stabs many cells; an
        // off-domain band must probe.
        assert_eq!(adaptive.plan(dom), Plan::FullScan);
        assert_eq!(
            adaptive.plan(Interval::new(dom.hi + 1.0, dom.hi + 2.0)),
            Plan::IndexProbe
        );
    }

    #[test]
    fn both_plans_return_identical_answers() {
        let field = random_field(16, 11);
        let engine = StorageEngine::in_memory();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let adaptive = AdaptiveIndex::build(&engine, &field).expect("build");
        let dom = cf_field::FieldModel::value_domain(&field);
        let mut rng = StdRng::seed_from_u64(13);
        let mut bands: Vec<Interval> = (0..40)
            .map(|_| {
                let t: f64 = rng.gen();
                Interval::new(
                    dom.denormalize(t * 0.9),
                    dom.denormalize((t * 0.9 + rng.gen::<f64>() * 0.5).min(1.0)),
                )
            })
            .collect();
        // Guarantee both plans are exercised: the full domain forces a
        // scan, a sliver at the very top forces a probe.
        bands.push(dom);
        bands.push(Interval::new(dom.hi - 1e-9, dom.hi));
        let mut saw_scan = false;
        let mut saw_probe = false;
        for band in bands {
            match adaptive.plan(band) {
                Plan::FullScan => saw_scan = true,
                Plan::IndexProbe => saw_probe = true,
            }
            let a = scan.query_stats(&engine, band).expect("query");
            let b = adaptive.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
        }
        assert!(saw_scan && saw_probe, "test should exercise both plans");
    }

    #[test]
    fn plan_selection_at_exact_crossover_is_deterministic() {
        // A band whose estimated selectivity equals the threshold
        // exactly must still pick a plan (the planner uses `>=`, so the
        // tie goes to FullScan) — no panic, no unstable flip-flop.
        let field = random_field(16, 19);
        let engine = StorageEngine::in_memory();
        let adaptive = AdaptiveIndex::build(&engine, &field).expect("build");
        let dom = cf_field::FieldModel::value_domain(&field);
        let mut rng = StdRng::seed_from_u64(29);
        let mut pinned = 0;
        for _ in 0..200 {
            let t: f64 = rng.gen();
            let band = Interval::new(
                dom.denormalize(t * 0.9),
                dom.denormalize((t * 0.9 + rng.gen::<f64>() * 0.4).min(1.0)),
            );
            let s = adaptive.estimator().estimate_selectivity(band);
            // Pin the threshold to this band's own selectivity: the band
            // now sits exactly on the crossover.
            let at_crossover = AdaptiveIndex::build(&engine, &field)
                .expect("build")
                .with_scan_threshold(s.clamp(0.0, 1.0));
            assert_eq!(
                at_crossover.plan(band),
                Plan::FullScan,
                "selectivity == threshold must choose the scan (>= rule), band {band}"
            );
            pinned += 1;
        }
        assert_eq!(pinned, 200);
    }

    #[test]
    fn answers_identical_on_either_side_of_crossover() {
        // Force each plan in turn for the same band: threshold just
        // above the band's selectivity routes to the probe, just below
        // (or equal) routes to the scan. Answers must match exactly.
        let field = random_field(16, 23);
        let engine = StorageEngine::in_memory();
        let base = AdaptiveIndex::build(&engine, &field).expect("build");
        let dom = cf_field::FieldModel::value_domain(&field);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let t: f64 = rng.gen();
            let band = Interval::new(
                dom.denormalize(t * 0.8),
                dom.denormalize((t * 0.8 + 0.15).min(1.0)),
            );
            let s = base.estimator().estimate_selectivity(band);
            let as_probe = AdaptiveIndex::build(&engine, &field)
                .expect("build")
                .with_scan_threshold((s + 1e-9).min(1.0));
            let as_scan = AdaptiveIndex::build(&engine, &field)
                .expect("build")
                .with_scan_threshold(s.clamp(0.0, 1.0));
            if s + 1e-9 <= 1.0 {
                assert_eq!(as_probe.plan(band), Plan::IndexProbe, "band {band}");
            }
            assert_eq!(as_scan.plan(band), Plan::FullScan, "band {band}");
            let a = as_probe.query_stats(&engine, band).expect("query");
            let b = as_scan.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert_eq!(a.num_regions, b.num_regions, "band {band}");
            assert!(
                (a.area - b.area).abs() < 1e-9 * a.area.max(1.0),
                "band {band}: probe area {} vs scan area {}",
                a.area,
                b.area
            );
        }
    }

    #[test]
    fn adaptive_never_much_worse_than_best_single_plan() {
        // On a smooth field, for every band the adaptive I/O must be
        // within a constant factor of min(scan, probe).
        let vw = 33;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push(((x * x) as f64 * 0.1 + y as f64).sqrt());
            }
        }
        let field = GridField::from_values(vw, vw, values);
        let engine = StorageEngine::in_memory();
        let scan = LinearScan::build(&engine, &field).expect("build");
        let probe = IHilbert::build(&engine, &field).expect("build");
        let adaptive = AdaptiveIndex::build(&engine, &field).expect("build");
        let dom = cf_field::FieldModel::value_domain(&field);
        for t in [0.0, 0.2, 0.5, 0.8] {
            let band = Interval::new(dom.denormalize(t), dom.denormalize((t + 0.3).min(1.0)));
            engine.clear_cache();
            let s = scan
                .query_stats(&engine, band)
                .expect("query")
                .io
                .logical_reads();
            engine.clear_cache();
            let p = probe
                .query_stats(&engine, band)
                .expect("query")
                .io
                .logical_reads();
            engine.clear_cache();
            let a = adaptive
                .query_stats(&engine, band)
                .expect("query")
                .io
                .logical_reads();
            // The tiny 16-page test field makes fixed index overheads
            // loom large; the bound is correspondingly loose. The
            // figure-scale behaviour is covered by the benches.
            let best = s.min(p);
            assert!(
                a <= best * 4 + 8,
                "band {band}: adaptive {a} vs best {best} (scan {s}, probe {p})"
            );
        }
    }
}
