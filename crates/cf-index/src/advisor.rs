//! The workload-aware cost-model advisor: the first telemetry →
//! planner feedback path.
//!
//! The paper's subfield grouping minimizes `C = P / SI` with an
//! *assumed* access probability `P = L + 0.5` on a normalized domain —
//! i.e. it bakes in an average query-interval length of half the
//! domain. Kamel & Faloutsos' packing model says the right `P` depends
//! on the actual query distribution: a 1-D interval of length `L` is
//! hit by a uniformly placed query of length `q` with probability
//! `(L + q) / (W + q)` over a domain of width `W`.
//!
//! cf-obs measures exactly the missing quantity: every index publishes
//! the raw band length of each Q2 query into the
//! `index_query_band_len` histogram, whose `sum / count` is the exact
//! empirical mean `E[|q|]` regardless of bucket bounds. The advisor
//!
//! 1. reads `E[|q|]` off the registry ([`WorkloadProfile`]),
//! 2. re-scores every subfield under the empirical model and reports
//!    predicted data-page cost per subfield decile, next to the static
//!    model's prediction and the observed per-query page counters
//!    ([`CostModelReport`]),
//! 3. feeds `query_len = E[|q|]` back into the greedy grouping via
//!    [`IHilbert::repack_with_observed_workload`](crate::IHilbert::repack_with_observed_workload),
//!    which regroups the *unchanged* cell file under the empirical cost
//!    — answers stay byte-identical, only the subfield boundaries (and
//!    with them the filter cost) move.
//!
//! Under `obs-off` the histogram never observes anything, the profile
//! reports zero queries, and the advisor degrades to an explicit no-op
//! (reports carry the static model only; repack declines to run).

use crate::subfield::Subfield;
use cf_geom::Interval;
use cf_storage::{HeatKind, MetricsRegistry, HEAT_BUCKETS};
use std::fmt;

/// The observed Q2 workload of one index, read off the registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Queries observed by the `index_query_band_len` histogram. Zero
    /// when no query ran — or under `obs-off`, where observation is
    /// compiled out.
    pub queries: u64,
    /// Empirical mean query-interval length `E[|q|]` (0 when
    /// `queries == 0`).
    pub mean_query_len: f64,
}

impl WorkloadProfile {
    /// Reads the profile of the index labeled `index` (its method name,
    /// e.g. `"I-Hilbert"`) from `registry`.
    pub fn from_registry(registry: &MetricsRegistry, index: &str) -> Self {
        match registry.histogram_stats("index_query_band_len", &[("index", index)]) {
            Some((queries, sum)) if queries > 0 => Self {
                queries,
                mean_query_len: sum / queries as f64,
            },
            _ => Self {
                queries: 0,
                mean_query_len: 0.0,
            },
        }
    }

    /// Whether enough workload was observed to ground the empirical
    /// model.
    pub fn is_informed(&self) -> bool {
        self.queries > 0
    }
}

/// The observed *spatial* distribution of qualifying cells, read off
/// the registry's heatmap ([`HeatKind::Qualifying`] table).
///
/// The band-length histogram behind [`WorkloadProfile`] captures how
/// *long* queries are but is blind to *where* on the Hilbert-ordered
/// cell file they land. The heatmap captures exactly that: per-bucket
/// qualifying-cell counts over fixed-width position buckets. The
/// advisor turns them into per-subfield access probabilities — a
/// subfield is as hot as the hottest bucket it overlaps — and refines
/// the value-model grouping with splits at hot/cold bucket boundaries
/// ([`refine_subfields_spatially`]).
///
/// Under `obs-off` the heatmap never observes anything and the profile
/// reports uninformed, degrading the spatial refinement to a no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialProfile {
    /// Per-bucket qualifying heat, normalized by the hottest bucket
    /// (all zero when nothing was observed).
    pub weights: [f64; HEAT_BUCKETS],
    /// Cell positions per bucket (the heat table's bucket width).
    pub bucket_width: u64,
    /// Total qualifying heat observed (0 = uninformed).
    pub total: u64,
}

impl SpatialProfile {
    /// Reads the qualifying heat table off `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        let table = registry.heat().table(HeatKind::Qualifying);
        let totals = table.totals();
        let max = totals.iter().copied().max().unwrap_or(0);
        let mut weights = [0.0; HEAT_BUCKETS];
        if max > 0 {
            for (w, &c) in weights.iter_mut().zip(totals.iter()) {
                *w = c as f64 / max as f64;
            }
        }
        Self {
            weights,
            bucket_width: table.bucket_width(),
            total: totals.iter().sum(),
        }
    }

    /// Whether any spatial workload was observed.
    pub fn is_informed(&self) -> bool {
        self.total > 0
    }

    /// Access probability of the record range `[start, end)`: the
    /// normalized weight of the hottest bucket the range overlaps
    /// (an uninformed profile reports 1 — every range equally hot).
    pub fn probability(&self, start: u32, end: u32) -> f64 {
        if !self.is_informed() {
            return 1.0;
        }
        let bw = self.bucket_width.max(1);
        let clamp = |pos: u64| ((pos / bw) as usize).min(HEAT_BUCKETS - 1);
        let first = clamp(u64::from(start));
        let last = clamp(u64::from(end.max(start + 1) - 1));
        self.weights[first..=last]
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }
}

/// Expected data pages a single query touches under the observed
/// spatial distribution: `Σ p(subfield) × (pages + 1)` over
/// `(start, end, pages)` record spans. The `+1` models the fixed
/// per-run overhead of seeking to a retrieved subfield, which is what
/// keeps the split refinement from shattering the file into
/// single-cell subfields.
pub fn expected_pages_spatial(spans: &[(u32, u32, f64)], profile: &SpatialProfile) -> f64 {
    spans
        .iter()
        .map(|&(s, e, pages)| profile.probability(s, e) * (pages + 1.0))
        .sum()
}

/// Splits value-model subfields at heat-bucket boundaries wherever the
/// split strictly lowers the spatially predicted page cost.
///
/// The greedy grouping of §3.1.2 only sees value intervals: a subfield
/// straddling a hot and a cold region of the curve is charged the hot
/// region's access probability for *all* of its pages. Cutting it at
/// the bucket boundary leaves the hot piece's pages hot and lets the
/// cold piece's pages drop out of the expected cost. Each applied cut
/// strictly lowers `Σ p·(pages+1)` (the `+1` run overhead makes
/// gratuitous cuts net-positive, so refinement terminates without
/// shattering), and splitting never moves a cell record, so query
/// answers stay byte-identical.
///
/// `intervals` is the per-position value interval slice the repack
/// already materialized; split pieces recompute their interval as the
/// union of their cells'. Returns the input unchanged when the profile
/// is uninformed.
pub(crate) fn refine_subfields_spatially(
    subfields: Vec<Subfield>,
    intervals: &[Interval],
    profile: &SpatialProfile,
    cells_per_page: f64,
) -> Vec<Subfield> {
    if !profile.is_informed() {
        return subfields;
    }
    let cpp = cells_per_page.max(1.0);
    let cost = |s: u32, e: u32| profile.probability(s, e) * (f64::from(e - s) / cpp + 1.0);
    let piece = |s: u32, e: u32| Subfield {
        start: s,
        end: e,
        interval: intervals[s as usize..e as usize]
            .iter()
            .copied()
            .reduce(|a, b| a.union(b))
            .expect("subfields are non-empty"),
    };
    let bw = profile.bucket_width.max(1);
    let mut out = Vec::with_capacity(subfields.len());
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for sf in subfields {
        stack.push((sf.start, sf.end));
        // Left-first DFS keeps the output in ascending position order.
        while let Some((s, e)) = stack.pop() {
            let whole = cost(s, e);
            let mut best: Option<(u32, f64)> = None;
            let mut cut = (u64::from(s) / bw + 1) * bw;
            while cut < u64::from(e) {
                let split = cost(s, cut as u32) + cost(cut as u32, e);
                if split + 1e-9 < best.map_or(whole, |(_, c)| c) {
                    best = Some((cut as u32, split));
                }
                cut += bw;
            }
            match best {
                Some((cut, _)) => {
                    stack.push((cut, e));
                    stack.push((s, cut));
                }
                None => out.push(piece(s, e)),
            }
        }
    }
    out
}

/// Kamel–Faloutsos hit probability of a 1-D interval of raw length
/// `len` under uniformly placed queries of length `q` on a domain of
/// width `w` (clamped to `[0, 1]`; a degenerate domain is always hit).
pub fn hit_probability(len: f64, q: f64, w: f64) -> f64 {
    if w + q <= 0.0 {
        return 1.0;
    }
    ((len + q) / (w + q)).clamp(0.0, 1.0)
}

/// Expected data pages a single query touches in the estimation step:
/// `Σ P(hit subfield_i) × pages_i` over `(interval, pages)` spans.
pub fn expected_pages(spans: &[(Interval, f64)], q: f64, w: f64) -> f64 {
    spans
        .iter()
        .map(|&(iv, pages)| hit_probability(iv.hi - iv.lo, q, w) * pages)
        .sum()
}

/// One row of the per-decile breakdown: subfields ranked by interval
/// length and split into ten groups (decile 0 = shortest intervals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecileRow {
    /// Decile number, 0..10.
    pub decile: usize,
    /// Subfields in the decile.
    pub subfields: usize,
    /// Mean raw interval length of the decile's subfields.
    pub mean_interval_len: f64,
    /// Expected pages/query contributed by the decile under the static
    /// model (`q = W/2`, the paper's `+0.5` on a normalized domain).
    pub predicted_pages_static: f64,
    /// Expected pages/query contributed under the empirical model
    /// (`q = E[|q|]`).
    pub predicted_pages_empirical: f64,
}

/// Predicted-vs-observed filter cost of one index under the static and
/// the empirical query model. Produced by
/// [`IHilbert::workload_report`](crate::IHilbert::workload_report).
#[derive(Debug, Clone)]
pub struct CostModelReport {
    /// Method name (`index` metric label).
    pub index: String,
    /// The observed workload the empirical columns are grounded in.
    pub profile: WorkloadProfile,
    /// Subfield count.
    pub subfields: usize,
    /// Value-domain hull of the index.
    pub domain: Interval,
    /// Total expected pages/query under the static model (`q = W/2`).
    pub predicted_pages_static: f64,
    /// Total expected pages/query under the empirical model
    /// (`q = E[|q|]`; equals the static column when uninformed).
    pub predicted_pages_empirical: f64,
    /// Observed mean estimation-step (refine) pages per query, from the
    /// `index_refine_pages_total` / `index_queries_total` counters
    /// (`None` before the first query).
    pub observed_refine_pages_per_query: Option<f64>,
    /// Observed mean filter-step pages per query (tree traversal I/O).
    pub observed_filter_pages_per_query: Option<f64>,
    /// Measured mean cells per cell-file data page, from the
    /// `storage_cells_per_page` gauge the index publishes at build/open.
    /// This is the denominator every page prediction above is built on —
    /// fixed-slot arithmetic for raw pages, the page directory for
    /// compressed ones. `None` under `obs-off`.
    pub cells_per_page: Option<f64>,
    /// Measured cell-file compression ratio (fixed-slot pages the file
    /// would need ÷ data pages it has), from the
    /// `storage_compression_ratio` gauge. 1.0 on a raw-codec file.
    pub compression_ratio: Option<f64>,
    /// Per-decile breakdown (empty when the index has no subfields).
    pub deciles: Vec<DecileRow>,
}

impl CostModelReport {
    /// Builds the report from the index's subfield `(interval, pages)`
    /// spans and its registry.
    pub(crate) fn build(
        registry: &MetricsRegistry,
        index: &str,
        spans: &[(Interval, f64)],
    ) -> Self {
        let profile = WorkloadProfile::from_registry(registry, index);
        let domain = spans
            .iter()
            .map(|&(iv, _)| iv)
            .reduce(|a, b| a.union(b))
            .unwrap_or(Interval::point(0.0));
        let w = domain.hi - domain.lo;
        let q_static = w / 2.0;
        let q_emp = if profile.is_informed() {
            profile.mean_query_len
        } else {
            q_static
        };

        // Decile split by interval length, shortest first.
        let mut ranked: Vec<(Interval, f64)> = spans.to_vec();
        ranked.sort_by(|a, b| {
            (a.0.hi - a.0.lo)
                .partial_cmp(&(b.0.hi - b.0.lo))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut deciles = Vec::new();
        if !ranked.is_empty() {
            let n = ranked.len();
            for d in 0..10 {
                let lo = d * n / 10;
                let hi = ((d + 1) * n / 10).max(lo);
                let group = &ranked[lo..hi];
                if group.is_empty() {
                    continue;
                }
                let mean_len =
                    group.iter().map(|&(iv, _)| iv.hi - iv.lo).sum::<f64>() / group.len() as f64;
                deciles.push(DecileRow {
                    decile: d,
                    subfields: group.len(),
                    mean_interval_len: mean_len,
                    predicted_pages_static: expected_pages(group, q_static, w),
                    predicted_pages_empirical: expected_pages(group, q_emp, w),
                });
            }
        }

        let queries = registry
            .counter_value("index_queries_total", &[("index", index)])
            .unwrap_or(0);
        let per_query = |name: &str| {
            (queries > 0).then(|| {
                registry
                    .counter_value(name, &[("index", index)])
                    .unwrap_or(0) as f64
                    / queries as f64
            })
        };
        Self {
            index: index.to_owned(),
            profile,
            subfields: spans.len(),
            domain,
            predicted_pages_static: expected_pages(spans, q_static, w),
            predicted_pages_empirical: expected_pages(spans, q_emp, w),
            observed_refine_pages_per_query: per_query("index_refine_pages_total"),
            observed_filter_pages_per_query: per_query("index_filter_pages_total"),
            cells_per_page: registry.gauge_value("storage_cells_per_page", &[("index", index)]),
            compression_ratio: registry
                .gauge_value("storage_compression_ratio", &[("index", index)]),
            deciles,
        }
    }
}

impl fmt::Display for CostModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cost model report for {} ({} subfields, domain [{:.3}, {:.3}])",
            self.index, self.subfields, self.domain.lo, self.domain.hi
        )?;
        if self.profile.is_informed() {
            writeln!(
                f,
                "observed workload: {} queries, E[|q|] = {:.4}",
                self.profile.queries, self.profile.mean_query_len
            )?;
        } else {
            writeln!(
                f,
                "observed workload: none (empirical columns fall back to the static model)"
            )?;
        }
        writeln!(
            f,
            "predicted pages/query: static (q=W/2) {:.3}, empirical {:.3}",
            self.predicted_pages_static, self.predicted_pages_empirical
        )?;
        match (
            self.observed_filter_pages_per_query,
            self.observed_refine_pages_per_query,
        ) {
            (Some(fp), Some(rp)) => {
                writeln!(f, "observed pages/query: filter {fp:.3}, refine {rp:.3}")?
            }
            _ => writeln!(f, "observed pages/query: no queries recorded")?,
        }
        if let (Some(cpp), Some(ratio)) = (self.cells_per_page, self.compression_ratio) {
            writeln!(
                f,
                "cell file geometry: {cpp:.1} cells/page, compression ratio {ratio:.2}x"
            )?;
        }
        writeln!(
            f,
            "{:>6} {:>10} {:>12} {:>16} {:>16}",
            "decile", "subfields", "mean |L|", "pred(static)", "pred(empirical)"
        )?;
        for row in &self.deciles {
            writeln!(
                f,
                "{:>6} {:>10} {:>12.4} {:>16.4} {:>16.4}",
                row.decile,
                row.subfields,
                row.mean_interval_len,
                row.predicted_pages_static,
                row.predicted_pages_empirical
            )?;
        }
        Ok(())
    }
}

/// What [`IHilbert::repack_with_observed_workload`](crate::IHilbert::repack_with_observed_workload)
/// did, and the predicted cost either side of it (both evaluated under
/// the *empirical* query length, so the two numbers are comparable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepackOutcome {
    /// Whether the subfield catalog was regrouped. `false` when no
    /// workload was observed (e.g. under `obs-off`), when the
    /// empirical grouping is identical to the current one, or when a
    /// background ingest repack was in flight (see
    /// [`RepackOutcome::declined_in_flight`]).
    pub repacked: bool,
    /// `true` when the advisor declined because a background ingest
    /// repack was publishing a new epoch at the time (the
    /// `ingest_repack_inflight` gauge was set): regrouping the plane
    /// mid-swap would race the repacker for the same page runs.
    pub declined_in_flight: bool,
    /// The workload profile the decision was based on.
    pub profile: WorkloadProfile,
    /// Subfield count before.
    pub subfields_before: usize,
    /// Subfield count after (equals `subfields_before` when not
    /// repacked).
    pub subfields_after: usize,
    /// Expected pages/query of the old grouping under `q = E[|q|]`.
    pub predicted_pages_before: f64,
    /// Expected pages/query of the new grouping under `q = E[|q|]`.
    pub predicted_pages_after: f64,
    /// Whether per-bucket spatial heat informed the regrouping (the
    /// [`SpatialProfile`] had observed qualifying cells).
    pub spatial_informed: bool,
    /// Expected pages/query of the old grouping under the observed
    /// spatial distribution ([`expected_pages_spatial`]; equals
    /// `spatial_pages_after` when not repacked or uninformed).
    pub spatial_pages_before: f64,
    /// Expected pages/query of the new grouping under the observed
    /// spatial distribution.
    pub spatial_pages_after: f64,
}

impl fmt::Display for RepackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.repacked {
            return write!(
                f,
                "repack declined ({}; {} subfields unchanged)",
                if self.declined_in_flight {
                    "background ingest repack in flight"
                } else if self.profile.is_informed() {
                    "grouping already optimal for the observed workload"
                } else {
                    "no workload observed"
                },
                self.subfields_before
            );
        }
        write!(
            f,
            "repacked {} -> {} subfields under E[|q|] = {:.4} ({} queries); \
             predicted pages/query {:.3} -> {:.3}",
            self.subfields_before,
            self.subfields_after,
            self.profile.mean_query_len,
            self.profile.queries,
            self.predicted_pages_before,
            self.predicted_pages_after
        )?;
        if self.spatial_informed {
            write!(
                f,
                "; spatial pages/query {:.3} -> {:.3}",
                self.spatial_pages_before, self.spatial_pages_after
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_probability_matches_kamel_faloutsos() {
        // Point query on a unit domain: probability is the length.
        assert!((hit_probability(0.25, 0.0, 1.0) - 0.25).abs() < 1e-12);
        // Adding query length raises the probability.
        assert!(hit_probability(0.25, 0.5, 1.0) > 0.25);
        // Never above 1.
        assert_eq!(hit_probability(5.0, 3.0, 1.0), 1.0);
        // Degenerate domain.
        assert_eq!(hit_probability(0.0, 0.0, 0.0), 1.0);
    }

    #[test]
    fn expected_pages_weighs_by_span_pages() {
        let spans = [
            (Interval::new(0.0, 50.0), 4.0),
            (Interval::new(50.0, 100.0), 1.0),
        ];
        let ep = expected_pages(&spans, 0.0, 100.0);
        assert!((ep - (0.5 * 4.0 + 0.5 * 1.0)).abs() < 1e-12);
        // Longer queries raise the expectation toward the page total.
        assert!(expected_pages(&spans, 100.0, 100.0) > ep);
        assert!(expected_pages(&spans, 1e12, 100.0) <= 5.0 + 1e-9);
    }

    #[test]
    fn uninformed_profile_reads_as_zero() {
        let reg = MetricsRegistry::new();
        let p = WorkloadProfile::from_registry(&reg, "I-Hilbert");
        assert!(!p.is_informed());
        assert_eq!(p.mean_query_len, 0.0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn profile_reads_exact_mean_off_the_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with(
            "index_query_band_len",
            &[("index", "I-Hilbert")],
            &crate::stats::BAND_LEN_BUCKETS,
        );
        h.observe(2.0);
        h.observe(10.0);
        let p = WorkloadProfile::from_registry(&reg, "I-Hilbert");
        assert_eq!(p.queries, 2);
        assert!((p.mean_query_len - 6.0).abs() < 1e-12);
    }

    #[test]
    fn uninformed_spatial_profile_is_identity() {
        let reg = MetricsRegistry::new();
        let p = SpatialProfile::from_registry(&reg);
        assert!(!p.is_informed());
        assert_eq!(p.probability(0, 100), 1.0);
        let sfs = vec![Subfield {
            start: 0,
            end: 10,
            interval: Interval::new(0.0, 1.0),
        }];
        let intervals = vec![Interval::new(0.0, 1.0); 10];
        let out = refine_subfields_spatially(sfs.clone(), &intervals, &p, 4.0);
        assert_eq!(out, sfs);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn spatial_refinement_splits_at_hot_cold_boundary() {
        let reg = MetricsRegistry::new();
        reg.heat().set_cell_domain(640); // bucket width 10
        reg.heat().table(HeatKind::Qualifying).bump_range(0, 10); // only bucket 0 is hot
        let p = SpatialProfile::from_registry(&reg);
        assert!(p.is_informed());
        assert_eq!(p.probability(0, 10), 1.0);
        assert_eq!(p.probability(10, 80), 0.0);
        // One subfield spanning the hot bucket plus seven cold ones.
        let intervals: Vec<Interval> = (0..80)
            .map(|i| Interval::new(i as f64, i as f64 + 1.0))
            .collect();
        let sfs = vec![Subfield {
            start: 0,
            end: 80,
            interval: Interval::new(0.0, 80.0),
        }];
        let cost_before = expected_pages_spatial(&[(0, 80, 20.0)], &p);
        let out = refine_subfields_spatially(sfs, &intervals, &p, 4.0);
        assert!(out.len() >= 2, "hot/cold boundary must be cut: {out:?}");
        // Coverage preserved: contiguous, ascending, same hull.
        assert_eq!(out.first().expect("non-empty").start, 0);
        assert_eq!(out.last().expect("non-empty").end, 80);
        for w in out.windows(2) {
            assert_eq!(w[0].end, w[1].start, "{out:?}");
        }
        let spans_after: Vec<(u32, u32, f64)> = out
            .iter()
            .map(|sf| (sf.start, sf.end, f64::from(sf.end - sf.start) / 4.0))
            .collect();
        assert!(
            expected_pages_spatial(&spans_after, &p) < cost_before,
            "each applied cut strictly lowers the spatial cost"
        );
    }

    #[test]
    fn report_deciles_partition_the_subfields() {
        let reg = MetricsRegistry::new();
        let spans: Vec<(Interval, f64)> = (0..37)
            .map(|i| (Interval::new(0.0, 1.0 + i as f64), 1.0 + (i % 3) as f64))
            .collect();
        let report = CostModelReport::build(&reg, "I-Hilbert", &spans);
        assert_eq!(report.subfields, 37);
        assert_eq!(
            report.deciles.iter().map(|d| d.subfields).sum::<usize>(),
            37
        );
        // Decile sums reproduce the totals.
        let static_sum: f64 = report
            .deciles
            .iter()
            .map(|d| d.predicted_pages_static)
            .sum();
        assert!((static_sum - report.predicted_pages_static).abs() < 1e-9);
        // Shortest-interval deciles come first.
        for w in report.deciles.windows(2) {
            assert!(w[0].mean_interval_len <= w[1].mean_interval_len);
        }
        let text = report.to_string();
        assert!(text.contains("cost model report for I-Hilbert"), "{text}");
    }
}
