//! `I-Hilbert` — the paper's contribution.
//!
//! Cells are linearized by the Hilbert value of their centers; subfields
//! are formed by the greedy cost rule of §3.1.2; only subfield intervals
//! enter the 1-D R\*-tree, and each subfield's cells are physically
//! contiguous in the cell file, so the estimation step reads compact
//! page runs.

use crate::advisor::{
    expected_pages, expected_pages_spatial, refine_subfields_spatially, CostModelReport,
    RepackOutcome, SpatialProfile, WorkloadProfile,
};
use crate::order::{cell_order, par_cell_order};
use crate::sfindex::SubfieldIndex;
pub use crate::sfindex::{QueryPlane, TreeBuild};
use crate::stats::{QueryStats, ValueIndex};
use crate::subfield::{build_subfields, SubfieldConfig};
use cf_field::FieldModel;
use cf_geom::{Interval, Polygon};
use cf_sfc::Curve;
use cf_storage::{CfError, CfResult, StorageEngine};

/// Construction parameters of [`IHilbert`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IHilbertConfig {
    /// Cell linearization curve. [`Curve::Hilbert`] is the paper's
    /// method; other curves exist for the ablation bench.
    pub curve: CurveChoice,
    /// Cost-function knobs (paper defaults).
    pub subfield: SubfieldConfig,
    /// R\*-tree build strategy.
    pub tree_build: TreeBuild,
    /// Worker threads for the build pipeline (key extraction, cell
    /// ordering, interval extraction, record writing). `0` and `1` both
    /// select the sequential build; any count produces a **byte-identical**
    /// index (see DESIGN.md §8 for the determinism argument). The greedy
    /// subfield grouping and the subfield R\*-tree build stay sequential,
    /// as in the paper.
    pub build_threads: usize,
    /// Which representation of the subfield R\*-tree serves the
    /// filtering step. [`QueryPlane::Frozen`] flattens the tree into a
    /// cache-resident copy after the build — identical answers and
    /// visited-node counts, no filter-step page traffic.
    pub plane: QueryPlane,
}

/// Wrapper defaulting the curve to Hilbert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveChoice(pub Curve);

impl Default for CurveChoice {
    fn default() -> Self {
        Self(Curve::Hilbert)
    }
}

/// The I-Hilbert value index.
pub struct IHilbert<F: FieldModel> {
    inner: SubfieldIndex<F>,
    curve: Curve,
    /// Field cell index → position in the Hilbert-ordered cell file.
    cell_to_pos: Vec<u32>,
}

impl<F: FieldModel> IHilbert<F> {
    /// Builds the index with paper-default parameters.
    pub fn build(engine: &StorageEngine, field: &F) -> CfResult<Self>
    where
        F: Sync,
    {
        Self::build_with(engine, field, IHilbertConfig::default())
    }

    /// Builds the index with explicit parameters.
    ///
    /// With `config.build_threads > 1` the pipeline's per-cell phases
    /// (curve keys, cell ordering, value intervals, record writes) fan
    /// out over scoped worker threads; the resulting index is
    /// byte-identical to the sequential build.
    pub fn build_with(engine: &StorageEngine, field: &F, config: IHilbertConfig) -> CfResult<Self>
    where
        F: Sync,
    {
        let threads = config.build_threads.max(1);
        let order;
        let intervals: Vec<Interval>;
        let subfields;
        let mut inner;
        if threads > 1 {
            order = par_cell_order(field, config.curve.0, threads);
            intervals = crate::par::par_map_chunks(order.len(), threads, {
                let order = &order;
                move |r, out| out.extend(order[r].iter().map(|&c| field.cell_interval(c)))
            });
            subfields = build_subfields(&intervals, config.subfield);
            inner = SubfieldIndex::build_par(
                engine,
                field,
                &order,
                &subfields,
                config.tree_build,
                threads,
            )?;
        } else {
            order = cell_order(field, config.curve.0);
            intervals = order.iter().map(|&c| field.cell_interval(c)).collect();
            subfields = build_subfields(&intervals, config.subfield);
            inner = SubfieldIndex::build(engine, field, &order, &subfields, config.tree_build)?;
        }
        if config.plane == QueryPlane::Frozen {
            inner.freeze(engine)?;
        }
        inner.set_metric_label(method_label(config.curve.0));
        inner.set_curve_label(config.curve.0.name());
        // Exact per-subfield cost C = P/SI — the per-cell intervals are
        // in hand only here at build time, so this is where the health
        // metrics get the full distribution.
        let costs: Vec<f64> = subfields
            .iter()
            .map(|sf| {
                let si: f64 = intervals[sf.start as usize..sf.end as usize]
                    .iter()
                    .map(|iv| iv.size_with_base(1.0))
                    .sum();
                sf.interval.size_with_base(1.0) / si
            })
            .collect();
        inner.publish_health(engine.metrics(), Some(&costs));
        assert!(
            order.len() <= u32::MAX as usize,
            "cell file too large for u32 positions ({} cells)",
            order.len()
        );
        // Size the map by the largest cell id, not the cell count: a
        // field reporting non-dense cell ids must not index out of
        // bounds here. Unmapped ids keep the sentinel and are rejected
        // by `update_cell` with a real message.
        let map_len = order.iter().map(|&c| c + 1).max().unwrap_or(0);
        let mut cell_to_pos = vec![u32::MAX; map_len];
        for (pos, &cell) in order.iter().enumerate() {
            cell_to_pos[cell] = pos as u32;
        }
        Ok(Self {
            inner,
            curve: config.curve.0,
            cell_to_pos,
        })
    }

    /// Number of subfields the cost function produced.
    pub fn num_subfields(&self) -> usize {
        self.inner.subfields.len()
    }

    /// Number of cells in the index's cell file.
    pub fn inner_len(&self) -> usize {
        self.inner.file.len()
    }

    /// On-page layout of the cell file (raw or compressed).
    pub fn cell_codec(&self) -> cf_storage::PageCodec {
        self.inner.file.codec()
    }

    /// Hull of all indexed values (union of subfield intervals).
    pub fn value_domain(&self) -> Interval {
        self.inner
            .subfields
            .iter()
            .map(|sf| sf.interval)
            .reduce(|a, b| a.union(b))
            .unwrap_or(Interval::point(0.0))
    }

    /// Q1 point query answered from the cell records alone (sequential
    /// probe of the cell file, no spatial index) — the fallback path a
    /// reopened database uses when only the value index was persisted.
    /// Prefer [`crate::PointIndex`] for Q1-heavy workloads.
    pub fn value_at_via_records(
        &self,
        engine: &StorageEngine,
        p: cf_geom::Point2,
    ) -> CfResult<Option<f64>> {
        let mut answer = None;
        self.inner
            .file
            .for_each_in_range(engine, 0..self.inner.file.len(), |_, rec| {
                if answer.is_none() {
                    if let Some(v) = F::record_value_at(&rec, p) {
                        answer = Some(v);
                    }
                }
            })?;
        Ok(answer)
    }

    pub(crate) fn inner(&self) -> &SubfieldIndex<F> {
        &self.inner
    }

    #[cfg(test)]
    pub(crate) fn into_inner(self) -> SubfieldIndex<F> {
        self.inner
    }

    pub(crate) fn curve(&self) -> Curve {
        self.curve
    }

    pub(crate) fn cell_to_pos(&self) -> &[u32] {
        &self.cell_to_pos
    }

    pub(crate) fn from_parts(
        mut inner: SubfieldIndex<F>,
        curve: Curve,
        cell_to_pos: Vec<u32>,
    ) -> Self {
        inner.set_metric_label(method_label(curve));
        inner.set_curve_label(curve.name());
        Self {
            inner,
            curve,
            cell_to_pos,
        }
    }

    /// Enters the frozen query plane after the fact — e.g. on an index
    /// reopened from its catalog ([`IHilbert::open`]), which always
    /// starts on the paged plane. One pass over the tree's pages;
    /// subsequent filter steps touch no pages at all.
    pub fn freeze(&mut self, engine: &StorageEngine) -> CfResult<()> {
        self.inner.freeze(engine)
    }

    /// Runs the query with the estimation step parallelized across
    /// `threads` workers (see `SubfieldIndex::par_query_stats`). Returns
    /// the same counts and exact area as [`ValueIndex::query_stats`].
    pub fn par_query_stats(
        &self,
        engine: &StorageEngine,
        band: Interval,
        threads: usize,
    ) -> CfResult<QueryStats> {
        self.inner.par_query_stats(engine, band, threads)
    }

    /// Scores the current subfield grouping under the static cost model
    /// (`q = W/2`, the paper's `P = L + 0.5` on a normalized domain)
    /// and the empirical model grounded in the observed
    /// `index_query_band_len` histogram, with a per-decile
    /// predicted-vs-observed breakdown. Pure catalog + registry math —
    /// no I/O.
    pub fn workload_report(&self, engine: &StorageEngine) -> CostModelReport {
        CostModelReport::build(
            engine.metrics(),
            &self.name(),
            &self.inner.subfield_page_spans(),
        )
    }

    /// Regroups the cell file's subfields under the *observed* workload:
    /// the empirical mean query length `E[|q|]` replaces the cost
    /// function's assumed query term, and the greedy grouping of §3.1.2
    /// reruns over the unchanged Hilbert-ordered cell file.
    ///
    /// Cell records never move — only the subfield boundaries, the
    /// interval R\*-tree, and the on-disk subfield catalog are rebuilt —
    /// so query answers are byte-identical before and after. Declines
    /// (returning `repacked: false`) when no workload has been observed
    /// (always the case under `obs-off`) or when the empirical grouping
    /// is identical to the current one.
    pub fn repack_with_observed_workload(
        &mut self,
        engine: &StorageEngine,
    ) -> CfResult<RepackOutcome> {
        let profile = WorkloadProfile::from_registry(engine.metrics(), &self.name());
        let spatial = SpatialProfile::from_registry(engine.metrics());
        let before_spans = self.inner.subfield_page_spans();
        let domain = self.value_domain();
        let w = domain.hi - domain.lo;
        let subfields_before = before_spans.len();
        let predicted_before = expected_pages(&before_spans, profile.mean_query_len, w);
        let spatial_before = expected_pages_spatial(&self.inner.subfield_record_spans(), &spatial);
        // While a background ingest repack is publishing a new epoch,
        // decline: both operations want to retire the same tree and
        // subfield-catalog runs, and the epoch swap will regroup under
        // the observed workload anyway.
        let repack_in_flight = engine
            .metrics()
            .gauge_value("ingest_repack_inflight", &[])
            .is_some_and(|v| v >= 1.0);
        if repack_in_flight || !profile.is_informed() {
            return Ok(RepackOutcome {
                repacked: false,
                declined_in_flight: repack_in_flight,
                profile,
                subfields_before,
                subfields_after: subfields_before,
                predicted_pages_before: predicted_before,
                predicted_pages_after: predicted_before,
                spatial_informed: spatial.is_informed(),
                spatial_pages_before: spatial_before,
                spatial_pages_after: spatial_before,
            });
        }
        let config = SubfieldConfig {
            base: 1.0,
            query_len: profile.mean_query_len,
        };
        // The value model groups under E[|q|]; the spatial pass then
        // cuts any subfield straddling a hot/cold heat-bucket boundary
        // wherever the cut strictly lowers the spatially predicted page
        // cost. Cells never move, so answers stay byte-identical.
        let cells_per_page = self.inner.file.records_per_page();
        let repacked = self
            .inner
            .repack_refined(engine, config, |sfs, intervals| {
                refine_subfields_spatially(sfs, intervals, &spatial, cells_per_page)
            })?;
        let after_spans = self.inner.subfield_page_spans();
        Ok(RepackOutcome {
            repacked,
            declined_in_flight: false,
            profile,
            subfields_before,
            subfields_after: after_spans.len(),
            predicted_pages_before: predicted_before,
            predicted_pages_after: expected_pages(&after_spans, profile.mean_query_len, w),
            spatial_informed: spatial.is_informed(),
            spatial_pages_before: spatial_before,
            spatial_pages_after: expected_pages_spatial(
                &self.inner.subfield_record_spans(),
                &spatial,
            ),
        })
    }

    /// Incremental maintenance: applies an updated record for `cell`
    /// (e.g. a re-measured sample) in place.
    ///
    /// The cell record is rewritten in the Hilbert-ordered file and, if
    /// the containing subfield's value interval changed, its entry in
    /// the paged R\*-tree is replaced (remove + insert directly against
    /// index pages). Subfield *boundaries* are not re-optimized — the
    /// greedy grouping is a build-time decision, as in the paper.
    ///
    /// # Errors
    ///
    /// Returns [`CfError::InvalidCell`] if `cell` is not a cell id this
    /// index was built over (out of range or unmapped under non-dense
    /// ids), and [`CfError::Corrupt`] if a reopened catalog maps it
    /// past the cell file — both would otherwise rewrite some other
    /// cell's record. Cell ids are user input; neither case panics.
    pub fn update_cell(
        &mut self,
        engine: &StorageEngine,
        cell: usize,
        record: F::CellRec,
    ) -> CfResult<()> {
        let pos = self.resolve_cell(cell)?;
        self.inner.update_record(engine, pos, &record)
    }

    /// Maps a user-supplied cell id to its cell-file position, with the
    /// same validation (and errors) as [`IHilbert::update_cell`].
    pub(crate) fn resolve_cell(&self, cell: usize) -> CfResult<usize> {
        let pos = match self.cell_to_pos.get(cell) {
            Some(&p) if p != u32::MAX => p as usize,
            _ => {
                return Err(CfError::InvalidCell {
                    cell,
                    cells: self.inner.file.len(),
                })
            }
        };
        if pos >= self.inner.file.len() {
            return Err(CfError::corrupt(
                None,
                format!(
                    "catalog maps cell {cell} to position {pos}, but the cell file holds {} records",
                    self.inner.file.len()
                ),
            ));
        }
        Ok(pos)
    }
}

/// Method name for a curve choice, as used in the paper's figures and as
/// the `index` metric label.
fn method_label(curve: Curve) -> String {
    match curve {
        Curve::Hilbert => "I-Hilbert".into(),
        other => format!("I-{}", other.name()),
    }
}

impl<F: FieldModel> ValueIndex for IHilbert<F> {
    fn name(&self) -> String {
        method_label(self.curve)
    }

    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        self.inner.query_with(engine, band, sink)
    }

    fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        scratch: &mut crate::stats::QueryScratch,
    ) -> CfResult<QueryStats> {
        self.inner.query_stats_scratch(engine, band, scratch)
    }

    fn index_pages(&self) -> usize {
        self.inner.tree.num_pages()
    }

    fn data_pages(&self) -> usize {
        self.inner.file.data_pages()
    }

    fn num_intervals(&self) -> usize {
        self.inner.subfields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn smooth_field(n: usize) -> cf_field::GridField {
        // A smooth two-bump surface: strong spatial autocorrelation,
        // which is what subfields exploit.
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                let (fx, fy) = (x as f64 / n as f64, y as f64 / n as f64);
                values.push(
                    100.0 * (-((fx - 0.3).powi(2) + (fy - 0.3).powi(2)) * 8.0).exp()
                        + 60.0 * (-((fx - 0.75).powi(2) + (fy - 0.7).powi(2)) * 12.0).exp(),
                );
            }
        }
        cf_field::GridField::from_values(vw, vw, values)
    }

    #[test]
    fn far_fewer_intervals_than_cells() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(32);
        let ih = IHilbert::build(&engine, &field).expect("build");
        assert!(ih.num_subfields() >= 1);
        assert!(
            ih.num_subfields() < field.num_cells() / 2,
            "{} subfields for {} cells",
            ih.num_subfields(),
            field.num_cells()
        );
    }

    #[test]
    fn matches_linear_scan_answers() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(24);
        let scan = LinearScan::build(&engine, &field).expect("build");
        let ih = IHilbert::build(&engine, &field).expect("build");
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let lo: f64 = rng.gen_range(-5.0..105.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..20.0));
            let a = scan.query_stats(&engine, band).expect("query");
            let b = ih.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!(
                (a.area - b.area).abs() < 1e-9 * a.area.max(1.0),
                "band {band}: {} vs {}",
                a.area,
                b.area
            );
        }
    }

    #[test]
    fn reads_fewer_pages_than_linear_scan_on_selective_query() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(48);
        let scan = LinearScan::build(&engine, &field).expect("build");
        let ih = IHilbert::build(&engine, &field).expect("build");
        let band = Interval::new(95.0, 100.0); // only the first bump's peak
        engine.clear_cache();
        let s = scan.query_stats(&engine, band).expect("query");
        engine.clear_cache();
        let h = ih.query_stats(&engine, band).expect("query");
        assert_eq!(s.cells_qualifying, h.cells_qualifying);
        assert!(
            h.io.logical_reads() < s.io.logical_reads() / 2,
            "I-Hilbert {} reads vs LinearScan {}",
            h.io.logical_reads(),
            s.io.logical_reads()
        );
    }

    #[test]
    fn curve_ablation_still_correct() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(16);
        let scan = LinearScan::build(&engine, &field).expect("build");
        for curve in Curve::ALL {
            let idx = IHilbert::build_with(
                &engine,
                &field,
                IHilbertConfig {
                    curve: CurveChoice(curve),
                    ..Default::default()
                },
            )
            .expect("build");
            let band = Interval::new(20.0, 40.0);
            let a = scan.query_stats(&engine, band).expect("query");
            let b = idx.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "curve {curve:?}");
            assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
        }
    }

    #[test]
    fn bulk_build_equals_dynamic_build() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(16);
        let dynamic = IHilbert::build_with(
            &engine,
            &field,
            IHilbertConfig {
                tree_build: TreeBuild::Dynamic,
                ..Default::default()
            },
        )
        .expect("build");
        let bulk = IHilbert::build_with(
            &engine,
            &field,
            IHilbertConfig {
                tree_build: TreeBuild::Bulk,
                ..Default::default()
            },
        )
        .expect("build");
        let band = Interval::new(10.0, 30.0);
        let a = dynamic.query_stats(&engine, band).expect("query");
        let b = bulk.query_stats(&engine, band).expect("query");
        assert_eq!(a.cells_qualifying, b.cells_qualifying);
        assert_eq!(a.cells_examined, b.cells_examined);
        assert!((a.area - b.area).abs() < 1e-9);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        use cf_storage::PageId;
        // 80×80 = 6400 cells — above the work-stealing chunk size, so
        // the parallel phases actually engage.
        let field = smooth_field(80);
        let seq_engine = StorageEngine::in_memory();
        let seq = IHilbert::build(&seq_engine, &field).expect("build");
        for threads in [2usize, 4] {
            let par_engine = StorageEngine::in_memory();
            let par = IHilbert::build_with(
                &par_engine,
                &field,
                IHilbertConfig {
                    build_threads: threads,
                    ..Default::default()
                },
            )
            .expect("build");
            assert_eq!(par.num_subfields(), seq.num_subfields(), "t={threads}");
            assert_eq!(par.cell_to_pos(), seq.cell_to_pos(), "t={threads}");
            // The strongest possible check: every page of the two
            // engines is byte-for-byte equal.
            assert_eq!(par_engine.num_pages(), seq_engine.num_pages());
            for p in 0..seq_engine.num_pages() {
                let a = seq_engine
                    .with_page(PageId(p as u64), |page| *page)
                    .expect("read");
                let b = par_engine
                    .with_page(PageId(p as u64), |page| *page)
                    .expect("read");
                assert!(a == b, "page {p} differs at {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_query_matches_sequential() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(32);
        let ih = IHilbert::build(&engine, &field).expect("build");
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..15 {
            let lo: f64 = rng.gen_range(-5.0..100.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..25.0));
            let seq = ih.query_stats(&engine, band).expect("query");
            for threads in [1, 2, 4, 7] {
                let par = ih.par_query_stats(&engine, band, threads).expect("query");
                assert_eq!(par.cells_examined, seq.cells_examined, "t={threads}");
                assert_eq!(par.cells_qualifying, seq.cells_qualifying, "t={threads}");
                assert_eq!(par.num_regions, seq.num_regions, "t={threads}");
                assert!(
                    (par.area - seq.area).abs() < 1e-9 * seq.area.max(1.0),
                    "t={threads}"
                );
            }
        }
    }

    #[test]
    fn frozen_plane_matches_paged_plane() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(32);
        let paged = IHilbert::build(&engine, &field).expect("build");
        let frozen = IHilbert::build_with(
            &engine,
            &field,
            IHilbertConfig {
                plane: QueryPlane::Frozen,
                ..Default::default()
            },
        )
        .expect("build");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let lo: f64 = rng.gen_range(-5.0..105.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..20.0));
            let a = paged.query_stats(&engine, band).expect("query");
            let b = frozen.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_examined, b.cells_examined, "band {band}");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert_eq!(a.num_regions, b.num_regions, "band {band}");
            assert_eq!(a.filter_nodes, b.filter_nodes, "band {band}");
            assert_eq!(a.intervals_retrieved, b.intervals_retrieved);
            assert_eq!(b.filter_pages, 0, "frozen filter reads no pages");
            assert!((a.area - b.area).abs() < 1e-9 * a.area.max(1.0));
            // The parallel estimation path rides the same frozen filter.
            let c = frozen.par_query_stats(&engine, band, 3).expect("query");
            assert_eq!(c.cells_qualifying, a.cells_qualifying, "band {band}");
            assert_eq!(c.filter_nodes, a.filter_nodes, "band {band}");
        }
    }

    #[test]
    fn scratch_query_matches_plain_query() {
        use crate::stats::QueryScratch;
        let engine = StorageEngine::in_memory();
        let field = smooth_field(24);
        let ih = IHilbert::build(&engine, &field).expect("build");
        let mut scratch = QueryScratch::default();
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..25 {
            let lo: f64 = rng.gen_range(-5.0..105.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..20.0));
            let a = ih.query_stats(&engine, band).expect("query");
            let b = ih
                .query_stats_scratch(&engine, band, &mut scratch)
                .expect("query");
            assert_eq!(a.cells_examined, b.cells_examined, "band {band}");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert_eq!(a.num_regions, b.num_regions, "band {band}");
            assert_eq!(a.filter_nodes, b.filter_nodes, "band {band}");
            assert_eq!(a.intervals_retrieved, b.intervals_retrieved);
            assert_eq!(a.area.to_bits(), b.area.to_bits(), "area bit-exact");
        }
    }

    #[test]
    fn frozen_plane_stays_current_through_updates() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(12);
        let mut index = IHilbert::build_with(
            &engine,
            &field,
            IHilbertConfig {
                plane: QueryPlane::Frozen,
                ..Default::default()
            },
        )
        .expect("build");
        // Push one cell far outside the field range: the containing
        // subfield's tree entry moves, and the frozen copy must follow.
        let cell = 7;
        let rec = cf_field::GridCellRecord {
            vals: [777.0; 4],
            ..field.cell_record(cell)
        };
        index.update_cell(&engine, cell, rec).expect("update");
        let stats = index
            .query_stats(&engine, Interval::new(776.0, 778.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 1);
        assert_eq!(stats.filter_pages, 0, "still on the frozen plane");
    }

    #[test]
    fn incremental_updates_track_field_changes() {
        use cf_field::GridField;
        let engine = StorageEngine::in_memory();
        let mut field = smooth_field(24);
        let mut index = IHilbert::build(&engine, &field).expect("build");
        let mut rng = StdRng::seed_from_u64(77);

        // Mutate 60 random vertices; push the changed cells into the
        // index incrementally, then compare against a fresh scan of the
        // mutated field.
        let (vw, vh) = field.vertex_dims();
        for _ in 0..60 {
            let x = rng.gen_range(0..vw);
            let y = rng.gen_range(0..vh);
            let new_value: f64 = rng.gen_range(-50.0..150.0);
            // Rebuild the field with the changed vertex.
            let mut values: Vec<f64> = (0..vh)
                .flat_map(|yy| (0..vw).map(move |xx| (xx, yy)))
                .map(|(xx, yy)| field.vertex_value(xx, yy))
                .collect();
            values[y * vw + x] = new_value;
            field = GridField::from_values(vw, vh, values);
            // Cells touching the vertex (up to 4).
            let (cw, ch) = field.cell_dims();
            for cy in y.saturating_sub(1)..=y.min(ch - 1) {
                for cx in x.saturating_sub(1)..=x.min(cw - 1) {
                    let cell = field.cell_index(cx, cy);
                    index
                        .update_cell(&engine, cell, field.cell_record(cell))
                        .expect("update");
                }
            }
        }

        let scan = LinearScan::build(&engine, &field).expect("build");
        for _ in 0..15 {
            let lo: f64 = rng.gen_range(-60.0..150.0);
            let band = Interval::new(lo, lo + rng.gen_range(0.0..30.0));
            let a = scan.query_stats(&engine, band).expect("query");
            let b = index.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!(
                (a.area - b.area).abs() < 1e-9 * a.area.max(1.0),
                "band {band}: {} vs {}",
                a.area,
                b.area
            );
        }
    }

    #[test]
    fn update_rejects_out_of_range_cell_id() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(4);
        let mut index = IHilbert::build(&engine, &field).expect("build");
        let rec = field.cell_record(0);
        let err = index
            .update_cell(&engine, field.num_cells() + 5, rec)
            .expect_err("out-of-range cell id must be rejected");
        assert!(err.is_invalid_cell(), "{err}");
        assert!(err.to_string().contains("is not mapped by this index"));
    }

    #[test]
    fn update_rejects_unmapped_cell_under_non_dense_ids() {
        // A position map with holes (as a field reporting non-dense cell
        // ids would produce): unmapped ids must be rejected, not silently
        // redirect the update to position 0.
        let engine = StorageEngine::in_memory();
        let field = smooth_field(4);
        let built = IHilbert::build(&engine, &field).expect("build");
        let mut sparse = built.cell_to_pos().to_vec();
        let hole = 3;
        sparse[hole] = u32::MAX;
        let mut index: IHilbert<cf_field::GridField> =
            IHilbert::from_parts(built.into_inner(), Curve::Hilbert, sparse);
        let rec = field.cell_record(hole);
        let err = index
            .update_cell(&engine, hole, rec)
            .expect_err("unmapped cell id must be rejected");
        assert!(err.is_invalid_cell(), "{err}");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn spatial_repack_lowers_predicted_pages_on_skewed_workload() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(48);
        let mut index = IHilbert::build(&engine, &field).expect("build");
        // Skewed workload: every query targets the first bump's peak,
        // so qualifying heat concentrates in a few position buckets.
        let hot = Interval::new(90.0, 100.0);
        for _ in 0..32 {
            index.query_stats(&engine, hot).expect("query");
        }
        // Snapshot answers across the whole domain before the repack.
        let bands: Vec<Interval> = [0.0, 20.0, 50.0, 90.0]
            .iter()
            .map(|&lo| Interval::new(lo, lo + 10.0))
            .collect();
        let before: Vec<QueryStats> = bands
            .iter()
            .map(|&b| index.query_stats(&engine, b).expect("query"))
            .collect();
        let outcome = index
            .repack_with_observed_workload(&engine)
            .expect("repack");
        assert!(outcome.repacked, "{outcome}");
        assert!(outcome.spatial_informed, "{outcome}");
        assert!(
            outcome.spatial_pages_after < outcome.spatial_pages_before,
            "spatially-informed repack must lower the spatial prediction: {outcome}"
        );
        for (&b, old) in bands.iter().zip(&before) {
            let new = index.query_stats(&engine, b).expect("query");
            assert_eq!(old.cells_qualifying, new.cells_qualifying, "band {b}");
            assert_eq!(old.num_regions, new.num_regions, "band {b}");
            assert_eq!(old.area.to_bits(), new.area.to_bits(), "band {b}");
        }
    }

    #[test]
    fn update_that_shrinks_interval_keeps_answers_exact() {
        let engine = StorageEngine::in_memory();
        let field = smooth_field(8);
        let mut index = IHilbert::build(&engine, &field).expect("build");
        // Flatten one cell to a constant far outside the field range.
        let cell = 13;
        let rec = cf_field::GridCellRecord {
            vals: [999.0; 4],
            ..field.cell_record(cell)
        };
        index.update_cell(&engine, cell, rec).expect("update");
        let stats = index
            .query_stats(&engine, Interval::new(998.0, 1000.0))
            .expect("query");
        assert_eq!(stats.cells_qualifying, 1);
        assert!((stats.area - 1.0).abs() < 1e-9, "whole cell qualifies");
    }
}
