//! Subfield construction by the paper's cost function (§3.1.2).
//!
//! Cells, already linearized along the Hilbert curve, are grouped
//! greedily: a subfield keeps absorbing the next cell while doing so does
//! not increase its cost
//!
//! ```text
//! C = P / SI,        P  = L + query_len        (probability model)
//!                    L  = interval size of the subfield
//!                    SI = Σ interval sizes of its cells
//! interval size I = (max − min) + base          (paper: base = 1)
//! ```
//!
//! `P` follows Kamel & Faloutsos' packing model: the probability that a
//! 1-D MBR of length `L` is hit by the average range query (of length
//! `query_len`, 0.5 on a normalized domain). The paper's worked example
//! (Fig. 5b: 21/45 ≈ 0.466 before inserting c5, 31/58 ≈ 0.534 after)
//! computes `P = L` — i.e. the additive query term is dropped at raw
//! value scale — so the default [`SubfieldConfig`] uses `query_len = 0`
//! and both knobs are exposed for the ablation bench.

use cf_geom::Interval;

/// Tuning knobs of the subfield cost function.
#[derive(Debug, Clone, Copy)]
pub struct SubfieldConfig {
    /// Additive constant of the interval-size definition (`+1` in the
    /// paper). Scale-dependent: keep `1.0` for raw integer-like value
    /// domains, or pass the value resolution for normalized domains.
    pub base: f64,
    /// Additive query-length term of the access-probability model
    /// (`+0.5` in the Kamel–Faloutsos model on a normalized domain; `0`
    /// reproduces the paper's worked example).
    pub query_len: f64,
}

impl Default for SubfieldConfig {
    fn default() -> Self {
        Self {
            base: 1.0,
            query_len: 0.0,
        }
    }
}

/// A subfield: a contiguous run `[start, end)` of the linearized cell
/// file, summarized by the interval of every value inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subfield {
    /// First cell (inclusive) in linearized order.
    pub start: u32,
    /// One past the last cell.
    pub end: u32,
    /// Union of the cells' value intervals.
    pub interval: Interval,
}

impl Subfield {
    /// Number of cells in the subfield.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the subfield holds no cells (never produced by
    /// [`build_subfields`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Packs the record range into a `u64` R\*-tree payload.
    ///
    /// # Panics
    ///
    /// Panics on an empty (or inverted) subfield: an empty range packs
    /// to the same payload as a legitimate range starting at `end`, so
    /// it could alias another tree entry and break remove-by-payload
    /// during incremental maintenance.
    pub fn pack(&self) -> u64 {
        assert!(
            self.start < self.end,
            "cannot pack empty subfield [{}, {})",
            self.start,
            self.end
        );
        (u64::from(self.start) << 32) | u64::from(self.end)
    }

    /// Inverse of [`Subfield::pack`] (interval comes from the tree key).
    ///
    /// # Panics
    ///
    /// Panics if the payload decodes to an empty or inverted range —
    /// [`Subfield::pack`] never produces one, so this indicates a
    /// corrupt tree page.
    pub fn unpack(data: u64, interval: Interval) -> Self {
        let (start, end) = ((data >> 32) as u32, data as u32);
        assert!(
            start < end,
            "corrupt subfield payload {data:#x}: empty range [{start}, {end})"
        );
        Self {
            start,
            end,
            interval,
        }
    }
}

impl cf_storage::Record for Subfield {
    const SIZE: usize = 24;

    fn encode(&self, buf: &mut [u8]) {
        cf_storage::codec::put_u32(buf, 0, self.start);
        cf_storage::codec::put_u32(buf, 4, self.end);
        cf_storage::codec::put_f64(buf, 8, self.interval.lo);
        cf_storage::codec::put_f64(buf, 16, self.interval.hi);
    }

    fn decode(buf: &[u8]) -> Self {
        Self {
            start: cf_storage::codec::get_u32(buf, 0),
            end: cf_storage::codec::get_u32(buf, 4),
            interval: Interval::new(
                cf_storage::codec::get_f64(buf, 8),
                cf_storage::codec::get_f64(buf, 16),
            ),
        }
    }

    fn columns() -> Vec<cf_storage::compress::ColSpec> {
        use cf_storage::compress::{ColKind, ColSpec};
        // `start`/`end` of consecutive subfields are sorted (each equals
        // its predecessor's `end`), so the zigzag deltas are tiny; the
        // interval bounds drift slowly along the Hilbert order, which the
        // xor codec trims well.
        vec![
            ColSpec {
                offset: 0,
                kind: ColKind::Delta4,
            },
            ColSpec {
                offset: 4,
                kind: ColKind::Delta4,
            },
            ColSpec {
                offset: 8,
                kind: ColKind::Xor8,
            },
            ColSpec {
                offset: 16,
                kind: ColKind::Xor8,
            },
        ]
    }
}

/// Groups linearized cell intervals into subfields.
///
/// `intervals[i]` is the value interval of the `i`-th cell in the chosen
/// linear order. Returns subfields covering `0..intervals.len()` without
/// gaps or overlaps.
///
/// # Panics
///
/// Panics if more than `u32::MAX` cells are supplied.
pub fn build_subfields(intervals: &[Interval], config: SubfieldConfig) -> Vec<Subfield> {
    assert!(
        intervals.len() <= u32::MAX as usize,
        "cell file too large for u32 subfield pointers"
    );
    let mut out = Vec::new();
    let Some(&first) = intervals.first() else {
        return out;
    };

    let size = |iv: Interval| iv.size_with_base(config.base);

    let mut start = 0u32;
    let mut union = first;
    let mut si = size(first);
    for (i, &iv) in intervals.iter().enumerate().skip(1) {
        let cost_before = (size(union) + config.query_len) / si;
        let new_union = union.union(iv);
        let new_si = si + size(iv);
        let cost_after = (size(new_union) + config.query_len) / new_si;
        if cost_before > cost_after {
            // Insertion decreases the cost: absorb the cell.
            union = new_union;
            si = new_si;
        } else {
            // Close the current subfield, start a new one at this cell.
            out.push(Subfield {
                start,
                end: i as u32,
                interval: union,
            });
            start = i as u32;
            union = iv;
            si = size(iv);
        }
    }
    out.push(Subfield {
        start,
        end: intervals.len() as u32,
        interval: union,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cell intervals reconstructing the paper's Fig. 5b worked example:
    /// sizes 11, 10, 11, 13 with union size 21, then c5 of size 13
    /// pushing the union to 31.
    fn paper_example_cells() -> Vec<Interval> {
        vec![
            Interval::new(20.0, 30.0), // size 11
            Interval::new(25.0, 34.0), // size 10
            Interval::new(30.0, 40.0), // size 11
            Interval::new(28.0, 40.0), // size 13
            Interval::new(38.0, 50.0), // size 13, would widen union to 31
        ]
    }

    #[test]
    fn reproduces_fig5b_cost_numbers() {
        // Paper: cost of Subfield 1 before inserting c5 was
        // 21/(11+10+11+13) ≈ 0.466; after, 31/58 ≈ 0.534 — so c5 starts
        // Subfield 2.
        let cfg = SubfieldConfig::default();
        let cells = paper_example_cells();
        let union4 = cells[..4].iter().fold(cells[0], |a, b| a.union(*b));
        let si4: f64 = cells[..4].iter().map(|iv| iv.size_with_base(1.0)).sum();
        let ca = union4.size_with_base(1.0) / si4;
        assert!((ca - 21.0 / 45.0).abs() < 1e-12);
        let union5 = union4.union(cells[4]);
        let cb = union5.size_with_base(1.0) / (si4 + cells[4].size_with_base(1.0));
        assert!((cb - 31.0 / 58.0).abs() < 1e-12);

        let subfields = build_subfields(&cells, cfg);
        assert_eq!(subfields.len(), 2);
        assert_eq!(subfields[0].start, 0);
        assert_eq!(subfields[0].end, 4);
        assert_eq!(subfields[0].interval, Interval::new(20.0, 40.0));
        assert_eq!(subfields[1].start, 4);
        assert_eq!(subfields[1].end, 5);
        assert_eq!(subfields[1].interval, Interval::new(38.0, 50.0));
    }

    #[test]
    fn subfields_partition_the_cell_range() {
        let cells: Vec<Interval> = (0..100)
            .map(|i| {
                let base = (i / 10) as f64 * 50.0;
                Interval::new(base, base + (i % 10) as f64)
            })
            .collect();
        let sfs = build_subfields(&cells, SubfieldConfig::default());
        assert_eq!(sfs[0].start, 0);
        assert_eq!(sfs.last().unwrap().end as usize, cells.len());
        for w in sfs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap");
        }
        // Each subfield interval is the union of its cells.
        for sf in &sfs {
            let union = cells[sf.start as usize..sf.end as usize]
                .iter()
                .fold(cells[sf.start as usize], |a, b| a.union(*b));
            assert_eq!(sf.interval, union);
        }
    }

    #[test]
    fn identical_cells_form_one_subfield() {
        // Cost strictly decreases when absorbing an identical interval,
        // so a constant run collapses to a single subfield.
        let cells = vec![Interval::new(5.0, 10.0); 50];
        let sfs = build_subfields(&cells, SubfieldConfig::default());
        assert_eq!(sfs.len(), 1);
        assert_eq!(sfs[0].len(), 50);
    }

    #[test]
    fn wildly_different_cells_split() {
        let cells = vec![
            Interval::new(0.0, 1.0),
            Interval::new(1000.0, 1001.0),
            Interval::new(-500.0, -499.0),
        ];
        let sfs = build_subfields(&cells, SubfieldConfig::default());
        assert_eq!(sfs.len(), 3);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(build_subfields(&[], SubfieldConfig::default()).is_empty());
        let one = build_subfields(&[Interval::new(1.0, 2.0)], SubfieldConfig::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), 1);
    }

    #[test]
    fn query_len_merges_more_aggressively() {
        // A large query term flattens relative differences in P, so more
        // cells merge (the denominator keeps growing).
        let cells: Vec<Interval> = (0..200)
            .map(|i| {
                let v = (i as f64 * 0.37).sin() * 50.0;
                Interval::new(v, v + 5.0)
            })
            .collect();
        let tight = build_subfields(
            &cells,
            SubfieldConfig {
                base: 1.0,
                query_len: 0.0,
            },
        );
        let loose = build_subfields(
            &cells,
            SubfieldConfig {
                base: 1.0,
                query_len: 100.0,
            },
        );
        assert!(
            loose.len() <= tight.len(),
            "query_len=100 gave {} subfields vs {}",
            loose.len(),
            tight.len()
        );
    }

    #[test]
    fn pack_unpack_round_trip() {
        let sf = Subfield {
            start: 123_456,
            end: 789_012,
            interval: Interval::new(-1.0, 2.0),
        };
        let packed = sf.pack();
        assert_eq!(Subfield::unpack(packed, sf.interval), sf);
    }

    #[test]
    fn pack_survives_u32_boundary_positions() {
        // The last representable cell range must round-trip without the
        // `end` truncating into the `start` half of the payload.
        let sf = Subfield {
            start: u32::MAX - 1,
            end: u32::MAX,
            interval: Interval::point(0.0),
        };
        assert_eq!(Subfield::unpack(sf.pack(), sf.interval), sf);
    }

    #[test]
    #[should_panic(expected = "empty subfield")]
    fn pack_rejects_empty_range() {
        Subfield {
            start: 7,
            end: 7,
            interval: Interval::point(0.0),
        }
        .pack();
    }

    #[test]
    #[should_panic(expected = "corrupt subfield payload")]
    fn unpack_rejects_inverted_range() {
        // start = 8, end = 3: pack() could never have produced this.
        Subfield::unpack((8u64 << 32) | 3, Interval::point(0.0));
    }
}
