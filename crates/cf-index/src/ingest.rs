//! The live ingest plane: epoch-based plane swap with
//! snapshot-isolated readers and a background repacker.
//!
//! The paper treats the index as build-once: `update_cell` rewrites a
//! record in place and the frozen query plane is re-frozen wholesale on
//! every mutation, so a continuous sensor stream stalls the world. This
//! module refactors the mutation path into three cooperating parts:
//!
//! 1. **A mutable delta plane** ([`LiveIngest`]): an append-only ring
//!    of `(position, record)` overlays with its own small interval
//!    summary (per-touched-subfield effective intervals). Ingest
//!    writes land here — the frozen base is never touched, so the
//!    [`cf_rtree::FrozenTree`] re-freeze is off the write path
//!    entirely.
//! 2. **Snapshot-isolated readers** ([`EpochSnapshot`]): every
//!    publication is an immutable epoch — `Arc`-swapped base plane +
//!    delta prefix — pinned against page reclamation by a
//!    [`cf_storage::EpochPin`]. A reader merges base and delta answers
//!    **byte-identically** to the sequential oracle (an index that
//!    applied every update in place):
//!    the filter step runs on the base tree and is corrected by the
//!    per-subfield effective intervals (same union-over-records rule
//!    `update_record` uses, same closed-interval intersection
//!    semantics as the tree's `Aabb`), so the retrieved subfield set
//!    equals the oracle's; the estimation step scans the same
//!    coalesced position-ordered runs with overlay substitution, so
//!    the float accumulation order — and therefore every area bit —
//!    is identical.
//! 3. **A background repacker** ([`LiveIngest::repack`]): drains the
//!    delta into a new Hilbert-ordered cell file segment on fresh
//!    pages (regrouping subfields under the observed workload when the
//!    advisor's profile is informed), swaps the base `Arc`, and defers
//!    the superseded page runs to the engine's epoch GC — they are
//!    recycled only after the last reader of an older epoch drops.
//!
//! Writers serialize on one mutex; readers never take it — they clone
//! the published `Arc` and query an immutable snapshot, so in-flight
//! queries never observe a half-applied write and a repack never
//! stalls them.

use crate::advisor::{refine_subfields_spatially, SpatialProfile, WorkloadProfile};
use crate::ihilbert::IHilbert;
use crate::planner::SelectivityEstimator;
use crate::sfindex::{SubfieldIndex, TreeBuild};
use crate::stats::{QueryMetrics, QueryScratch, QueryStats, ValueIndex};
use crate::subfield::{build_subfields, SubfieldConfig};
use cf_field::FieldModel;
use cf_geom::{Interval, Polygon};
use cf_storage::{
    answer_digest, codec, CfResult, Counter, EpochPin, Gauge, HeatKind, Record, Stopwatch,
    StorageEngine, TraceEvent,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// What [`LiveIngest::persist_state`] hands the catalog writer: the
/// base plane, the net delta entries (ascending by position) and the
/// publication epoch, captured under a single lock acquisition.
pub(crate) type PersistState<F> = (
    Arc<IHilbert<F>>,
    Vec<DeltaRec<<F as FieldModel>::CellRec>>,
    u64,
);

/// One delta-plane entry: the cell-file position an ingest overlays
/// and its replacement record. This is also the on-disk layout of the
/// flushed delta file (catalog v4's `delta_first .. delta_len` run).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRec<R> {
    /// Position in the Hilbert-ordered cell file.
    pub pos: u32,
    /// The replacement record.
    pub rec: R,
}

impl<R: Record> Record for DeltaRec<R> {
    const SIZE: usize = 4 + R::SIZE;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_u32(buf, 0, self.pos);
        self.rec.encode(&mut buf[4..]);
    }

    fn decode(buf: &[u8]) -> Self {
        Self {
            pos: codec::get_u32(buf, 0),
            rec: R::decode(&buf[4..]),
        }
    }
}

/// Construction knobs of [`LiveIngest`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Delta-ring capacity: when an ingest would exceed it, the write
    /// performs an inline synchronous drain (the backpressure path) —
    /// ordinarily a background [`LiveIngest::repack`] drains first.
    pub capacity: usize,
    /// Optional planner threading: estimated selectivity at or above
    /// this threshold routes a snapshot query to an overlay-aware full
    /// scan of the base cell file instead of an index probe (same
    /// routing rule as [`crate::AdaptiveIndex`]). `None` always
    /// probes.
    pub scan_threshold: Option<f64>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            scan_threshold: None,
        }
    }
}

/// Writer-side mutable state, serialized under one mutex.
struct WriterState<F: FieldModel> {
    /// The immutable base plane of the current epoch.
    base: Arc<IHilbert<F>>,
    /// Append-only delta ring since the last drain (may hold several
    /// entries for one position; the overlay map is the net effect).
    ring: Vec<DeltaRec<F::CellRec>>,
    /// Net overlay per touched cell-file position.
    overlays: HashMap<u32, F::CellRec>,
    /// Effective (overlay-aware) interval per touched subfield — the
    /// delta plane's interval summary, keyed by subfield index.
    sf_overrides: HashMap<u32, Interval>,
    /// Publication counter: bumped on every publish (ingest or
    /// repack). Readers pin this epoch in the engine's GC domain.
    epoch: u64,
    /// Completed repacks (epoch swaps that replaced the base).
    repacks: u64,
    /// Planner statistic over the current base (rebuilt on repack).
    estimator: Option<Arc<SelectivityEstimator>>,
    /// When the delta last drained (repack or construction) — the
    /// `ingest_repack_lag_ns` gauge reports time since.
    last_drain: Instant,
    /// When the current epoch was published — each publication reports
    /// the age the outgoing epoch reached (`ingest_epoch_age_ns`).
    last_publish: Instant,
}

/// Cached registry handles for the delta-pressure gauges.
struct IngestGauges {
    delta_records: Gauge,
    epoch: Gauge,
    repack_lag_ns: Gauge,
    repack_inflight: Gauge,
    /// Age the outgoing epoch reached when the latest publication
    /// replaced it (time between consecutive publishes).
    epoch_age_ns: Gauge,
    /// Records rewritten per delta record drained by the latest
    /// repack: the write-amplification factor of the drain.
    write_amplification: Gauge,
}

impl IngestGauges {
    fn wire(engine: &StorageEngine) -> Self {
        let registry = engine.metrics();
        Self {
            delta_records: registry.gauge("ingest_delta_records"),
            epoch: registry.gauge("ingest_epoch"),
            repack_lag_ns: registry.gauge("ingest_repack_lag_ns"),
            repack_inflight: registry.gauge("ingest_repack_inflight"),
            epoch_age_ns: registry.gauge("ingest_epoch_age_ns"),
            write_amplification: registry.gauge("ingest_write_amplification"),
        }
    }
}

/// What a [`LiveIngest::repack`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepackReport {
    /// Whether a new epoch was published (false: the delta was empty).
    pub repacked: bool,
    /// Delta records drained into the new base.
    pub drained: usize,
    /// The epoch the swap published (unchanged when not repacked).
    pub epoch: u64,
    /// Pages deferred to the epoch GC (recycled once the last reader
    /// of an older epoch drops).
    pub pages_retired: usize,
}

/// The live ingest plane over an [`IHilbert`] base (see module docs).
pub struct LiveIngest<F: FieldModel> {
    writer: Mutex<WriterState<F>>,
    published: RwLock<Arc<EpochSnapshot<F>>>,
    capacity: usize,
    scan_threshold: Option<f64>,
    gauges: OnceLock<IngestGauges>,
}

impl<F: FieldModel> LiveIngest<F> {
    /// Wraps a built (or reopened) index as the epoch-0 base plane and
    /// publishes the first snapshot.
    pub fn new(engine: &StorageEngine, base: IHilbert<F>, config: IngestConfig) -> CfResult<Self> {
        Self::from_state(engine, base, config, 0, Vec::new())
    }

    /// Internal constructor shared by [`LiveIngest::new`] and the
    /// catalog reopen path: seeds the ring (net overlays, e.g. from a
    /// flushed delta file) and the publication epoch.
    pub(crate) fn from_state(
        engine: &StorageEngine,
        base: IHilbert<F>,
        config: IngestConfig,
        epoch: u64,
        ring: Vec<DeltaRec<F::CellRec>>,
    ) -> CfResult<Self> {
        let base = Arc::new(base);
        let estimator = match config.scan_threshold {
            Some(_) => {
                let inner = base.inner();
                let mut intervals: Vec<Interval> = Vec::with_capacity(inner.file.len());
                inner
                    .file
                    .for_each_in_range(engine, 0..inner.file.len(), |_, rec| {
                        intervals.push(F::record_interval(&rec));
                    })?;
                Some(Arc::new(SelectivityEstimator::build(
                    intervals.into_iter(),
                    64,
                )))
            }
            None => None,
        };
        let mut state = WriterState {
            base,
            ring: Vec::new(),
            overlays: HashMap::new(),
            sf_overrides: HashMap::new(),
            epoch,
            repacks: 0,
            estimator,
            last_drain: Instant::now(),
            last_publish: Instant::now(),
        };
        for d in ring {
            state.overlays.insert(d.pos, d.rec.clone());
            state.ring.push(d);
        }
        for &pos in state.overlays.keys() {
            let sf_idx = state.base.inner().pos_to_subfield[pos as usize];
            if !state.sf_overrides.contains_key(&sf_idx) {
                let iv = effective_sf_interval(
                    engine,
                    &state.base,
                    &state.overlays,
                    None,
                    sf_idx as usize,
                )?;
                state.sf_overrides.insert(sf_idx, iv);
            }
        }
        let snapshot = make_snapshot(engine, &state, config.scan_threshold);
        let this = Self {
            writer: Mutex::new(state),
            published: RwLock::new(snapshot),
            capacity: config.capacity.max(1),
            scan_threshold: config.scan_threshold,
            gauges: OnceLock::new(),
        };
        {
            let state = this.writer.lock().expect("writer state poisoned");
            this.refresh_gauges(engine, &state);
        }
        Ok(this)
    }

    fn gauges(&self, engine: &StorageEngine) -> &IngestGauges {
        self.gauges.get_or_init(|| IngestGauges::wire(engine))
    }

    /// The currently published epoch snapshot. Queries on the returned
    /// handle are fully isolated: later ingests and repacks publish
    /// *new* snapshots and never mutate this one, and the pages it
    /// reads stay allocated until it is dropped.
    pub fn snapshot(&self) -> Arc<EpochSnapshot<F>> {
        Arc::clone(&self.published.read().expect("published epoch poisoned"))
    }

    /// Applies an updated record for `cell` to the delta plane and
    /// publishes a new epoch. The frozen base is untouched — no tree
    /// surgery, no re-freeze — so the write cost is O(subfield size)
    /// for the interval summary plus the snapshot publication.
    ///
    /// When the delta ring is at capacity, the write first performs an
    /// inline synchronous drain (see [`LiveIngest::repack`]) — the
    /// backpressure path.
    ///
    /// # Errors
    ///
    /// [`cf_storage::CfError::InvalidCell`] when `cell` is not mapped
    /// by the base index; I/O errors from the interval recompute.
    pub fn ingest(&self, engine: &StorageEngine, cell: usize, record: F::CellRec) -> CfResult<()> {
        let mut state = self.writer.lock().expect("writer state poisoned");
        let pos = state.base.resolve_cell(cell)? as u32;
        if state.ring.len() >= self.capacity {
            self.repack_locked(engine, &mut state)?;
        }
        // Recompute the subfield's interval summary with the new record
        // overlaid *before* mutating any state: if the recompute I/O
        // fails, the ring, overlay map, gauges and published snapshot
        // all still agree (no half-applied write left behind).
        let sf_idx = state.base.inner().pos_to_subfield[pos as usize];
        let iv = effective_sf_interval(
            engine,
            &state.base,
            &state.overlays,
            Some((pos, &record)),
            sf_idx as usize,
        )?;
        state.ring.push(DeltaRec {
            pos,
            rec: record.clone(),
        });
        state.overlays.insert(pos, record);
        state.sf_overrides.insert(sf_idx, iv);
        state.epoch += 1;
        self.publish_locked(engine, &mut state);
        Ok(())
    }

    /// Drains the delta plane into a new Hilbert-ordered cell file
    /// segment on fresh pages and publishes the swap as a new epoch.
    /// Run it from a background thread: readers keep querying the old
    /// epoch's snapshot throughout (its pages are epoch-GC-protected),
    /// and only concurrent *writers* briefly serialize behind the
    /// writer mutex.
    ///
    /// Subfields are regrouped under the observed workload when the
    /// advisor's profile is informed (same rule as
    /// [`IHilbert::repack_with_observed_workload`]); otherwise the
    /// paper's static cost function is used. The superseded cell-file,
    /// tree and subfield-catalog runs are deferred to the engine's
    /// epoch GC and recycled once the last reader of an older epoch
    /// drops.
    pub fn repack(&self, engine: &StorageEngine) -> CfResult<RepackReport> {
        let mut state = self.writer.lock().expect("writer state poisoned");
        self.repack_locked(engine, &mut state)
    }

    fn repack_locked(
        &self,
        engine: &StorageEngine,
        state: &mut WriterState<F>,
    ) -> CfResult<RepackReport> {
        if state.ring.is_empty() {
            return Ok(RepackReport {
                repacked: false,
                drained: 0,
                epoch: state.epoch,
                pages_retired: 0,
            });
        }
        let gauges = self.gauges(engine);
        gauges.repack_inflight.set(1.0);
        let (epoch, ring_len) = (state.epoch, state.ring.len());
        engine.metrics().journal().emit_with(|| {
            cf_storage::Json::obj([
                ("event", cf_storage::Json::Str("repack_start".into())),
                ("epoch", cf_storage::Json::Num(epoch as f64)),
                ("delta_records", cf_storage::Json::Num(ring_len as f64)),
            ])
        });
        let result = self.repack_inner(engine, state);
        gauges.repack_inflight.set(0.0);
        result
    }

    fn repack_inner(
        &self,
        engine: &StorageEngine,
        state: &mut WriterState<F>,
    ) -> CfResult<RepackReport> {
        let repack_clock = Stopwatch::start();
        let drained = state.ring.len();
        let inner = state.base.inner();
        // Materialize the effective cell file: base order (cell
        // geometry never changes, so the Hilbert order — and with it
        // the position map — is preserved) with overlays applied.
        let mut records: Vec<F::CellRec> = inner.file.read_range(engine, 0..inner.file.len())?;
        for (&pos, rec) in &state.overlays {
            records[pos as usize] = rec.clone();
        }
        let intervals: Vec<Interval> = records.iter().map(|r| F::record_interval(r)).collect();
        // Regroup under the observed workload when informed — this is
        // where `repack_with_observed_workload`'s empirical cost model
        // meets the drain.
        let profile = WorkloadProfile::from_registry(engine.metrics(), &state.base.name());
        let config = if profile.is_informed() {
            SubfieldConfig {
                base: 1.0,
                query_len: profile.mean_query_len,
            }
        } else {
            SubfieldConfig::default()
        };
        // The spatial heatmap rides along: subfields straddling a
        // hot/cold heat-bucket boundary are cut where the cut lowers
        // the spatially predicted page cost (no-op when uninformed).
        let spatial = SpatialProfile::from_registry(engine.metrics());
        let subfields = refine_subfields_spatially(
            build_subfields(&intervals, config),
            &intervals,
            &spatial,
            inner.file.records_per_page(),
        );
        let was_frozen = inner.is_frozen();
        let old_cell = (inner.file.first_page(), inner.file.num_pages());
        let old_tree = inner.tree.page_run();
        let old_sf = (inner.sf_file.first_page(), inner.sf_file.num_pages());

        let mut new_inner =
            SubfieldIndex::build_from_records(engine, records, &subfields, TreeBuild::Dynamic)?;
        if was_frozen {
            new_inner.freeze(engine)?;
        }
        let new_base = IHilbert::from_parts(
            new_inner,
            state.base.curve(),
            state.base.cell_to_pos().to_vec(),
        );
        new_base.inner().publish_health(engine.metrics(), None);

        if self.scan_threshold.is_some() {
            state.estimator = Some(Arc::new(SelectivityEstimator::build(
                intervals.into_iter(),
                64,
            )));
        }
        state.base = Arc::new(new_base);
        state.ring.clear();
        state.overlays.clear();
        state.sf_overrides.clear();
        state.epoch += 1;
        state.repacks += 1;
        state.last_drain = Instant::now();

        // Retire the superseded runs at the new epoch: readers still
        // pinning an older epoch keep them allocated; the engine
        // recycles them on a later `collect_deferred`.
        let mut pages_retired = 0;
        engine.defer_free_run(state.epoch, old_cell.0, old_cell.1);
        pages_retired += old_cell.1;
        if let Some((first, pages)) = old_tree {
            engine.defer_free_run(state.epoch, first, pages);
            pages_retired += pages;
        }
        engine.defer_free_run(state.epoch, old_sf.0, old_sf.1);
        pages_retired += old_sf.1;

        self.publish_locked(engine, state);
        // Opportunistic collection: anything already unpinned (e.g. no
        // reader ever held the old epoch) is recycled right away.
        engine.collect_deferred()?;
        // Write amplification of the drain: the whole cell file is
        // rewritten to fresh pages, so it is records-rewritten per
        // delta record drained.
        let rewritten = state.base.inner_len();
        let write_amp = rewritten as f64 / drained as f64;
        self.gauges(engine).write_amplification.set(write_amp);
        let (epoch, regroups) = (state.epoch, state.base.num_intervals());
        let wall_ns = repack_clock.elapsed_ns();
        engine.metrics().journal().emit_with(|| {
            cf_storage::Json::obj([
                ("event", cf_storage::Json::Str("repack_end".into())),
                ("epoch", cf_storage::Json::Num(epoch as f64)),
                ("drained", cf_storage::Json::Num(drained as f64)),
                ("regroups", cf_storage::Json::Num(regroups as f64)),
                ("records_rewritten", cf_storage::Json::Num(rewritten as f64)),
                ("pages_retired", cf_storage::Json::Num(pages_retired as f64)),
                ("write_amplification", cf_storage::Json::Num(write_amp)),
                ("wall_ns", cf_storage::Json::Num(wall_ns as f64)),
            ])
        });
        Ok(RepackReport {
            repacked: true,
            drained,
            epoch: state.epoch,
            pages_retired,
        })
    }

    /// Publishes the writer state as a fresh immutable snapshot,
    /// refreshes the delta-pressure gauges, and journals the epoch
    /// publication (with the age the outgoing epoch reached).
    fn publish_locked(&self, engine: &StorageEngine, state: &mut WriterState<F>) {
        let epoch_age_ns = state.last_publish.elapsed().as_nanos() as u64;
        state.last_publish = Instant::now();
        let snapshot = make_snapshot(engine, state, self.scan_threshold);
        *self.published.write().expect("published epoch poisoned") = snapshot;
        self.gauges(engine).epoch_age_ns.set(epoch_age_ns as f64);
        self.refresh_gauges(engine, state);
        let (epoch, delta_records) = (state.epoch, state.ring.len());
        engine.metrics().journal().emit_with(|| {
            cf_storage::Json::obj([
                ("event", cf_storage::Json::Str("epoch_published".into())),
                ("epoch", cf_storage::Json::Num(epoch as f64)),
                ("delta_records", cf_storage::Json::Num(delta_records as f64)),
                ("epoch_age_ns", cf_storage::Json::Num(epoch_age_ns as f64)),
            ])
        });
    }

    fn refresh_gauges(&self, engine: &StorageEngine, state: &WriterState<F>) {
        let gauges = self.gauges(engine);
        gauges.delta_records.set(state.ring.len() as f64);
        gauges.epoch.set(state.epoch as f64);
        gauges
            .repack_lag_ns
            .set(state.last_drain.elapsed().as_nanos() as f64);
    }

    /// `(delta records in the ring, publication epoch, completed
    /// repacks)` — writer-side introspection for tests and tools.
    pub fn status(&self) -> (usize, u64, u64) {
        let state = self.writer.lock().expect("writer state poisoned");
        (state.ring.len(), state.epoch, state.repacks)
    }

    /// The effective record of `cell` in the current epoch — the
    /// overlay when the delta touched it, the base record otherwise.
    /// This is the read half of a read-modify-write ingest.
    pub fn cell_record(&self, engine: &StorageEngine, cell: usize) -> CfResult<F::CellRec> {
        let state = self.writer.lock().expect("writer state poisoned");
        let pos = state.base.resolve_cell(cell)?;
        match state.overlays.get(&(pos as u32)) {
            Some(rec) => Ok(rec.clone()),
            None => state.base.inner().file.get(engine, pos),
        }
    }

    /// One consistent writer-side view for persistence: the base
    /// plane, the net delta entries (one per touched position,
    /// ascending — deterministic on-disk order) and the publication
    /// epoch, all captured under a single lock acquisition.
    pub(crate) fn persist_state(&self) -> PersistState<F> {
        let state = self.writer.lock().expect("writer state poisoned");
        let mut deltas: Vec<DeltaRec<F::CellRec>> = state
            .overlays
            .iter()
            .map(|(&pos, rec)| DeltaRec {
                pos,
                rec: rec.clone(),
            })
            .collect();
        deltas.sort_by_key(|d| d.pos);
        (Arc::clone(&state.base), deltas, state.epoch)
    }
}

/// Captures the writer state as an immutable epoch publication,
/// pinning its epoch in the engine's GC domain.
fn make_snapshot<F: FieldModel>(
    engine: &StorageEngine,
    state: &WriterState<F>,
    scan_threshold: Option<f64>,
) -> Arc<EpochSnapshot<F>> {
    Arc::new(EpochSnapshot {
        base: Arc::clone(&state.base),
        overlays: Arc::new(state.overlays.clone()),
        sf_overrides: Arc::new(state.sf_overrides.clone()),
        epoch: state.epoch,
        pin: engine.epoch_gc().pin(state.epoch),
        estimator: state.estimator.clone(),
        scan_threshold,
        qmetrics: OnceLock::new(),
        pmetrics: OnceLock::new(),
    })
}

/// Recomputes a subfield's effective interval — the union of its
/// records' intervals with overlays substituted — exactly as the
/// in-place `update_record` path recomputes it after a write. This is
/// the delta plane's interval summary entry for that subfield.
/// `extra` is a not-yet-applied overlay (the write in flight): the
/// ingest path computes the post-write summary before mutating the
/// overlay map so an I/O error leaves the writer state untouched.
fn effective_sf_interval<F: FieldModel>(
    engine: &StorageEngine,
    base: &IHilbert<F>,
    overlays: &HashMap<u32, F::CellRec>,
    extra: Option<(u32, &F::CellRec)>,
    sf_idx: usize,
) -> CfResult<Interval> {
    let inner = base.inner();
    let sf = inner.subfields[sf_idx];
    let mut union: Option<Interval> = None;
    inner
        .file
        .for_each_in_range(engine, sf.start as usize..sf.end as usize, |idx, rec| {
            let effective = match extra {
                Some((pos, o)) if pos == idx as u32 => F::record_interval(o),
                _ => match overlays.get(&(idx as u32)) {
                    Some(o) => F::record_interval(o),
                    None => F::record_interval(&rec),
                },
            };
            union = Some(match union {
                Some(a) => a.union(effective),
                None => effective,
            });
        })?;
    Ok(union.expect("subfields are non-empty"))
}

/// Planner counters of the snapshot's scan/probe routing (same
/// `planner_plans_total` family [`crate::AdaptiveIndex`] publishes).
struct SnapshotPlannerMetrics {
    probe_plans: Counter,
    scan_plans: Counter,
}

/// One immutable published epoch: frozen base + delta prefix.
///
/// Implements [`ValueIndex`], so it drops into everything that takes
/// one — including [`crate::QueryBatch`] — and merges base + delta
/// answers byte-identically to the sequential oracle (see module
/// docs). While any clone of the snapshot's `Arc` is alive, the pages
/// of its epoch stay allocated (epoch GC pin).
pub struct EpochSnapshot<F: FieldModel> {
    base: Arc<IHilbert<F>>,
    overlays: Arc<HashMap<u32, F::CellRec>>,
    sf_overrides: Arc<HashMap<u32, Interval>>,
    epoch: u64,
    /// Keeps every run retired after this epoch from being recycled
    /// while the snapshot is alive.
    #[allow(dead_code)]
    pin: EpochPin,
    estimator: Option<Arc<SelectivityEstimator>>,
    scan_threshold: Option<f64>,
    qmetrics: OnceLock<QueryMetrics>,
    pmetrics: OnceLock<SnapshotPlannerMetrics>,
}

impl<F: FieldModel> EpochSnapshot<F> {
    /// The publication epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of cell records in the base plane.
    pub fn num_cells(&self) -> usize {
        self.base.inner_len()
    }

    /// The base plane's value domain.
    pub fn value_domain(&self) -> Interval {
        self.base.value_domain()
    }

    /// Number of delta overlays merged into this snapshot's answers.
    pub fn delta_records(&self) -> usize {
        self.overlays.len()
    }

    fn query_metrics(&self, engine: &StorageEngine) -> &QueryMetrics {
        self.qmetrics
            .get_or_init(|| QueryMetrics::wire(engine.metrics(), &self.base.name()))
    }

    /// The effective record at file position `pos`: the overlay when
    /// the delta touched it, the base record otherwise.
    #[inline]
    fn effective(&self, pos: usize, base_rec: F::CellRec) -> F::CellRec {
        match self.overlays.get(&(pos as u32)) {
            Some(o) => o.clone(),
            None => base_rec,
        }
    }

    /// Whether the planner would route `band` to the overlay-aware
    /// full scan.
    fn routes_to_scan(&self, band: Interval) -> bool {
        match (&self.estimator, self.scan_threshold) {
            (Some(est), Some(threshold)) => est.estimate_selectivity(band) >= threshold,
            _ => false,
        }
    }

    /// Index probe: base-plane filter step corrected by the delta's
    /// interval summary, then a coalesced-run estimation pass with
    /// overlay substitution. See the module docs for why each step is
    /// byte-identical to the sequential oracle.
    fn probe_impl(
        &self,
        engine: &StorageEngine,
        band: Interval,
        ranges: &mut Vec<(u32, u32)>,
        runs: &mut Vec<std::ops::Range<usize>>,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let inner = self.base.inner();
        let tracer = engine.metrics().tracer();
        let query_id = tracer.is_enabled().then(|| tracer.next_query_id());
        let query_clock = Stopwatch::start();
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();

        // Filter on the base plane (frozen or paged — whichever the
        // base carries), then correct for overridden subfields: drop
        // base hits whose effective interval left the band, add
        // subfields whose effective interval entered it. The two sets
        // are disjoint by construction, so no dedup is needed, and the
        // result equals the subfield set an in-place-updated tree
        // would retrieve.
        let filter_clock = Stopwatch::start();
        ranges.clear();
        let search = inner.filter_step(engine, band, ranges)?;
        if !self.sf_overrides.is_empty() {
            ranges.retain(|&(start, _)| {
                let sf_idx = inner.pos_to_subfield[start as usize];
                match self.sf_overrides.get(&sf_idx) {
                    Some(iv) => iv.intersects(band),
                    None => true,
                }
            });
            for (&sf_idx, iv) in self.sf_overrides.iter() {
                let sf = inner.subfields[sf_idx as usize];
                if iv.intersects(band) && !sf.interval.intersects(band) {
                    ranges.push((sf.start, sf.end));
                }
            }
        }
        stats.filter_nodes = search.nodes_visited;
        stats.intervals_retrieved = ranges.len();
        stats.filter_pages = (cf_storage::thread_io_stats() - before).logical_reads();
        let filter_ns = filter_clock.elapsed_ns();

        // Estimation: identical coalescing rule as the sequential
        // path, overlay substitution per position.
        let refine_clock = Stopwatch::start();
        ranges.sort_unstable();
        runs.clear();
        for &(s, e) in ranges.iter() {
            match runs.last_mut() {
                Some(last) if s as usize <= last.end => last.end = last.end.max(e as usize),
                _ => runs.push(s as usize..e as usize),
            }
        }
        // Spatial heat mirrors the sequential path: one range bump per
        // coalesced run (examined), one bump per qualifying cell.
        let heat = engine.metrics().heat();
        for run in runs.iter() {
            heat.table(HeatKind::Examined)
                .bump_range(run.start as u64, run.end as u64);
        }
        inner.file.for_each_in_ranges(engine, runs, |idx, rec| {
            let rec = self.effective(idx, rec);
            stats.cells_examined += 1;
            if F::record_interval(&rec).intersects(band) {
                stats.cells_qualifying += 1;
                heat.table(HeatKind::Qualifying).bump(idx as u64);
                for region in F::record_band_region(&rec, band) {
                    stats.num_regions += 1;
                    stats.area += region.area();
                    sink(region);
                }
            }
        })?;
        stats.io = cf_storage::thread_io_stats() - before;
        let refine_ns = refine_clock.elapsed_ns();
        let query_ns = query_clock.elapsed_ns();
        self.query_metrics(engine)
            .publish(&stats, band, query_ns, filter_ns, refine_ns);
        if let Some(query_id) = query_id {
            let phases = [
                TraceEvent {
                    query_id,
                    phase: "filter",
                    pages: stats.filter_pages,
                    nanos: filter_ns,
                    depth: 1,
                },
                TraceEvent {
                    query_id,
                    phase: "refine",
                    pages: stats.io.logical_reads() - stats.filter_pages,
                    nanos: refine_ns,
                    depth: 1,
                },
            ];
            for event in &phases {
                tracer.record(*event);
            }
            tracer.record(TraceEvent {
                query_id,
                phase: "query",
                pages: stats.io.logical_reads(),
                nanos: query_ns,
                depth: 0,
            });
            let explain = crate::explain_record(
                query_id,
                &self.base.name(),
                "probe",
                if inner.is_frozen() { "frozen" } else { "paged" },
                inner.curve_label(),
                band,
                &stats,
                query_ns,
                filter_ns,
                refine_ns,
                self.epoch,
            );
            engine.metrics().recorder().record(
                band.lo,
                band.hi,
                if inner.is_frozen() { "frozen" } else { "paged" },
                inner.curve_label(),
                self.epoch,
                answer_digest(
                    stats.cells_examined as u64,
                    stats.cells_qualifying as u64,
                    stats.num_regions as u64,
                    stats.area,
                ),
            );
            tracer.finish_query_explained(query_id, query_ns, &phases, Some(explain));
        }
        Ok(stats)
    }

    /// Planner fallback: sequential overlay-aware scan of the base
    /// cell file (wide bands where a probe would retrieve most of it
    /// anyway). Qualifying records are visited in the same ascending
    /// position order as the probe, so the area bits agree.
    fn scan_impl(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let inner = self.base.inner();
        let tracer = engine.metrics().tracer();
        let query_id = tracer.is_enabled().then(|| tracer.next_query_id());
        let query_clock = Stopwatch::start();
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();
        let heat = engine.metrics().heat();
        heat.table(HeatKind::Examined)
            .bump_range(0, inner.file.len() as u64);
        inner
            .file
            .for_each_in_range(engine, 0..inner.file.len(), |idx, rec| {
                let rec = self.effective(idx, rec);
                stats.cells_examined += 1;
                if F::record_interval(&rec).intersects(band) {
                    stats.cells_qualifying += 1;
                    heat.table(HeatKind::Qualifying).bump(idx as u64);
                    for region in F::record_band_region(&rec, band) {
                        stats.num_regions += 1;
                        stats.area += region.area();
                        sink(region);
                    }
                }
            })?;
        stats.io = cf_storage::thread_io_stats() - before;
        let query_ns = query_clock.elapsed_ns();
        self.query_metrics(engine)
            .publish(&stats, band, query_ns, 0, query_ns);
        if let Some(query_id) = query_id {
            let phases = [TraceEvent {
                query_id,
                phase: "scan",
                pages: stats.io.logical_reads(),
                nanos: query_ns,
                depth: 1,
            }];
            for event in &phases {
                tracer.record(*event);
            }
            tracer.record(TraceEvent {
                query_id,
                phase: "query",
                pages: stats.io.logical_reads(),
                nanos: query_ns,
                depth: 0,
            });
            let explain = crate::explain_record(
                query_id,
                &self.base.name(),
                "scan",
                "cells",
                inner.curve_label(),
                band,
                &stats,
                query_ns,
                0,
                query_ns,
                self.epoch,
            );
            engine.metrics().recorder().record(
                band.lo,
                band.hi,
                "cells",
                inner.curve_label(),
                self.epoch,
                answer_digest(
                    stats.cells_examined as u64,
                    stats.cells_qualifying as u64,
                    stats.num_regions as u64,
                    stats.area,
                ),
            );
            tracer.finish_query_explained(query_id, query_ns, &phases, Some(explain));
        }
        Ok(stats)
    }

    fn query_dispatch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        ranges: &mut Vec<(u32, u32)>,
        runs: &mut Vec<std::ops::Range<usize>>,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        if self.estimator.is_some() {
            let pm = self.pmetrics.get_or_init(|| {
                let registry = engine.metrics();
                SnapshotPlannerMetrics {
                    probe_plans: registry
                        .counter_with("planner_plans_total", &[("plan", "index_probe")]),
                    scan_plans: registry
                        .counter_with("planner_plans_total", &[("plan", "full_scan")]),
                }
            });
            if self.routes_to_scan(band) {
                pm.scan_plans.inc();
                return self.scan_impl(engine, band, sink);
            }
            pm.probe_plans.inc();
        }
        self.probe_impl(engine, band, ranges, runs, sink)
    }
}

impl<F: FieldModel> ValueIndex for EpochSnapshot<F> {
    fn name(&self) -> String {
        self.base.name()
    }

    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats> {
        let mut ranges = Vec::new();
        let mut runs = Vec::new();
        self.query_dispatch(engine, band, &mut ranges, &mut runs, sink)
    }

    fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        scratch: &mut QueryScratch,
    ) -> CfResult<QueryStats> {
        let QueryScratch { ranges, runs, .. } = scratch;
        self.query_dispatch(engine, band, ranges, runs, &mut |_| {})
    }

    fn index_pages(&self) -> usize {
        self.base.index_pages()
    }

    fn data_pages(&self) -> usize {
        self.base.data_pages()
    }

    fn num_intervals(&self) -> usize {
        self.base.num_intervals()
    }
}
