//! Subfield indexing for 3-D volume fields.
//!
//! The same I-Hilbert construction in three spatial dimensions: cells
//! are linearized by the **3-D Hilbert value** of their centers
//! (Skilling transform), grouped into subfields with the identical cost
//! function, and subfield intervals indexed in the 1-D R\*-tree. The
//! estimation step reports exact answer *volumes* via the closed-form
//! tetrahedral band-volume (see [`cf_field::VolumeCellRecord`]).

use crate::stats::QueryStats;
use crate::subfield::{build_subfields, Subfield, SubfieldConfig};
use cf_field::{Grid3Field, VolumeCellRecord};
use cf_geom::Interval;
use cf_rtree::{PagedRTree, RStarTree, RTreeConfig};
use cf_sfc::hilbert_index_nd;
use cf_storage::{CfResult, RecordFile, StorageEngine};

/// Bits per axis for the 3-D Hilbert ordering (1024³ positions).
const BITS_3D: u32 = 10;

/// The volume-field I-Hilbert index.
pub struct VolumeIHilbert {
    file: RecordFile<VolumeCellRecord>,
    tree: PagedRTree<1>,
    num_subfields: usize,
}

impl VolumeIHilbert {
    /// Builds the index with paper-default subfield parameters.
    pub fn build(engine: &StorageEngine, field: &Grid3Field) -> CfResult<Self> {
        Self::build_with(engine, field, SubfieldConfig::default())
    }

    /// Builds the index with explicit cost-function parameters.
    pub fn build_with(
        engine: &StorageEngine,
        field: &Grid3Field,
        config: SubfieldConfig,
    ) -> CfResult<Self> {
        let n = field.num_cells();
        let (cx, cy, cz) = field.cell_dims();
        let max_dim = cx.max(cy).max(cz) as f64;
        let side = (1u64 << BITS_3D) - 1;

        // 3-D Hilbert order of cell centers.
        let mut keyed: Vec<(u128, usize)> = (0..n)
            .map(|cell| {
                let c = field.cell_centroid(cell);
                let q: Vec<u64> = c
                    .iter()
                    .map(|&v| ((v / max_dim).clamp(0.0, 1.0) * side as f64) as u64)
                    .collect();
                (hilbert_index_nd(&q, BITS_3D), cell)
            })
            .collect();
        keyed.sort_unstable();
        let order: Vec<usize> = keyed.into_iter().map(|(_, c)| c).collect();

        let intervals: Vec<Interval> = order.iter().map(|&c| field.cell_interval(c)).collect();
        let subfields = build_subfields(&intervals, config);

        let records: Vec<VolumeCellRecord> = order.iter().map(|&c| field.cell_record(c)).collect();
        let file = RecordFile::create(engine, records)?;

        let mut tree: RStarTree<1> = RStarTree::new(RTreeConfig::page_sized::<1>());
        for sf in &subfields {
            tree.insert(sf.interval.into(), sf.pack());
        }
        let tree = PagedRTree::persist(&tree, engine)?;
        Ok(Self {
            file,
            tree,
            num_subfields: subfields.len(),
        })
    }

    /// Number of subfields.
    pub fn num_subfields(&self) -> usize {
        self.num_subfields
    }

    /// Pages occupied by the index.
    pub fn index_pages(&self) -> usize {
        self.tree.num_pages()
    }

    /// Pages occupied by the cell file.
    pub fn data_pages(&self) -> usize {
        self.file.num_pages()
    }

    /// Volume value query: filter subfields, read cell runs, and return
    /// statistics where [`QueryStats::area`] is the exact answer
    /// *volume* (in cell units).
    pub fn query_stats(&self, engine: &StorageEngine, band: Interval) -> CfResult<QueryStats> {
        let before = cf_storage::thread_io_stats();
        let mut stats = QueryStats::default();
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let search = self.tree.search(engine, &band.into(), |data, mbr| {
            let sf = Subfield::unpack(data, Interval::new(mbr.lo[0], mbr.hi[0]));
            ranges.push((sf.start, sf.end));
        })?;
        stats.filter_nodes = search.nodes_visited;
        stats.intervals_retrieved = ranges.len();
        stats.filter_pages = (cf_storage::thread_io_stats() - before).logical_reads();
        ranges.sort_unstable();
        for (start, end) in ranges {
            self.file
                .for_each_in_range(engine, start as usize..end as usize, |_, rec| {
                    stats.cells_examined += 1;
                    if rec.interval().intersects(band) {
                        stats.cells_qualifying += 1;
                        let v = rec.band_volume(band);
                        if v > 0.0 {
                            stats.num_regions += 1;
                            stats.area += v;
                        }
                    }
                })?;
        }
        stats.io = cf_storage::thread_io_stats() - before;
        Ok(stats)
    }
}

/// Scan baseline over a native-order volume cell file.
pub fn volume_linear_scan(
    engine: &StorageEngine,
    file: &RecordFile<VolumeCellRecord>,
    band: Interval,
) -> CfResult<QueryStats> {
    let before = cf_storage::thread_io_stats();
    let mut stats = QueryStats::default();
    file.for_each_in_range(engine, 0..file.len(), |_, rec| {
        stats.cells_examined += 1;
        if rec.interval().intersects(band) {
            stats.cells_qualifying += 1;
            let v = rec.band_volume(band);
            if v > 0.0 {
                stats.num_regions += 1;
                stats.area += v;
            }
        }
    })?;
    stats.io = cf_storage::thread_io_stats() - before;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layered_field(n: usize) -> Grid3Field {
        // Smooth layered structure: w = z + 0.3 sin(x) cos(y).
        let v = n + 1;
        let mut values = Vec::new();
        for z in 0..v {
            for y in 0..v {
                for x in 0..v {
                    let (fx, fy) = (x as f64 * 0.4, y as f64 * 0.4);
                    values.push(z as f64 + 0.3 * fx.sin() * fy.cos());
                }
            }
        }
        Grid3Field::from_values(v, v, v, values)
    }

    #[test]
    fn matches_linear_scan() {
        let engine = StorageEngine::in_memory();
        let field = layered_field(12);
        let index = VolumeIHilbert::build(&engine, &field).expect("build");
        let records: Vec<VolumeCellRecord> = (0..field.num_cells())
            .map(|c| field.cell_record(c))
            .collect();
        let scan_file = RecordFile::create(&engine, records).expect("create");

        let dom = field.value_domain();
        for t in [0.0, 0.25, 0.5, 0.9] {
            let band = Interval::new(dom.denormalize(t), dom.denormalize((t + 0.1).min(1.0)));
            let a = volume_linear_scan(&engine, &scan_file, band).expect("scan");
            let b = index.query_stats(&engine, band).expect("query");
            assert_eq!(a.cells_qualifying, b.cells_qualifying, "band {band}");
            assert!(
                (a.area - b.area).abs() < 1e-9 * a.area.max(1.0),
                "band {band}: {} vs {}",
                a.area,
                b.area
            );
        }
    }

    #[test]
    fn layered_data_forms_few_subfields() {
        let engine = StorageEngine::in_memory();
        let field = layered_field(16);
        let index = VolumeIHilbert::build(&engine, &field).expect("build");
        assert!(
            index.num_subfields() < field.num_cells() / 4,
            "{} subfields for {} cells",
            index.num_subfields(),
            field.num_cells()
        );
    }

    #[test]
    fn selective_query_beats_scan_on_pages() {
        let engine = StorageEngine::in_memory();
        let field = layered_field(16);
        let index = VolumeIHilbert::build(&engine, &field).expect("build");
        let records: Vec<VolumeCellRecord> = (0..field.num_cells())
            .map(|c| field.cell_record(c))
            .collect();
        let scan_file = RecordFile::create(&engine, records).expect("create");

        let dom = field.value_domain();
        let band = Interval::new(dom.denormalize(0.98), dom.hi);
        engine.clear_cache();
        let a = volume_linear_scan(&engine, &scan_file, band).expect("scan");
        engine.clear_cache();
        let b = index.query_stats(&engine, band).expect("query");
        assert_eq!(a.cells_qualifying, b.cells_qualifying);
        assert!(
            b.io.logical_reads() < a.io.logical_reads(),
            "index {} vs scan {}",
            b.io.logical_reads(),
            a.io.logical_reads()
        );
        assert!(b.cells_examined < field.num_cells() / 4);
    }

    #[test]
    fn band_volumes_tile_the_domain() {
        let engine = StorageEngine::in_memory();
        let field = layered_field(8);
        let index = VolumeIHilbert::build(&engine, &field).expect("build");
        let dom = field.value_domain();
        let cuts = 5;
        let mut total = 0.0;
        for i in 0..cuts {
            let band = Interval::new(
                dom.denormalize(i as f64 / cuts as f64),
                dom.denormalize((i + 1) as f64 / cuts as f64),
            );
            total += index.query_stats(&engine, band).expect("query").area;
        }
        let volume = field.num_cells() as f64;
        assert!(
            (total - volume).abs() < 1e-6 * volume,
            "bands tile {total} vs {volume}"
        );
    }
}
