//! Conventional (Q1) point queries through a spatial R\*-tree.
//!
//! Paper §2.2.1: "we find firstly the cell c′ containing the query point
//! v′ and we apply the corresponding interpolation function on the
//! neighbor sample points … these queries can be easily supported by a
//! conventional spatial indexing method, such as R-tree or its
//! variants." This module is that conventional path, provided so the
//! library covers both query classes of §2.2.

use cf_field::FieldModel;
use cf_geom::{Aabb, Point2};
use cf_rtree::{PagedRTree, RStarTree, RTreeConfig};
use cf_storage::{CfResult, IoStats, RecordFile, StorageEngine};
use std::marker::PhantomData;

/// Statistics of one point query.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointQueryStats {
    /// Index nodes visited.
    pub filter_nodes: u64,
    /// Candidate cells whose MBR contains the point.
    pub candidates: usize,
    /// I/O performed.
    pub io: IoStats,
}

/// A spatial index over cell MBRs answering "value at point p".
pub struct PointIndex<F: FieldModel> {
    file: RecordFile<F::CellRec>,
    tree: PagedRTree<2>,
    _field: PhantomData<fn() -> F>,
}

impl<F: FieldModel> PointIndex<F> {
    /// Builds the spatial index (2-D R\*-tree over cell bounding boxes).
    pub fn build(engine: &StorageEngine, field: &F) -> CfResult<Self> {
        let n = field.num_cells();
        let records: Vec<F::CellRec> = (0..n).map(|c| field.cell_record(c)).collect();
        let file = RecordFile::create(engine, records)?;
        let mut tree: RStarTree<2> = RStarTree::new(RTreeConfig::page_sized::<2>());
        for cell in 0..n {
            tree.insert(field.cell_bbox(cell), cell as u64);
        }
        let tree = PagedRTree::persist(&tree, engine)?;
        Ok(Self {
            file,
            tree,
            _field: PhantomData,
        })
    }

    /// Q1 query: the field value at `p`, or `None` outside the domain.
    ///
    /// Cell MBRs of adjacent cells share boundaries, so a boundary point
    /// may have several candidates; the first cell that actually
    /// contains the point answers (their interpolants agree on shared
    /// boundaries because the field is continuous).
    pub fn value_at(
        &self,
        engine: &StorageEngine,
        p: Point2,
    ) -> CfResult<(Option<f64>, PointQueryStats)> {
        let before = cf_storage::thread_io_stats();
        let mut stats = PointQueryStats::default();
        let query = Aabb::point([p.x, p.y]);
        let mut candidates: Vec<u64> = Vec::new();
        let search = self
            .tree
            .search(engine, &query, |cell, _| candidates.push(cell))?;
        stats.filter_nodes = search.nodes_visited;
        candidates.sort_unstable();
        stats.candidates = candidates.len();
        let mut answer = None;
        for cell in candidates {
            let rec = self.file.get(engine, cell as usize)?;
            if let Some(v) = F::record_value_at(&rec, p) {
                answer = Some(v);
                break;
            }
        }
        stats.io = cf_storage::thread_io_stats() - before;
        Ok((answer, stats))
    }

    /// Pages occupied by the spatial index.
    pub fn index_pages(&self) -> usize {
        self.tree.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_field::{GridField, TinField};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn grid_point_queries_match_field() {
        let vw = 17;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push((x * x + y) as f64);
            }
        }
        let field = GridField::from_values(vw, vw, values);
        let engine = StorageEngine::in_memory();
        let index = PointIndex::build(&engine, &field).expect("build");

        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = Point2::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
            let (got, stats) = index.value_at(&engine, p).expect("query");
            let want = field.value_at(p);
            assert!(stats.candidates >= 1);
            match (got, want) {
                (Some(g), Some(w)) => assert!((g - w).abs() < 1e-9, "at {p}"),
                other => panic!("mismatch at {p}: {other:?}"),
            }
        }
        // Outside the domain.
        let (got, _) = index
            .value_at(&engine, Point2::new(100.0, 0.0))
            .expect("query");
        assert_eq!(got, None);
    }

    #[test]
    fn tin_point_queries_match_field() {
        let mut rng = StdRng::seed_from_u64(17);
        let points: Vec<Point2> = (0..120)
            .map(|_| Point2::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let values: Vec<f64> = points.iter().map(|p| p.x * 2.0 - p.y).collect();
        let field = TinField::from_samples(&points, values).unwrap();
        let engine = StorageEngine::in_memory();
        let index = PointIndex::build(&engine, &field).expect("build");

        for _ in 0..60 {
            let p = Point2::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            let (got, _) = index.value_at(&engine, p).expect("query");
            let want = field.value_at(p);
            match (got, want) {
                (Some(g), Some(w)) => assert!((g - w).abs() < 1e-6, "at {p}: {g} vs {w}"),
                (None, None) => {}
                other => panic!("mismatch at {p}: {other:?}"),
            }
        }
    }

    #[test]
    fn search_is_sublinear() {
        let vw = 65;
        let values = vec![0.0; vw * vw];
        let field = GridField::from_values(vw, vw, values);
        let engine = StorageEngine::in_memory();
        let index = PointIndex::build(&engine, &field).expect("build");
        let (_, stats) = index
            .value_at(&engine, Point2::new(32.4, 18.7))
            .expect("query");
        assert!(
            (stats.filter_nodes as usize) < index.index_pages() / 4,
            "visited {} of {} index pages",
            stats.filter_nodes,
            index.index_pages()
        );
    }
}
