//! Value-domain indexes for continuous field databases — the primary
//! contribution of the EDBT 2002 paper.
//!
//! A *field value query* (Q2) asks "where does the field take values in
//! `[w′, w″]`?". Processing it means (1) a **filtering step** that finds
//! every cell whose value interval intersects the query interval, and
//! (2) an **estimation step** that reads those cells and computes the
//! exact answer regions by inverse interpolation. This crate implements
//! the paper's three evaluated methods plus its predecessor, all against
//! the same paged storage engine:
//!
//! * [`LinearScan`] — no index: scan every cell page (the baseline);
//! * [`IAll`] — one 1-D R\*-tree entry per cell interval (§3, "I-All");
//! * [`IHilbert`] — the contribution: cells linearized by the Hilbert
//!   value of their centers, greedily grouped into **subfields** by the
//!   cost function `C = P / SI` (§3.1), with only subfield intervals in
//!   the 1-D R\*-tree and each subfield stored as a *contiguous* record
//!   range of the cell file;
//! * [`IntervalQuadtree`] — the authors' earlier CIKM 1999 method
//!   (quadtree space division with a fixed interval-size threshold),
//!   included as the division-strategy ablation.
//!
//! All methods implement [`ValueIndex`], return identical answers, and
//! report per-query [`QueryStats`] (pages read, cells examined, answer
//! area), so the benchmarks compare exactly what the paper compared.
//!
//! Also provided: [`PointIndex`] for conventional Q1 queries (a 2-D
//! R\*-tree over cell MBRs, §2.2.1), [`VectorIHilbert`] extending
//! subfields to `K`-dimensional value domains (§5 future work), and
//! [`QueryBatch`] — a parallel batch executor fanning Q2 queries across
//! a scoped thread pool over any [`ValueIndex`], with exact per-query
//! and aggregated statistics ([`BatchReport`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
mod batch;
mod catalog;
mod iall;
mod ihilbert;
mod ingest;
mod iquad;
mod linear;
mod order;
mod par;
mod planner;
mod q1;
mod sfindex;
mod stats;
mod subfield;
mod vector;
mod volume3d;

pub use advisor::{
    expected_pages_spatial, CostModelReport, DecileRow, RepackOutcome, SpatialProfile,
    WorkloadProfile,
};
pub use batch::{BatchQueryResult, BatchReport, QueryBatch};
pub use catalog::PosRecord;
pub use iall::IAll;
pub use ihilbert::{CurveChoice, IHilbert, IHilbertConfig, QueryPlane, TreeBuild};
pub use ingest::{DeltaRec, EpochSnapshot, IngestConfig, LiveIngest, RepackReport};
pub use iquad::IntervalQuadtree;
pub use linear::LinearScan;
pub use order::{cell_order, par_cell_order, CURVE_ORDER};
pub use planner::{AdaptiveIndex, Plan, SelectivityEstimator};
pub use q1::{PointIndex, PointQueryStats};
pub use stats::{QueryScratch, QueryStats, ValueIndex};
pub use subfield::{build_subfields, Subfield, SubfieldConfig};
pub use vector::{vector_linear_scan, VectorIHilbert};
pub use volume3d::{volume_linear_scan, VolumeIHilbert};

/// Assembles the structured EXPLAIN record of one executed query from
/// the stats the pipeline already gathered — allocation-free (the
/// string-ish fields are inline [`cf_storage::Label`]s).
#[allow(clippy::too_many_arguments)]
pub(crate) fn explain_record(
    query_id: u64,
    index: &str,
    plan: &'static str,
    plane: &'static str,
    curve: &'static str,
    band: cf_geom::Interval,
    stats: &QueryStats,
    query_ns: u64,
    filter_ns: u64,
    refine_ns: u64,
    epoch: u64,
) -> cf_storage::ExplainRecord {
    cf_storage::ExplainRecord {
        query_id,
        index: cf_storage::Label::new(index),
        plan,
        plane,
        curve: cf_storage::Label::new(curve),
        band_lo: band.lo,
        band_hi: band.hi,
        subfields: stats.intervals_retrieved as u64,
        cells_examined: stats.cells_examined as u64,
        cells_qualifying: stats.cells_qualifying as u64,
        filter_pages: stats.filter_pages,
        refine_pages: stats.io.logical_reads() - stats.filter_pages,
        filter_ns,
        refine_ns,
        total_ns: query_ns,
        epoch,
        pool_hits: stats.io.pool_hits,
        pool_misses: stats.io.pool_misses,
    }
}
