//! Parallel batch query executor (Q2 at scale).
//!
//! The paper measures one query at a time; a production field store
//! serves many concurrent band queries. [`QueryBatch`] fans a slice of
//! queries across a scoped thread pool running against a shared
//! [`StorageEngine`] — the sharded buffer pool in `cf-storage` keeps the
//! workers from serializing on a single frame lock, and the per-thread
//! I/O tally (`cf_storage::thread_io_stats`) keeps every query's
//! [`QueryStats`] exact even while its neighbors fault pages on the same
//! engine.
//!
//! The executor is *plan-agnostic*: it runs any [`ValueIndex`] — the
//! paper's three methods, the Interval-Quadtree ablation, or the
//! planner's [`crate::AdaptiveIndex`], which re-plans per query — so one
//! batch can be replayed across methods for exact comparisons.
//!
//! Queries are claimed from an atomic cursor (work stealing), so skewed
//! workloads (a few wide bands among many selective ones) don't idle
//! workers the way a static partition would.

use crate::stats::{QueryStats, ValueIndex};
use cf_geom::{Interval, Polygon};
use cf_storage::{CfResult, Counter, IoStats, StorageEngine};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A batch of interval queries plus execution knobs.
///
/// ```
/// use cf_index::{IHilbert, QueryBatch};
/// use cf_field::GridField;
/// use cf_geom::Interval;
/// use cf_storage::StorageEngine;
///
/// # fn main() -> cf_storage::CfResult<()> {
/// let engine = StorageEngine::in_memory();
/// let field = GridField::from_values(3, 3, vec![0., 1., 2., 3., 4., 5., 6., 7., 8.]);
/// let index = IHilbert::build(&engine, &field)?;
/// let queries = vec![Interval::new(1.0, 2.0), Interval::new(5.0, 7.0)];
/// let report = QueryBatch::new(queries).threads(2).run(&engine, &index)?;
/// assert_eq!(report.results.len(), 2);
/// assert!(report.total_io().logical_reads() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QueryBatch {
    queries: Vec<Interval>,
    threads: usize,
    collect_regions: bool,
}

impl QueryBatch {
    /// A batch over `queries`, defaulting to one worker per available
    /// CPU and discarding region geometry.
    pub fn new(queries: Vec<Interval>) -> Self {
        Self {
            queries,
            threads: 0,
            collect_regions: false,
        }
    }

    /// Sets the worker count; `0` (the default) uses
    /// [`std::thread::available_parallelism`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Keep each query's answer regions in its [`BatchQueryResult`]
    /// (off by default — the analytics path needs only counts + area).
    pub fn collect_regions(mut self, yes: bool) -> Self {
        self.collect_regions = yes;
        self
    }

    /// Runs the batch against `index`, returning per-query results in
    /// query order plus batch-level aggregates.
    ///
    /// Each query runs the index's ordinary sequential pipeline on one
    /// worker; parallelism is across queries, so the per-query answers
    /// (counts, areas, regions) are identical to calling
    /// [`ValueIndex::query_with`] in a loop.
    ///
    /// If any query fails (injected fault, corrupt page), the batch
    /// aborts and returns the first failing worker's error; partial
    /// results are discarded.
    pub fn run(&self, engine: &StorageEngine, index: &dyn ValueIndex) -> CfResult<BatchReport> {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        let threads = threads.min(self.queries.len()).max(1);

        let mut results: Vec<Option<BatchQueryResult>> = Vec::new();
        results.resize_with(self.queries.len(), || None);
        let t0 = Instant::now();

        // Executor metrics: how deep the unclaimed queue is right now,
        // and how much wall time each worker spent inside queries (their
        // ratio to batch wall time is the utilization).
        let registry = engine.metrics();
        let queue_depth = registry.gauge("batch_queue_depth");
        queue_depth.set(self.queries.len() as f64);
        let busy_counters: Vec<Counter> = (0..threads)
            .map(|w| {
                registry.counter_with("batch_worker_busy_ns_total", &[("worker", &w.to_string())])
            })
            .collect();

        let cursor = AtomicUsize::new(0);
        let slots = std::sync::Mutex::new(&mut results);
        let mut first_err = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let busy = &busy_counters[w];
                    let queue_depth = &queue_depth;
                    let cursor = &cursor;
                    let slots = &slots;
                    scope.spawn(move || -> CfResult<()> {
                        // One scratch per worker: the per-query transient
                        // vectors keep their capacity across the whole run.
                        let mut scratch = crate::stats::QueryScratch::default();
                        let mut busy_ns = 0u64;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&band) = self.queries.get(i) else {
                                break;
                            };
                            queue_depth.set(self.queries.len().saturating_sub(i + 1) as f64);
                            let qt0 = Instant::now();
                            let mut regions = Vec::new();
                            let stats = if self.collect_regions {
                                index.query_with(engine, band, &mut |p| regions.push(p))?
                            } else {
                                index.query_stats_scratch(engine, band, &mut scratch)?
                            };
                            let result = BatchQueryResult {
                                band,
                                stats,
                                wall: qt0.elapsed(),
                                regions,
                            };
                            busy_ns += result.wall.as_nanos() as u64;
                            slots.lock().expect("batch result lock poisoned")[i] = Some(result);
                        }
                        busy.add(busy_ns);
                        Ok(())
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }

        Ok(BatchReport {
            method: index.name(),
            threads,
            wall: t0.elapsed(),
            results: results
                .into_iter()
                .map(|r| r.expect("every query produces a result"))
                .collect(),
        })
    }
}

/// One query's outcome inside a batch.
#[derive(Debug, Clone)]
pub struct BatchQueryResult {
    /// The query band.
    pub band: Interval,
    /// Full per-query statistics (I/O exact, via the thread tally).
    pub stats: QueryStats,
    /// Wall time of this query on its worker.
    pub wall: Duration,
    /// Answer regions ([`QueryBatch::collect_regions`]; empty otherwise).
    pub regions: Vec<Polygon>,
}

/// Aggregated outcome of a [`QueryBatch::run`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Name of the method that ran the batch.
    pub method: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Per-query results, in the order the queries were given.
    pub results: Vec<BatchQueryResult>,
}

impl BatchReport {
    /// Sum of every query's I/O.
    pub fn total_io(&self) -> IoStats {
        self.results
            .iter()
            .fold(IoStats::default(), |acc, r| acc + r.stats.io)
    }

    /// Sum of cells examined across the batch.
    pub fn total_cells_examined(&self) -> usize {
        self.results.iter().map(|r| r.stats.cells_examined).sum()
    }

    /// Sum of qualifying cells across the batch.
    pub fn total_cells_qualifying(&self) -> usize {
        self.results.iter().map(|r| r.stats.cells_qualifying).sum()
    }

    /// Sum of intervals (subfields) retrieved by the filter steps.
    pub fn total_intervals_retrieved(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.stats.intervals_retrieved)
            .sum()
    }

    /// Mean per-query wall time.
    pub fn mean_query_wall(&self) -> Duration {
        if self.results.is_empty() {
            return Duration::ZERO;
        }
        self.results.iter().map(|r| r.wall).sum::<Duration>() / self.results.len() as u32
    }

    /// Largest single-query wall time.
    pub fn max_query_wall(&self) -> Duration {
        self.results
            .iter()
            .map(|r| r.wall)
            .max()
            .unwrap_or_default()
    }

    /// Completed queries per second of batch wall time.
    pub fn queries_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let io = self.total_io();
        write!(
            f,
            "{}: {} queries on {} threads in {:.2?} ({:.0} q/s) — \
             pages {} (disk {}), subfields {}, cells {}/{}, \
             per-query wall mean {:.2?} max {:.2?}",
            self.method,
            self.results.len(),
            self.threads,
            self.wall,
            self.queries_per_second(),
            io.logical_reads(),
            io.disk_reads,
            self.total_intervals_retrieved(),
            self.total_cells_qualifying(),
            self.total_cells_examined(),
            self.mean_query_wall(),
            self.max_query_wall(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ihilbert::IHilbert;
    use crate::linear::LinearScan;
    use cf_field::GridField;

    fn wavy_field(n: usize) -> GridField {
        let vw = n + 1;
        let mut values = Vec::new();
        for y in 0..vw {
            for x in 0..vw {
                values.push((x as f64 * 0.4).sin() * 30.0 + (y as f64 * 0.3).cos() * 20.0);
            }
        }
        GridField::from_values(vw, vw, values)
    }

    fn bands() -> Vec<Interval> {
        (0..40)
            .map(|i| {
                let lo = -50.0 + i as f64 * 2.0;
                Interval::new(lo, lo + 7.0)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_loop_exactly() {
        let engine = StorageEngine::in_memory();
        let field = wavy_field(32);
        let index = IHilbert::build(&engine, &field).expect("build");
        let queries = bands();

        let report = QueryBatch::new(queries.clone())
            .threads(4)
            .collect_regions(true)
            .run(&engine, &index)
            .expect("run");
        assert_eq!(report.results.len(), queries.len());
        assert_eq!(report.threads, 4);

        for (i, q) in queries.iter().enumerate() {
            let r = &report.results[i];
            assert_eq!(r.band, *q, "results keep query order");
            let (want, want_regions) = index.query_regions(&engine, *q).expect("query");
            assert_eq!(r.stats.cells_examined, want.cells_examined);
            assert_eq!(r.stats.cells_qualifying, want.cells_qualifying);
            assert_eq!(r.stats.num_regions, want.num_regions);
            assert_eq!(
                r.stats.area.to_bits(),
                want.area.to_bits(),
                "area bit-exact"
            );
            assert_eq!(r.regions.len(), want_regions.len());
            for (a, b) in r.regions.iter().zip(&want_regions) {
                assert_eq!(a, b, "regions bit-exact");
            }
        }
    }

    #[test]
    fn per_query_io_is_exact_under_concurrency() {
        let engine = StorageEngine::in_memory();
        let field = wavy_field(48);
        let index = IHilbert::build(&engine, &field).expect("build");
        let queries = bands();

        // Warm the cache fully, then batch: per-query accounting must
        // show zero disk reads and hits exactly equal to a sequential
        // warm run, even with 8 workers interleaving.
        for q in &queries {
            index.query_stats(&engine, *q).expect("warmup query");
        }
        let warm: Vec<QueryStats> = queries
            .iter()
            .map(|q| index.query_stats(&engine, *q).expect("query"))
            .collect();
        let report = QueryBatch::new(queries)
            .threads(8)
            .run(&engine, &index)
            .expect("run");
        for (r, w) in report.results.iter().zip(&warm) {
            assert_eq!(r.stats.io.disk_reads, 0, "warm batch must not fault");
            assert_eq!(r.stats.io.logical_reads(), w.io.logical_reads());
            assert_eq!(r.stats.filter_pages, w.filter_pages);
        }
        assert_eq!(report.total_io().disk_reads, 0);
    }

    #[test]
    fn single_thread_and_empty_batch_work() {
        let engine = StorageEngine::in_memory();
        let field = wavy_field(8);
        let index = LinearScan::build(&engine, &field).expect("build");

        let empty = QueryBatch::new(Vec::new())
            .run(&engine, &index)
            .expect("run");
        assert!(empty.results.is_empty());
        assert_eq!(empty.queries_per_second(), 0.0);
        assert_eq!(empty.total_io(), IoStats::default());

        let one = QueryBatch::new(vec![Interval::new(0.0, 5.0)])
            .threads(1)
            .run(&engine, &index)
            .expect("run");
        assert_eq!(one.results.len(), 1);
        assert_eq!(one.threads, 1);
        let display = format!("{one}");
        assert!(display.contains("LinearScan"));
        assert!(display.contains("1 queries"));
    }

    #[test]
    fn thread_count_is_capped_by_query_count() {
        let engine = StorageEngine::in_memory();
        let field = wavy_field(8);
        let index = LinearScan::build(&engine, &field).expect("build");
        let report = QueryBatch::new(vec![Interval::new(0.0, 1.0); 3])
            .threads(16)
            .run(&engine, &index)
            .expect("run");
        assert_eq!(report.threads, 3);
    }
}
