//! The common query interface and per-query statistics.

use cf_geom::{Interval, Polygon};
use cf_storage::{
    CfResult, Counter, Histogram, IoStats, MetricsRegistry, SloTracker, StorageEngine,
};

/// Everything a value query reports besides its answer regions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Cells read in the estimation step (the paper's *candidate cells*
    /// plus, for subfield methods, the non-qualifying cells co-located in
    /// retrieved subfields).
    pub cells_examined: usize,
    /// Cells whose value interval actually intersects the query band.
    pub cells_qualifying: usize,
    /// Answer regions produced by the estimation step.
    pub num_regions: usize,
    /// Total area of the answer regions.
    pub area: f64,
    /// Index nodes visited during the filtering step (0 for LinearScan).
    pub filter_nodes: u64,
    /// Intervals the filtering step retrieved (subfields for the
    /// subfield methods, individual cells for I-All, 0 for LinearScan).
    pub intervals_retrieved: usize,
    /// Logical page reads spent in the filtering step alone (index
    /// traversal); `io.logical_reads() - filter_pages` is the
    /// estimation-step cost.
    pub filter_pages: u64,
    /// I/O performed by the whole query (filter + estimate).
    pub io: IoStats,
}

/// Reusable buffers for the query hot path.
///
/// Every query allocates a handful of transient vectors (retrieved
/// ranges, coalesced runs, candidate lists). A caller running many
/// queries — the batch executor gives each worker thread one of these —
/// can pass the same scratch to [`ValueIndex::query_stats_scratch`] so
/// those vectors keep their capacity from query to query instead of
/// being reallocated.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Retrieved `[start, end)` record ranges (subfield filter step).
    pub(crate) ranges: Vec<(u32, u32)>,
    /// Coalesced record runs handed to the estimation step.
    pub(crate) runs: Vec<std::ops::Range<usize>>,
    /// Candidate payloads (I-All's per-cell filter step).
    pub(crate) candidates: Vec<u64>,
}

/// Bucket bounds of the `index_query_band_len` histogram: geometric
/// steps covering raw value-domain band lengths from sub-unit up to
/// thousands. The workload advisor only consumes the histogram's exact
/// `sum / count` mean, so the bucket resolution matters for dashboards,
/// not for the empirical cost model.
pub(crate) const BAND_LEN_BUCKETS: [f64; 13] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// Registry handles for the per-query metrics an index publishes, cached
/// so the query hot path pays one atomic add per counter instead of a
/// name lookup. Wired lazily on an index's first query (the engine — and
/// with it the registry — is a query-time parameter).
#[derive(Debug)]
pub(crate) struct QueryMetrics {
    queries: Counter,
    filter_pages: Counter,
    refine_pages: Counter,
    filter_nodes: Counter,
    intervals: Counter,
    cells_examined: Counter,
    cells_qualifying: Counter,
    query_ns: Histogram,
    filter_ns: Histogram,
    refine_ns: Histogram,
    band_len: Histogram,
    /// The registry's sliding-window SLO tracker; every published query
    /// latency feeds it so `/slo` and the adaptive slow-query threshold
    /// see the whole query plane regardless of index or plan.
    slo: SloTracker,
}

impl QueryMetrics {
    /// Registers (or reattaches to) the `index_*` families, every series
    /// labeled with the index's method name.
    pub(crate) fn wire(registry: &MetricsRegistry, index: &str) -> Self {
        let labels: &[(&str, &str)] = &[("index", index)];
        Self {
            queries: registry.counter_with("index_queries_total", labels),
            filter_pages: registry.counter_with("index_filter_pages_total", labels),
            refine_pages: registry.counter_with("index_refine_pages_total", labels),
            filter_nodes: registry.counter_with("index_filter_nodes_total", labels),
            intervals: registry.counter_with("index_intervals_retrieved_total", labels),
            cells_examined: registry.counter_with("index_cells_examined_total", labels),
            cells_qualifying: registry.counter_with("index_cells_qualifying_total", labels),
            query_ns: registry.time_histogram("index_query_ns", labels),
            filter_ns: registry.time_histogram("index_filter_ns", labels),
            refine_ns: registry.time_histogram("index_refine_ns", labels),
            band_len: registry.histogram_with("index_query_band_len", labels, &BAND_LEN_BUCKETS),
            slo: registry.slo().clone(),
        }
    }

    /// Flushes one finished query into the registry. Counter bumps stay
    /// real under `obs-off`; the latency and band-length observations
    /// compile out (which is why the workload advisor degrades to a
    /// no-op under `obs-off`: it never sees a query).
    pub(crate) fn publish(
        &self,
        stats: &QueryStats,
        band: Interval,
        query_ns: u64,
        filter_ns: u64,
        refine_ns: u64,
    ) {
        self.queries.inc();
        self.filter_pages.add(stats.filter_pages);
        self.refine_pages
            .add(stats.io.logical_reads() - stats.filter_pages);
        self.filter_nodes.add(stats.filter_nodes);
        self.intervals.add(stats.intervals_retrieved as u64);
        self.cells_examined.add(stats.cells_examined as u64);
        self.cells_qualifying.add(stats.cells_qualifying as u64);
        self.query_ns.observe_ns(query_ns);
        self.filter_ns.observe_ns(filter_ns);
        self.refine_ns.observe_ns(refine_ns);
        self.band_len.observe(band.hi - band.lo);
        self.slo.record_ns(query_ns);
    }
}

/// A value-domain index over one field, queryable by value interval.
///
/// Implementations own their cell file and index pages inside a shared
/// [`StorageEngine`]; queries report complete I/O so the benchmark
/// harness can compare methods exactly as the paper does.
pub trait ValueIndex: Send + Sync {
    /// Method name as used in the paper's figures (e.g. `"I-Hilbert"`).
    fn name(&self) -> String;

    /// Runs the full query pipeline, passing each non-empty answer
    /// region to `sink`, and returns the statistics.
    ///
    /// I/O failures — injected faults, corrupt pages — abort the query
    /// with the underlying [`cf_storage::CfError`]; regions already
    /// passed to `sink` before the failure must be discarded.
    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats>;

    /// Runs the query and discards region geometry (keeps area/counts).
    fn query_stats(&self, engine: &StorageEngine, band: Interval) -> CfResult<QueryStats> {
        self.query_with(engine, band, &mut |_| {})
    }

    /// Like [`ValueIndex::query_stats`], but reusing caller-provided
    /// scratch buffers across calls. Answers and statistics are
    /// identical; only the transient allocations differ. The default
    /// implementation ignores the scratch — indexes with allocating hot
    /// paths override it.
    fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        _scratch: &mut QueryScratch,
    ) -> CfResult<QueryStats> {
        self.query_stats(engine, band)
    }

    /// Runs the query and collects the answer regions.
    fn query_regions(
        &self,
        engine: &StorageEngine,
        band: Interval,
    ) -> CfResult<(QueryStats, Vec<Polygon>)> {
        let mut regions = Vec::new();
        let stats = self.query_with(engine, band, &mut |p| regions.push(p))?;
        Ok((stats, regions))
    }

    /// Pages occupied by the index structure (0 for LinearScan).
    fn index_pages(&self) -> usize;

    /// Pages occupied by the cell file.
    fn data_pages(&self) -> usize;

    /// Number of intervals the index stores (subfields for I-Hilbert,
    /// cells for I-All, 0 for LinearScan).
    fn num_intervals(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_zero() {
        let s = QueryStats::default();
        assert_eq!(s.cells_examined, 0);
        assert_eq!(s.area, 0.0);
        assert_eq!(s.io, IoStats::default());
    }
}
