//! The common query interface and per-query statistics.

use cf_geom::{Interval, Polygon};
use cf_storage::{CfResult, IoStats, StorageEngine};

/// Everything a value query reports besides its answer regions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Cells read in the estimation step (the paper's *candidate cells*
    /// plus, for subfield methods, the non-qualifying cells co-located in
    /// retrieved subfields).
    pub cells_examined: usize,
    /// Cells whose value interval actually intersects the query band.
    pub cells_qualifying: usize,
    /// Answer regions produced by the estimation step.
    pub num_regions: usize,
    /// Total area of the answer regions.
    pub area: f64,
    /// Index nodes visited during the filtering step (0 for LinearScan).
    pub filter_nodes: u64,
    /// Intervals the filtering step retrieved (subfields for the
    /// subfield methods, individual cells for I-All, 0 for LinearScan).
    pub intervals_retrieved: usize,
    /// Logical page reads spent in the filtering step alone (index
    /// traversal); `io.logical_reads() - filter_pages` is the
    /// estimation-step cost.
    pub filter_pages: u64,
    /// I/O performed by the whole query (filter + estimate).
    pub io: IoStats,
}

/// Reusable buffers for the query hot path.
///
/// Every query allocates a handful of transient vectors (retrieved
/// ranges, coalesced runs, candidate lists). A caller running many
/// queries — the batch executor gives each worker thread one of these —
/// can pass the same scratch to [`ValueIndex::query_stats_scratch`] so
/// those vectors keep their capacity from query to query instead of
/// being reallocated.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Retrieved `[start, end)` record ranges (subfield filter step).
    pub(crate) ranges: Vec<(u32, u32)>,
    /// Coalesced record runs handed to the estimation step.
    pub(crate) runs: Vec<std::ops::Range<usize>>,
    /// Candidate payloads (I-All's per-cell filter step).
    pub(crate) candidates: Vec<u64>,
}

/// A value-domain index over one field, queryable by value interval.
///
/// Implementations own their cell file and index pages inside a shared
/// [`StorageEngine`]; queries report complete I/O so the benchmark
/// harness can compare methods exactly as the paper does.
pub trait ValueIndex: Send + Sync {
    /// Method name as used in the paper's figures (e.g. `"I-Hilbert"`).
    fn name(&self) -> String;

    /// Runs the full query pipeline, passing each non-empty answer
    /// region to `sink`, and returns the statistics.
    ///
    /// I/O failures — injected faults, corrupt pages — abort the query
    /// with the underlying [`cf_storage::CfError`]; regions already
    /// passed to `sink` before the failure must be discarded.
    fn query_with(
        &self,
        engine: &StorageEngine,
        band: Interval,
        sink: &mut dyn FnMut(Polygon),
    ) -> CfResult<QueryStats>;

    /// Runs the query and discards region geometry (keeps area/counts).
    fn query_stats(&self, engine: &StorageEngine, band: Interval) -> CfResult<QueryStats> {
        self.query_with(engine, band, &mut |_| {})
    }

    /// Like [`ValueIndex::query_stats`], but reusing caller-provided
    /// scratch buffers across calls. Answers and statistics are
    /// identical; only the transient allocations differ. The default
    /// implementation ignores the scratch — indexes with allocating hot
    /// paths override it.
    fn query_stats_scratch(
        &self,
        engine: &StorageEngine,
        band: Interval,
        _scratch: &mut QueryScratch,
    ) -> CfResult<QueryStats> {
        self.query_stats(engine, band)
    }

    /// Runs the query and collects the answer regions.
    fn query_regions(
        &self,
        engine: &StorageEngine,
        band: Interval,
    ) -> CfResult<(QueryStats, Vec<Polygon>)> {
        let mut regions = Vec::new();
        let stats = self.query_with(engine, band, &mut |p| regions.push(p))?;
        Ok((stats, regions))
    }

    /// Pages occupied by the index structure (0 for LinearScan).
    fn index_pages(&self) -> usize;

    /// Pages occupied by the cell file.
    fn data_pages(&self) -> usize;

    /// Number of intervals the index stores (subfields for I-Hilbert,
    /// cells for I-All, 0 for LinearScan).
    fn num_intervals(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_zero() {
        let s = QueryStats::default();
        assert_eq!(s.cells_examined, 0);
        assert_eq!(s.area, 0.0);
        assert_eq!(s.io, IoStats::default());
    }
}
