//! Property-based tests: the storage stack must behave like a flat
//! byte array regardless of pool capacity, eviction pattern, or backing.

use cf_storage::{KvRecord, PageId, RecordFile, StorageConfig, StorageEngine, PAGE_SIZE};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { page: usize, tag: u8 },
    Read { page: usize },
    ClearCache,
}

fn op(pages: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..pages, any::<u8>()).prop_map(|(page, tag)| Op::Write { page, tag }),
        3 => (0..pages).prop_map(|page| Op::Read { page }),
        1 => Just(Op::ClearCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_is_transparent(
        pool_pages in 1usize..8,
        ops in prop::collection::vec(op(12), 1..80),
    ) {
        let engine = StorageEngine::new(StorageConfig {
            pool_pages,
            ..Default::default()
        });
        let ids: Vec<PageId> = (0..12).map(|_| engine.allocate_page().expect("allocate")).collect();
        // Model: expected first byte per page.
        let mut model = [0u8; 12];
        for op in ops {
            match op {
                Op::Write { page, tag } => {
                    let mut buf = [0u8; PAGE_SIZE];
                    buf[0] = tag;
                    buf[PAGE_SIZE - 1] = tag.wrapping_add(1);
                    engine.write_page(ids[page], &buf).expect("write");
                    model[page] = tag;
                }
                Op::Read { page } => {
                    let (a, b) = engine.with_page(ids[page], |p| (p[0], p[PAGE_SIZE - 1])).expect("read");
                    prop_assert_eq!(a, model[page]);
                    let want_b = if model[page] == 0 && b == 0 {
                        0
                    } else {
                        model[page].wrapping_add(1)
                    };
                    prop_assert_eq!(b, want_b);
                }
                Op::ClearCache => engine.clear_cache(),
            }
        }
        // Cold re-read of every page matches the model.
        engine.clear_cache();
        for (i, &id) in ids.iter().enumerate() {
            let a = engine.with_page(id, |p| p[0]).expect("read");
            prop_assert_eq!(a, model[i]);
        }
    }

    #[test]
    fn record_file_random_access(
        len in 1usize..1500,
        probes in prop::collection::vec(any::<usize>(), 1..30),
        puts in prop::collection::vec((any::<usize>(), any::<u64>()), 0..10),
    ) {
        let engine = StorageEngine::in_memory();
        let records: Vec<KvRecord> = (0..len)
            .map(|i| KvRecord { key: i as u64, value: -(i as f64) })
            .collect();
        let file = RecordFile::create(&engine, records).expect("create");
        let mut model: Vec<u64> = (0..len as u64).collect();

        for (idx, key) in puts {
            let idx = idx % len;
            file.put(&engine, idx, &KvRecord { key, value: 0.0 }).expect("put");
            model[idx] = key;
        }
        for probe in probes {
            let idx = probe % len;
            prop_assert_eq!(file.get(&engine, idx).expect("get").key, model[idx]);
        }
        // Range scans agree with point reads after updates.
        let mid = len / 2;
        let scanned = file.read_range(&engine, 0..mid).expect("scan");
        for (i, r) in scanned.iter().enumerate() {
            prop_assert_eq!(r.key, model[i]);
        }
    }

    #[test]
    fn io_counters_are_monotone(nreads in 1usize..40, pool_pages in 1usize..6) {
        let engine = StorageEngine::new(StorageConfig {
            pool_pages,
            ..Default::default()
        });
        let ids: Vec<PageId> = (0..10).map(|_| engine.allocate_page().expect("allocate")).collect();
        let mut last = engine.io_stats();
        for i in 0..nreads {
            engine.with_page(ids[i % ids.len()], |_| ()).expect("read");
            let now = engine.io_stats();
            prop_assert!(now.logical_reads() == last.logical_reads() + 1);
            prop_assert!(now.disk_reads >= last.disk_reads);
            prop_assert!(now.disk_reads - last.disk_reads <= 1);
            last = now;
        }
        // Misses never exceed logical reads.
        prop_assert!(last.pool_misses <= last.logical_reads());
    }
}
