//! Read-only memory mapping of the database file (opt-in).
//!
//! The file backing can serve physical page reads by copying out of a
//! `MAP_SHARED` read-only mapping instead of issuing a `pread` per
//! page. Checksums are still verified on every physical read, so a
//! mapping that goes stale or returns garbage is caught the same way a
//! failed positional read would be; any mapping failure silently falls
//! back to positional reads.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate root carries `#![deny(unsafe_code)]`): the raw `mmap(2)` /
//! `munmap(2)` calls and the lifetime argument for the mapped slice
//! live here, behind a safe copy-out API.
//!
//! Safety argument: the mapping is created `PROT_READ | MAP_SHARED`
//! over a file the [`crate::DiskManager`] keeps open for its own
//! lifetime. Readers only *copy* page-sized ranges that the caller has
//! already bounds-checked against the allocated page count, and the
//! disk's backing lock serializes reads against writes and truncation
//! — a reader never touches bytes past the current end of file, so no
//! `SIGBUS` from a shrunk file is reachable. The region is unmapped
//! exactly once, on drop.

#![allow(unsafe_code)]

use std::ffi::c_void;
use std::fs::File;
use std::os::unix::io::AsRawFd;
use std::ptr::NonNull;

const PROT_READ: i32 = 1;
const MAP_SHARED: i32 = 1;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> i32;
}

/// A read-only shared mapping of the first `len` bytes of a file.
pub(crate) struct MmapRegion {
    ptr: NonNull<u8>,
    len: usize,
}

// The region is an immutable view of file bytes; concurrent copies out
// of it are as safe as concurrent preads of the same file.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps the first `len` bytes of `file` read-only, or `None` if the
    /// kernel refuses (callers fall back to positional reads).
    pub(crate) fn map(file: &File, len: usize) -> Option<Self> {
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh PROT_READ/MAP_SHARED mapping over an open fd;
        // the result is checked against MAP_FAILED ((void*)-1) and NULL
        // before use.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return None;
        }
        NonNull::new(ptr as *mut u8).map(|ptr| Self { ptr, len })
    }

    /// Mapped length in bytes.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Copies `[offset, offset + out.len())` of the mapping into `out`.
    /// Returns `false` (copying nothing) if the range is not fully
    /// inside the mapping.
    pub(crate) fn copy_into(&self, offset: usize, out: &mut [u8]) -> bool {
        let Some(end) = offset.checked_add(out.len()) else {
            return false;
        };
        if end > self.len {
            return false;
        }
        // SAFETY: the range was bounds-checked against the mapping, the
        // mapping outlives this call (self is borrowed), and `out`
        // cannot alias the private mapping.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.ptr.as_ptr().add(offset),
                out.as_mut_ptr(),
                out.len(),
            );
        }
        true
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: mapped by us with this exact length, unmapped once.
        unsafe {
            munmap(self.ptr.as_ptr() as *mut c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_and_copies_file_bytes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cf_mmap_test_{}_{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = File::create(&path).expect("create");
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        f.write_all(&payload).expect("write");
        f.sync_all().expect("sync");
        let f = File::open(&path).expect("open");

        let region = MmapRegion::map(&f, payload.len()).expect("map");
        assert_eq!(region.len(), payload.len());
        let mut out = [0u8; 4096];
        assert!(region.copy_into(4096, &mut out));
        assert_eq!(out[..], payload[4096..8192]);
        // Out-of-range copies are refused, not UB.
        assert!(!region.copy_into(8000, &mut out));
        assert!(!region.copy_into(usize::MAX - 100, &mut out));
        drop(region);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_mapping_is_declined() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cf_mmap_empty_{}_{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let f = File::create(&path).expect("create");
        assert!(MmapRegion::map(&f, 0).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
