//! Deterministic fault injection for crash-safety tests.
//!
//! A [`FaultInjector`] sits on every [`crate::DiskManager`]. Tests arm
//! faults keyed to the zero-based ordinal of a *physical* page
//! operation — "fail the 3rd write", "tear the 5th write after 100
//! bytes", "return a short read on the 2nd read" — and the disk
//! consults the injector on every physical I/O. Ordinals count from the
//! last [`FaultInjector::clear`], so a test can replay an operation and
//! crash it at every possible point:
//!
//! 1. run the operation once cleanly and snapshot the write count;
//! 2. for each `k` in `0..writes`: reset state, `clear`, arm
//!    `Fault::FailWrite { nth: k }`, rerun, and assert the recovery
//!    invariant.
//!
//! Injection is entirely passive when nothing is armed: one relaxed
//! atomic increment plus one relaxed load per physical I/O.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A deterministic fault, keyed to a physical I/O ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the `nth` physical read outright.
    FailRead {
        /// Zero-based read ordinal to fail.
        nth: u64,
    },
    /// Fail the `nth` physical write outright (nothing reaches disk).
    FailWrite {
        /// Zero-based write ordinal to fail.
        nth: u64,
    },
    /// Tear the `nth` physical write: only the first `keep` bytes of
    /// the page image reach disk and the sidecar checksum is **not**
    /// updated, so the next physical read of the page reports
    /// [`crate::CfError::Corrupt`].
    TornWrite {
        /// Zero-based write ordinal to tear.
        nth: u64,
        /// Bytes of the page image that land before the "crash".
        keep: usize,
    },
    /// Truncate the `nth` physical read: only the first `len` bytes
    /// come back (the tail reads as zeroes), which the page checksum
    /// catches unless the lost tail was all zeroes anyway.
    ShortRead {
        /// Zero-based read ordinal to truncate.
        nth: u64,
        /// Bytes actually "returned by the device".
        len: usize,
    },
}

/// What the disk should do with the current physical read.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ReadPlan {
    /// Proceed normally.
    Proceed,
    /// Fail with `CfError::Injected` at this ordinal.
    Fail(u64),
    /// Read, then keep only the first `len` bytes.
    Short { len: usize },
}

/// What the disk should do with the current physical write.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WritePlan {
    /// Proceed normally.
    Proceed,
    /// Fail with `CfError::Injected` at this ordinal.
    Fail(u64),
    /// Write only the first `keep` bytes, skip the checksum update,
    /// and fail with `CfError::Injected` at this ordinal.
    Torn { keep: usize, ordinal: u64 },
}

/// Deterministic per-disk fault state. See the module docs.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: AtomicBool,
    faults: Mutex<Vec<Fault>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault. Several faults may be armed at once; each fires at
    /// most once (it is consumed when its ordinal arrives).
    pub fn arm(&self, fault: Fault) {
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        faults.push(fault);
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms every fault and resets both ordinal counters to zero.
    pub fn clear(&self) {
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        faults.clear();
        self.armed.store(false, Ordering::Release);
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Physical `(reads, writes)` observed since the last
    /// [`FaultInjector::clear`] — the ordinal space faults are keyed in.
    pub fn ops(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Claims the next read ordinal and reports what to do with it.
    pub(crate) fn plan_read(&self) -> ReadPlan {
        let ord = self.reads.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Acquire) {
            return ReadPlan::Proceed;
        }
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        let hit = faults.iter().position(
            |f| matches!(f, Fault::FailRead { nth } | Fault::ShortRead { nth, .. } if *nth == ord),
        );
        match hit.map(|i| faults.remove(i)) {
            Some(Fault::FailRead { .. }) => ReadPlan::Fail(ord),
            Some(Fault::ShortRead { len, .. }) => ReadPlan::Short { len },
            _ => ReadPlan::Proceed,
        }
    }

    /// Claims the next write ordinal and reports what to do with it.
    pub(crate) fn plan_write(&self) -> WritePlan {
        let ord = self.writes.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Acquire) {
            return WritePlan::Proceed;
        }
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        let hit = faults.iter().position(
            |f| matches!(f, Fault::FailWrite { nth } | Fault::TornWrite { nth, .. } if *nth == ord),
        );
        match hit.map(|i| faults.remove(i)) {
            Some(Fault::FailWrite { .. }) => WritePlan::Fail(ord),
            Some(Fault::TornWrite { keep, .. }) => WritePlan::Torn { keep, ordinal: ord },
            _ => WritePlan::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_count_from_clear() {
        let inj = FaultInjector::new();
        let _ = inj.plan_read();
        let _ = inj.plan_write();
        let _ = inj.plan_write();
        assert_eq!(inj.ops(), (1, 2));
        inj.clear();
        assert_eq!(inj.ops(), (0, 0));
    }

    #[test]
    fn faults_fire_on_their_ordinal_and_are_consumed() {
        let inj = FaultInjector::new();
        inj.arm(Fault::FailWrite { nth: 1 });
        assert!(matches!(inj.plan_write(), WritePlan::Proceed));
        assert!(matches!(inj.plan_write(), WritePlan::Fail(1)));
        // Consumed: the same ordinal space keeps counting, no re-fire.
        assert!(matches!(inj.plan_write(), WritePlan::Proceed));
    }

    #[test]
    fn read_and_write_ordinals_are_independent() {
        let inj = FaultInjector::new();
        inj.arm(Fault::FailRead { nth: 0 });
        assert!(matches!(inj.plan_write(), WritePlan::Proceed));
        assert!(matches!(inj.plan_read(), ReadPlan::Fail(0)));
    }

    #[test]
    fn torn_and_short_carry_their_sizes() {
        let inj = FaultInjector::new();
        inj.arm(Fault::TornWrite { nth: 0, keep: 100 });
        inj.arm(Fault::ShortRead { nth: 0, len: 64 });
        assert!(matches!(
            inj.plan_write(),
            WritePlan::Torn {
                keep: 100,
                ordinal: 0
            }
        ));
        assert!(matches!(inj.plan_read(), ReadPlan::Short { len: 64 }));
    }
}
