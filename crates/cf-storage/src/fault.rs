//! Deterministic fault injection for crash-safety tests.
//!
//! A [`FaultInjector`] sits on every [`crate::DiskManager`]. Tests arm
//! faults keyed to the zero-based ordinal of a *physical* page
//! operation — "fail the 3rd write", "tear the 5th write after 100
//! bytes", "return a short read on the 2nd read" — and the disk
//! consults the injector on every physical I/O. Ordinals count from the
//! last [`FaultInjector::clear`], so a test can replay an operation and
//! crash it at every possible point:
//!
//! 1. run the operation once cleanly and snapshot the write count;
//! 2. for each `k` in `0..writes`: reset state, `clear`, arm
//!    `Fault::FailWrite { nth: k }`, rerun, and assert the recovery
//!    invariant.
//!
//! Injection is entirely passive when nothing is armed: one relaxed
//! atomic increment plus one relaxed load per physical I/O.

use crate::disk::PageId;
use crate::error::FaultOp;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A deterministic fault, keyed to a physical I/O ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the `nth` physical read outright.
    FailRead {
        /// Zero-based read ordinal to fail.
        nth: u64,
    },
    /// Fail the `nth` physical write outright (nothing reaches disk).
    FailWrite {
        /// Zero-based write ordinal to fail.
        nth: u64,
    },
    /// Tear the `nth` physical write: only the first `keep` bytes of
    /// the page image reach disk and the sidecar checksum is **not**
    /// updated, so the next physical read of the page reports
    /// [`crate::CfError::Corrupt`].
    TornWrite {
        /// Zero-based write ordinal to tear.
        nth: u64,
        /// Bytes of the page image that land before the "crash".
        keep: usize,
    },
    /// Truncate the `nth` physical read: only the first `len` bytes
    /// come back (the tail reads as zeroes), which the page checksum
    /// catches unless the lost tail was all zeroes anyway.
    ShortRead {
        /// Zero-based read ordinal to truncate.
        nth: u64,
        /// Bytes actually "returned by the device".
        len: usize,
    },
}

/// What the disk should do with the current physical read.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ReadPlan {
    /// Proceed normally.
    Proceed,
    /// Fail with `CfError::Injected` at this ordinal.
    Fail(u64),
    /// Read, then keep only the first `len` bytes.
    Short { len: usize },
}

/// What the disk should do with the current physical write.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WritePlan {
    /// Proceed normally.
    Proceed,
    /// Fail with `CfError::Injected` at this ordinal.
    Fail(u64),
    /// Write only the first `keep` bytes, skip the checksum update,
    /// and fail with `CfError::Injected` at this ordinal.
    Torn { keep: usize, ordinal: u64 },
}

/// The record of one fault that actually fired: which operation, which
/// armed [`Fault`], at which ordinal, against which page. The injector
/// keeps these so crash-safety tests can assert that every armed fault
/// was exercised (no silently skipped injection points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Whether the fault hit a physical read or write.
    pub op: FaultOp,
    /// The armed fault that fired (as configured, with its `nth`).
    pub fault: Fault,
    /// The I/O ordinal it fired at (equals the fault's `nth`).
    pub ordinal: u64,
    /// The page the faulted operation targeted.
    pub page: PageId,
}

/// Deterministic per-disk fault state. See the module docs.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: AtomicBool,
    faults: Mutex<Vec<Fault>>,
    fired: Mutex<Vec<FiredFault>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault. Several faults may be armed at once; each fires at
    /// most once (it is consumed when its ordinal arrives).
    pub fn arm(&self, fault: Fault) {
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        faults.push(fault);
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms every fault, resets both ordinal counters to zero and
    /// forgets the fired-fault history.
    pub fn clear(&self) {
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        faults.clear();
        self.fired.lock().expect("fault injector poisoned").clear();
        self.armed.store(false, Ordering::Release);
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Every fault that fired since the last [`FaultInjector::clear`],
    /// in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().expect("fault injector poisoned").clone()
    }

    /// Physical `(reads, writes)` observed since the last
    /// [`FaultInjector::clear`] — the ordinal space faults are keyed in.
    pub fn ops(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    fn record_fired(&self, op: FaultOp, fault: Fault, ordinal: u64, page: PageId) {
        self.fired
            .lock()
            .expect("fault injector poisoned")
            .push(FiredFault {
                op,
                fault,
                ordinal,
                page,
            });
    }

    /// Claims the next read ordinal and reports what to do with the
    /// physical read of `page`. A firing fault is consumed and recorded
    /// (see [`FaultInjector::fired`]).
    pub(crate) fn plan_read(&self, page: PageId) -> ReadPlan {
        let ord = self.reads.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Acquire) {
            return ReadPlan::Proceed;
        }
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        let hit = faults.iter().position(
            |f| matches!(f, Fault::FailRead { nth } | Fault::ShortRead { nth, .. } if *nth == ord),
        );
        match hit.map(|i| faults.remove(i)) {
            Some(fault @ Fault::FailRead { .. }) => {
                drop(faults);
                self.record_fired(FaultOp::Read, fault, ord, page);
                ReadPlan::Fail(ord)
            }
            Some(fault @ Fault::ShortRead { len, .. }) => {
                drop(faults);
                self.record_fired(FaultOp::Read, fault, ord, page);
                ReadPlan::Short { len }
            }
            _ => ReadPlan::Proceed,
        }
    }

    /// Claims the next write ordinal and reports what to do with the
    /// physical write of `page`. A firing fault is consumed and
    /// recorded (see [`FaultInjector::fired`]).
    pub(crate) fn plan_write(&self, page: PageId) -> WritePlan {
        let ord = self.writes.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Acquire) {
            return WritePlan::Proceed;
        }
        let mut faults = self.faults.lock().expect("fault injector poisoned");
        let hit = faults.iter().position(
            |f| matches!(f, Fault::FailWrite { nth } | Fault::TornWrite { nth, .. } if *nth == ord),
        );
        match hit.map(|i| faults.remove(i)) {
            Some(fault @ Fault::FailWrite { .. }) => {
                drop(faults);
                self.record_fired(FaultOp::Write, fault, ord, page);
                WritePlan::Fail(ord)
            }
            Some(fault @ Fault::TornWrite { keep, .. }) => {
                drop(faults);
                self.record_fired(FaultOp::Write, fault, ord, page);
                WritePlan::Torn { keep, ordinal: ord }
            }
            _ => WritePlan::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PageId = PageId(0);

    #[test]
    fn ordinals_count_from_clear() {
        let inj = FaultInjector::new();
        let _ = inj.plan_read(P);
        let _ = inj.plan_write(P);
        let _ = inj.plan_write(P);
        assert_eq!(inj.ops(), (1, 2));
        inj.clear();
        assert_eq!(inj.ops(), (0, 0));
    }

    #[test]
    fn faults_fire_on_their_ordinal_and_are_consumed() {
        let inj = FaultInjector::new();
        inj.arm(Fault::FailWrite { nth: 1 });
        assert!(matches!(inj.plan_write(PageId(8)), WritePlan::Proceed));
        assert!(matches!(inj.plan_write(PageId(9)), WritePlan::Fail(1)));
        // Consumed: the same ordinal space keeps counting, no re-fire.
        assert!(matches!(inj.plan_write(PageId(9)), WritePlan::Proceed));
    }

    #[test]
    fn read_and_write_ordinals_are_independent() {
        let inj = FaultInjector::new();
        inj.arm(Fault::FailRead { nth: 0 });
        assert!(matches!(inj.plan_write(P), WritePlan::Proceed));
        assert!(matches!(inj.plan_read(P), ReadPlan::Fail(0)));
    }

    #[test]
    fn torn_and_short_carry_their_sizes() {
        let inj = FaultInjector::new();
        inj.arm(Fault::TornWrite { nth: 0, keep: 100 });
        inj.arm(Fault::ShortRead { nth: 0, len: 64 });
        assert!(matches!(
            inj.plan_write(P),
            WritePlan::Torn {
                keep: 100,
                ordinal: 0
            }
        ));
        assert!(matches!(inj.plan_read(P), ReadPlan::Short { len: 64 }));
    }

    #[test]
    fn fired_faults_record_op_kind_ordinal_and_page() {
        let inj = FaultInjector::new();
        inj.arm(Fault::FailWrite { nth: 1 });
        inj.arm(Fault::ShortRead { nth: 0, len: 64 });
        let _ = inj.plan_write(PageId(4)); // ordinal 0: clean
        let _ = inj.plan_write(PageId(5)); // ordinal 1: fires
        let _ = inj.plan_read(PageId(6)); // ordinal 0: fires
        let fired = inj.fired();
        assert_eq!(fired.len(), 2);
        assert_eq!(
            fired[0],
            FiredFault {
                op: FaultOp::Write,
                fault: Fault::FailWrite { nth: 1 },
                ordinal: 1,
                page: PageId(5),
            }
        );
        assert_eq!(fired[1].op, FaultOp::Read);
        assert_eq!(fired[1].page, PageId(6));
        inj.clear();
        assert!(inj.fired().is_empty(), "clear forgets fired history");
    }

    #[test]
    fn unfired_faults_leave_no_record() {
        let inj = FaultInjector::new();
        inj.arm(Fault::FailRead { nth: 10 });
        let _ = inj.plan_read(P);
        assert!(inj.fired().is_empty());
    }
}
