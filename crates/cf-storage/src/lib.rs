//! Simulated paged storage engine with first-class I/O accounting.
//!
//! The EDBT 2002 evaluation ran against a disk-resident database with
//! 4 KiB pages; its headline metric — execution time of field value
//! queries — is driven by the number of pages each method touches. This
//! crate reproduces that substrate:
//!
//! * [`DiskManager`] — an in-memory "disk" of [`PAGE_SIZE`] pages that
//!   counts every physical read/write and can charge a configurable
//!   latency per physical read (modelling the 2002 testbed's I/O cost on
//!   modern hardware; see DESIGN.md §3).
//! * [`BufferPool`] — a sharded LRU page cache with pin-free closure
//!   access, per-shard hit/miss statistics and explicit invalidation (so
//!   benchmarks can run queries cold, as the paper's setup effectively
//!   did).
//! * [`StorageEngine`] — the façade bundling the two; all index and cell
//!   file accesses in the workspace go through it.
//! * [`RecordFile`] — a fixed-size-record heap file; the Hilbert-ordered
//!   cell file of the I-Hilbert method is a `RecordFile` whose record
//!   ranges correspond to subfields.
//!
//! The engine is thread-safe: pool frames live in independently locked
//! shards so concurrent queries mostly avoid lock contention, and every
//! I/O event is tallied both globally (atomics) and per thread
//! ([`thread_io_stats`]) so parallel query paths can cost themselves
//! exactly.

//! Every operation touching pages is fallible: physical reads verify a
//! per-page checksum ([`checksum`]), failures surface as typed
//! [`CfError`]s instead of panics, and a deterministic [`Fault`]
//! injector on the disk drives crash-safety property tests.
//!
//! # Example
//!
//! ```
//! use cf_storage::{CfResult, KvRecord, RecordFile, StorageEngine};
//!
//! fn main() -> CfResult<()> {
//!     let engine = StorageEngine::in_memory();
//!     let records: Vec<KvRecord> = (0..1000)
//!         .map(|i| KvRecord { key: i, value: i as f64 * 0.5 })
//!         .collect();
//!     let file = RecordFile::create(&engine, records)?;
//!
//!     // Reading a contiguous range touches the minimal page run…
//!     engine.reset_stats();
//!     let some = file.read_range(&engine, 100..110)?;
//!     assert_eq!(some[0].key, 100);
//!     // …(256 records fit a 4 KiB page, so 10 records = 1 page).
//!     assert_eq!(engine.io_stats().logical_reads(), 1);
//!     Ok(())
//! }
//! ```

// `deny` (not `forbid`) so the one module wrapping raw `mmap(2)` can
// opt in with a reviewed `#![allow(unsafe_code)]`; everything else in
// the crate still refuses unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod compressed;
mod disk;
mod engine;
mod error;
mod fault;
mod freelist;
mod gc;
mod heap;
mod mmap;
mod stats;

pub use buffer::{BufferPool, MIN_FRAMES_PER_SHARD};
pub use cf_obs::{
    answer_digest, decode_wrk, encode_wrk, Counter, EventJournal, ExplainRecord, FlightRecorder,
    Gauge, HeatKind, HeatMap, Histogram, Json, Label, MetricsRegistry, SloObjective, SloTracker,
    SlowQueryReport, Stopwatch, TraceEvent, Tracer, WorkloadRecord, HEAT_BUCKETS,
};
pub use compressed::{CellFile, CompressedRecordFile, PageCodec};
pub use disk::{DiskManager, PageBuf, PageId, FSM_COMMIT_PAGE, PAGE_SIZE};
pub use engine::{StorageConfig, StorageEngine};
pub use error::{CfError, CfResult, FaultOp};
pub use fault::{Fault, FaultInjector, FiredFault};
pub use gc::{EpochGc, EpochPin};
pub use heap::{KvRecord, Record, RecordFile};
pub use stats::{thread_io_stats, IoStats, ShardStats};

pub mod checksum;
pub mod codec;
pub mod compress;
