//! Epoch-deferred page reclamation.
//!
//! The live-ingest plane publishes immutable epoch snapshots: readers
//! pin the epoch they opened under, and a background repack replaces
//! the base plane while those readers are still scanning the old one.
//! The superseded page runs (old cell file, old R\*-tree, old subfield
//! catalog) therefore cannot go straight to the
//! [`crate::DiskManager`] freelist — a reader could still fault one of
//! those pages back in and observe recycled bytes.
//!
//! [`EpochGc`] closes that gap with the classic epoch-based
//! reclamation rule:
//!
//! * every reader holds an [`EpochPin`] for the epoch it is scanning;
//! * a writer retiring pages calls [`EpochGc::defer_free_run`] with
//!   the epoch that *replaced* them (`retire_epoch`): the run is safe
//!   to recycle once no pin older than `retire_epoch` remains;
//! * dropping the last old pin promotes ripe runs, and the storage
//!   owner (who holds the engine) drains them via
//!   [`crate::StorageEngine::collect_deferred`], which routes each run
//!   through the ordinary `free_run` path (pool invalidation + disk
//!   freelist).
//!
//! The split between *promotion* (lock-only, done in `Drop`) and
//! *freeing* (needs the engine, done explicitly) keeps `EpochPin`
//! trivially `Send`/cheap and avoids holding any engine reference in
//! reader guards.

use crate::disk::PageId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A page run whose reclamation is deferred until every reader of an
/// older epoch has dropped its pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DeferredRun {
    /// The run becomes reclaimable once no pin with `epoch <
    /// retire_epoch` exists.
    retire_epoch: u64,
    first: PageId,
    pages: usize,
}

#[derive(Debug, Default)]
struct GcState {
    /// Live pins per epoch (readers currently scanning that epoch).
    pins: BTreeMap<u64, usize>,
    /// Runs waiting for their retire epoch to clear.
    pending: Vec<DeferredRun>,
    /// Runs with no surviving older reader, ready for `free_run`.
    ripe: Vec<(PageId, usize)>,
}

impl GcState {
    /// Moves every pending run whose retire epoch has no older live
    /// pin into the ripe list.
    fn promote(&mut self) {
        let oldest_pin = self.pins.keys().next().copied();
        let ripe = &mut self.ripe;
        self.pending.retain(|run| {
            let safe = match oldest_pin {
                Some(oldest) => oldest >= run.retire_epoch,
                None => true,
            };
            if safe {
                ripe.push((run.first, run.pages));
            }
            !safe
        });
    }
}

/// Shared epoch-reclamation state (see module docs).
///
/// Cloning is cheap: clones share one state, so the writer, the
/// readers and the storage engine can each hold a handle.
#[derive(Debug, Clone, Default)]
pub struct EpochGc {
    state: Arc<Mutex<GcState>>,
}

impl EpochGc {
    /// A fresh GC domain with no pins and nothing deferred.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a reader of `epoch`. The returned guard keeps every
    /// run retired *at or after* `epoch + 1` from being recycled until
    /// it is dropped.
    pub fn pin(&self, epoch: u64) -> EpochPin {
        let mut state = self.state.lock().expect("gc state poisoned");
        *state.pins.entry(epoch).or_insert(0) += 1;
        EpochPin {
            gc: self.clone(),
            epoch,
        }
    }

    /// Defers reclamation of `pages` consecutive pages starting at
    /// `first` until no reader of an epoch older than `retire_epoch`
    /// remains. Runs whose condition already holds become ripe
    /// immediately.
    pub fn defer_free_run(&self, retire_epoch: u64, first: PageId, pages: usize) {
        if pages == 0 {
            return;
        }
        let mut state = self.state.lock().expect("gc state poisoned");
        state.pending.push(DeferredRun {
            retire_epoch,
            first,
            pages,
        });
        state.promote();
    }

    /// Takes every ripe run, leaving pending runs in place. The caller
    /// owns freeing them (see
    /// [`crate::StorageEngine::collect_deferred`]).
    pub fn take_ripe(&self) -> Vec<(PageId, usize)> {
        let mut state = self.state.lock().expect("gc state poisoned");
        state.promote();
        std::mem::take(&mut state.ripe)
    }

    /// `(live pins, pending runs, ripe runs)` — introspection for
    /// gauges and tests.
    pub fn stats(&self) -> (usize, usize, usize) {
        let state = self.state.lock().expect("gc state poisoned");
        (
            state.pins.values().sum(),
            state.pending.len(),
            state.ripe.len(),
        )
    }

    /// Total pages currently awaiting reclamation (pending + ripe).
    pub fn deferred_pages(&self) -> usize {
        let state = self.state.lock().expect("gc state poisoned");
        state.pending.iter().map(|r| r.pages).sum::<usize>()
            + state.ripe.iter().map(|&(_, n)| n).sum::<usize>()
    }

    fn unpin(&self, epoch: u64) {
        let mut state = self.state.lock().expect("gc state poisoned");
        if let Some(count) = state.pins.get_mut(&epoch) {
            *count -= 1;
            if *count == 0 {
                state.pins.remove(&epoch);
            }
        }
        state.promote();
    }
}

/// A reader's hold on an epoch: while alive, pages retired by any
/// later epoch stay allocated. Dropping the pin may promote deferred
/// runs to ripe (actually freeing them still requires
/// [`crate::StorageEngine::collect_deferred`]).
#[derive(Debug)]
pub struct EpochPin {
    gc: EpochGc,
    epoch: u64,
}

impl EpochPin {
    /// The epoch this pin protects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.gc.unpin(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_runs_ripen_immediately() {
        let gc = EpochGc::new();
        gc.defer_free_run(3, PageId(10), 4);
        assert_eq!(gc.take_ripe(), vec![(PageId(10), 4)]);
        assert_eq!(gc.take_ripe(), vec![], "taken runs do not reappear");
    }

    #[test]
    fn old_reader_blocks_reclamation_until_dropped() {
        let gc = EpochGc::new();
        let pin = gc.pin(2);
        // Retired by epoch 3: epoch-2 readers may still touch it.
        gc.defer_free_run(3, PageId(7), 2);
        assert_eq!(gc.take_ripe(), vec![]);
        assert_eq!(gc.deferred_pages(), 2);
        drop(pin);
        assert_eq!(gc.take_ripe(), vec![(PageId(7), 2)]);
        assert_eq!(gc.deferred_pages(), 0);
    }

    #[test]
    fn new_epoch_readers_do_not_block_old_retirements() {
        let gc = EpochGc::new();
        let new_reader = gc.pin(3);
        gc.defer_free_run(3, PageId(1), 1);
        // The epoch-3 reader sees the *new* plane; the run retired at
        // epoch 3 only had to outlive epoch <= 2 readers.
        assert_eq!(gc.take_ripe(), vec![(PageId(1), 1)]);
        drop(new_reader);
    }

    #[test]
    fn multiple_pins_per_epoch_are_counted() {
        let gc = EpochGc::new();
        let a = gc.pin(1);
        let b = gc.pin(1);
        gc.defer_free_run(2, PageId(5), 3);
        drop(a);
        assert_eq!(gc.take_ripe(), vec![], "second pin still live");
        drop(b);
        assert_eq!(gc.take_ripe(), vec![(PageId(5), 3)]);
    }

    #[test]
    fn stats_report_pins_and_queues() {
        let gc = EpochGc::new();
        let _pin = gc.pin(0);
        gc.defer_free_run(1, PageId(0), 1);
        gc.defer_free_run(0, PageId(9), 1); // ripe: no pin older than 0
        let (pins, pending, ripe) = gc.stats();
        assert_eq!((pins, pending, ripe), (1, 1, 1));
    }
}
