//! Fixed-size-record files.
//!
//! The I-Hilbert method stores cells "physically in order of Hilbert
//! value" and a subfield is a `[start, end)` range of that file (paper
//! §3.1.2, *Data Structure of subfields*). [`RecordFile`] provides
//! exactly that: records of a fixed size packed into consecutive pages,
//! addressable by record index, with range scans that touch the minimal
//! page run.
//!
//! This file drives record decoding from on-disk pages and is covered
//! by the CI grep gate: no `panic!` / `unwrap` — I/O and corruption
//! surface as [`crate::CfError`]. (Caller-contract violations — an
//! index or range past `len` — remain `assert!`s: the lengths come from
//! the validated catalog, not raw disk bytes.)

use crate::{codec, CfResult, PageBuf, PageId, StorageEngine, PAGE_SIZE};
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A value with a fixed-size on-page encoding.
pub trait Record: Sized {
    /// Encoded size in bytes. Must be `> 0` and `<= PAGE_SIZE`.
    const SIZE: usize;

    /// Encodes `self` into `buf` (exactly `SIZE` bytes).
    fn encode(&self, buf: &mut [u8]);

    /// Decodes a value from `buf` (exactly `SIZE` bytes).
    ///
    /// Decoding is infallible by design: records are plain numeric
    /// payloads, and byte-level corruption is caught below this layer
    /// by the per-page checksums on physical read.
    fn decode(buf: &[u8]) -> Self;

    /// Column layout used by the compressed page codec
    /// ([`crate::CompressedRecordFile`]). The default treats the record
    /// as 8-byte XOR-delta words (plus one trailing 4-byte delta word
    /// when `SIZE % 8 == 4`), which fits all-`f64` records; types with
    /// small-integer columns should override with
    /// [`crate::compress::ColKind::Delta4`] specs for those words.
    fn columns() -> Vec<crate::compress::ColSpec> {
        crate::compress::generic_columns(Self::SIZE)
    }

    /// Cyclically interchangeable column groups for the compressed
    /// codec ([`crate::compress::PageEncoder`]). Each inner list names
    /// columns (indices into [`Record::columns`]) forming one unit;
    /// cyclic rotations of the unit list are alternative layouts of the
    /// same record (a TIN cell's vertex/value triples, say). The codec
    /// picks the rotation that lines shared words up with the previous
    /// record's columns, stores a 2-bit tag, and restores the original
    /// layout on decode — readers always see the bytes that were
    /// written. At most 4 units, all of equal length with kind-aligned
    /// columns. The default (no groups) is correct for records whose
    /// word positions carry fixed meaning (grid corners, packed
    /// intervals).
    fn column_rotation_groups() -> Vec<Vec<usize>> {
        Vec::new()
    }
}

/// A file of fixed-size records packed into consecutive pages
/// (append-free: created in one shot, records updatable in place).
///
/// Records never span page boundaries, so reading records `[a, b)` costs
/// exactly `ceil(b / per_page) - floor(a / per_page)` page accesses.
#[derive(Debug, Clone)]
pub struct RecordFile<R: Record> {
    first_page: PageId,
    num_pages: usize,
    len: usize,
    _marker: PhantomData<R>,
}

impl<R: Record> RecordFile<R> {
    /// Records stored per page.
    pub const fn records_per_page() -> usize {
        assert!(R::SIZE > 0 && R::SIZE <= PAGE_SIZE);
        PAGE_SIZE / R::SIZE
    }

    /// Writes `records` in order into freshly allocated consecutive
    /// pages. Writes are buffered (write-back): they reach the disk on
    /// pool eviction or at the caller's next
    /// [`StorageEngine::flush`]/[`StorageEngine::sync`] — call `sync`
    /// before relying on the file surviving a crash.
    pub fn create<I>(engine: &StorageEngine, records: I) -> CfResult<Self>
    where
        I: IntoIterator<Item = R>,
        I::IntoIter: ExactSizeIterator,
    {
        let iter = records.into_iter();
        let len = iter.len();
        let per_page = Self::records_per_page();
        let num_pages = len.div_ceil(per_page).max(1);
        let first_page = engine.allocate_run(num_pages)?;

        let mut buf: PageBuf = [0u8; PAGE_SIZE];
        let mut in_page = 0usize;
        let mut page = first_page;
        let mut written_pages = 0usize;
        for r in iter {
            r.encode(&mut buf[in_page * R::SIZE..(in_page + 1) * R::SIZE]);
            in_page += 1;
            if in_page == per_page {
                engine.write_page_buffered(page, &buf)?;
                written_pages += 1;
                page = PageId(page.0 + 1);
                in_page = 0;
                buf = [0u8; PAGE_SIZE];
            }
        }
        if in_page > 0 || written_pages == 0 {
            engine.write_page_buffered(page, &buf)?;
        }

        Ok(Self {
            first_page,
            num_pages,
            len,
            _marker: PhantomData,
        })
    }

    /// Parallel variant of [`RecordFile::create`]: allocates the same
    /// consecutive page run, then `threads` workers claim page indexes
    /// off an atomic cursor (work-stealing), encode their records into a
    /// local buffer, and write the page.
    ///
    /// Records never span page boundaries, so each page's bytes depend
    /// only on its own record range plus zero padding — the file is
    /// **byte-identical** to [`RecordFile::create`] on the same input
    /// regardless of thread count or scheduling. Unlike the sequential
    /// path, workers write **through** to the disk: the parallel build's
    /// speedup comes from overlapping the physical writes themselves,
    /// which buffering would serialize into one flush. On error the
    /// first failure (in join order) is reported; other workers may
    /// have written more pages, which is harmless because the whole run
    /// is freshly allocated.
    pub fn create_parallel(engine: &StorageEngine, records: &[R], threads: usize) -> CfResult<Self>
    where
        R: Sync,
    {
        let len = records.len();
        let per_page = Self::records_per_page();
        let num_pages = len.div_ceil(per_page).max(1);
        let first_page = engine.allocate_run(num_pages)?;

        let cursor = AtomicUsize::new(0);
        let workers = threads.clamp(1, num_pages);
        let mut first_err = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| -> CfResult<()> {
                        loop {
                            let p = cursor.fetch_add(1, Ordering::Relaxed);
                            if p >= num_pages {
                                return Ok(());
                            }
                            let mut buf: PageBuf = [0u8; PAGE_SIZE];
                            let lo = p * per_page;
                            let hi = (lo + per_page).min(len);
                            for (slot, r) in records[lo..hi].iter().enumerate() {
                                r.encode(&mut buf[slot * R::SIZE..(slot + 1) * R::SIZE]);
                            }
                            engine.write_page(PageId(first_page.0 + p as u64), &buf)?;
                        }
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }

        Ok(Self {
            first_page,
            num_pages,
            len,
            _marker: PhantomData,
        })
    }

    /// Reopens a record file from its catalog entry (`first_page`,
    /// `len`) — the inverse of reading those values off a freshly
    /// created file. Used with file-backed engines to reattach to data
    /// written by an earlier process.
    pub fn open(first_page: PageId, len: usize) -> Self {
        let per_page = Self::records_per_page();
        Self {
            first_page,
            num_pages: len.div_ceil(per_page).max(1),
            len,
            _marker: PhantomData,
        }
    }

    /// Number of records in the file.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the file occupies.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Id of the first page of the file.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Page id holding record `idx`.
    fn page_of(&self, idx: usize) -> PageId {
        PageId(self.first_page.0 + (idx / Self::records_per_page()) as u64)
    }

    /// Reads one record.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, engine: &StorageEngine, idx: usize) -> CfResult<R> {
        assert!(
            idx < self.len,
            "record {idx} out of bounds (len {})",
            self.len
        );
        let per_page = Self::records_per_page();
        let slot = idx % per_page;
        engine.with_page(self.page_of(idx), |page| {
            R::decode(&page[slot * R::SIZE..(slot + 1) * R::SIZE])
        })
    }

    /// Overwrites one record in place (read-modify-write of its page).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn put(&self, engine: &StorageEngine, idx: usize, record: &R) -> CfResult<()> {
        assert!(
            idx < self.len,
            "record {idx} out of bounds (len {})",
            self.len
        );
        let per_page = Self::records_per_page();
        let slot = idx % per_page;
        let page_id = self.page_of(idx);
        let mut buf: PageBuf = engine.with_page(page_id, |page| *page)?;
        record.encode(&mut buf[slot * R::SIZE..(slot + 1) * R::SIZE]);
        engine.write_page(page_id, &buf)
    }

    /// Invokes `f(index, record)` for every record in `range`, reading
    /// each underlying page exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the file.
    pub fn for_each_in_range(
        &self,
        engine: &StorageEngine,
        range: Range<usize>,
        mut f: impl FnMut(usize, R),
    ) -> CfResult<()> {
        assert!(range.end <= self.len, "range {range:?} out of bounds");
        if range.is_empty() {
            return Ok(());
        }
        let per_page = Self::records_per_page();
        let first = range.start / per_page;
        let last = (range.end - 1) / per_page;
        for page_no in first..=last {
            let page_id = PageId(self.first_page.0 + page_no as u64);
            let lo = range.start.max(page_no * per_page);
            let hi = range.end.min((page_no + 1) * per_page);
            engine.with_page(page_id, |page| {
                for idx in lo..hi {
                    let slot = idx % per_page;
                    f(idx, R::decode(&page[slot * R::SIZE..(slot + 1) * R::SIZE]));
                }
            })?;
        }
        Ok(())
    }

    /// Invokes `f(index, record)` for every record in each of `ranges`,
    /// touching every underlying page **at most once across all
    /// ranges**.
    ///
    /// `ranges` must be sorted by start and non-overlapping. Unlike
    /// calling [`RecordFile::for_each_in_range`] per range, a page
    /// shared by the tail of one range and the head of the next (or by
    /// several small ranges) is read a single time — the access pattern
    /// of a subfield index retrieving many nearby record runs.
    ///
    /// # Panics
    ///
    /// Panics if any range extends past the end of the file or if the
    /// ranges are unsorted or overlapping.
    pub fn for_each_in_ranges(
        &self,
        engine: &StorageEngine,
        ranges: &[Range<usize>],
        mut f: impl FnMut(usize, R),
    ) -> CfResult<()> {
        let per_page = Self::records_per_page();
        for w in ranges.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "ranges unsorted or overlapping: {w:?}"
            );
        }
        if let Some(last) = ranges.iter().rev().find(|r| !r.is_empty()) {
            assert!(last.end <= self.len, "range {last:?} out of bounds");
        }

        let mut i = 0;
        while i < ranges.len() {
            if ranges[i].is_empty() {
                i += 1;
                continue;
            }
            // Grow a group of ranges whose page spans touch or overlap;
            // every page in the group's span then holds records of at
            // least one member range.
            let first_page = ranges[i].start / per_page;
            let mut last_page = (ranges[i].end - 1) / per_page;
            let mut j = i + 1;
            while j < ranges.len() {
                if ranges[j].is_empty() {
                    j += 1;
                    continue;
                }
                if ranges[j].start / per_page <= last_page {
                    last_page = last_page.max((ranges[j].end - 1) / per_page);
                    j += 1;
                } else {
                    break;
                }
            }

            let mut k = i; // first range that may still intersect the page
            for page_no in first_page..=last_page {
                let page_id = PageId(self.first_page.0 + page_no as u64);
                let page_lo = page_no * per_page;
                let page_hi = page_lo + per_page;
                engine.with_page(page_id, |page| {
                    for rg in &ranges[k..j] {
                        if rg.start >= page_hi {
                            break;
                        }
                        let lo = rg.start.max(page_lo);
                        let hi = rg.end.min(page_hi);
                        for idx in lo..hi {
                            let slot = idx % per_page;
                            f(idx, R::decode(&page[slot * R::SIZE..(slot + 1) * R::SIZE]));
                        }
                    }
                })?;
                while k < j && ranges[k].end <= page_hi {
                    k += 1;
                }
            }
            i = j;
        }
        Ok(())
    }

    /// Collects the records in `range` into a vector.
    pub fn read_range(&self, engine: &StorageEngine, range: Range<usize>) -> CfResult<Vec<R>> {
        let mut out = Vec::with_capacity(range.len());
        self.for_each_in_range(engine, range, |_, r| out.push(r))?;
        Ok(out)
    }

    /// Number of pages a scan of `range` touches (the unit the paper's
    /// cost model counts).
    pub fn pages_in_range(&self, range: Range<usize>) -> usize {
        if range.is_empty() {
            return 0;
        }
        let per_page = Self::records_per_page();
        (range.end - 1) / per_page - range.start / per_page + 1
    }
}

/// A trivial record for tests and examples: a `(u64, f64)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvRecord {
    /// Key.
    pub key: u64,
    /// Value.
    pub value: f64,
}

impl Record for KvRecord {
    const SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        codec::put_u64(buf, 0, self.key);
        codec::put_f64(buf, 8, self.value);
    }

    fn decode(buf: &[u8]) -> Self {
        Self {
            key: codec::get_u64(buf, 0),
            value: codec::get_f64(buf, 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fault;

    fn sample(n: usize) -> Vec<KvRecord> {
        (0..n)
            .map(|i| KvRecord {
                key: i as u64,
                value: i as f64 * 0.5,
            })
            .collect()
    }

    #[test]
    fn create_and_read_back() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(1000)).expect("create");
        assert_eq!(file.len(), 1000);
        assert_eq!(KvRecord::SIZE, 16);
        assert_eq!(RecordFile::<KvRecord>::records_per_page(), 256);
        assert_eq!(file.num_pages(), 4);
        for idx in [0usize, 1, 255, 256, 999] {
            let r = file.get(&engine, idx).expect("get");
            assert_eq!(r.key, idx as u64);
            assert_eq!(r.value, idx as f64 * 0.5);
        }
    }

    #[test]
    fn create_parallel_is_byte_identical_to_create() {
        // Sizes straddling page boundaries (256 records per page) plus
        // the empty file; every thread count must reproduce the exact
        // page bytes of the sequential writer.
        for n in [0usize, 1, 255, 256, 257, 1000] {
            let seq_engine = StorageEngine::in_memory();
            let seq = RecordFile::create(&seq_engine, sample(n)).expect("create");
            for threads in [1usize, 2, 4, 7] {
                let par_engine = StorageEngine::in_memory();
                let par =
                    RecordFile::create_parallel(&par_engine, &sample(n), threads).expect("create");
                assert_eq!(par.len(), seq.len());
                assert_eq!(par.num_pages(), seq.num_pages());
                assert_eq!(par.first_page(), seq.first_page());
                assert_eq!(par_engine.num_pages(), seq_engine.num_pages());
                for p in 0..seq_engine.num_pages() {
                    let a = seq_engine
                        .with_page(PageId(p as u64), |page| *page)
                        .expect("read");
                    let b = par_engine
                        .with_page(PageId(p as u64), |page| *page)
                        .expect("read");
                    assert!(a == b, "page {p} differs (n={n}, threads={threads})");
                }
            }
        }
    }

    #[test]
    fn create_surfaces_write_faults_at_flush() {
        // Sequential creation buffers its writes, so a physical write
        // fault fires at the flush (or at a dirty eviction), not inside
        // create.
        let engine = StorageEngine::in_memory();
        engine.inject_fault(Fault::FailWrite { nth: 2 });
        let _file = RecordFile::create(&engine, sample(1000)).expect("buffered create");
        let err = engine
            .flush()
            .expect_err("injected write fault must surface at flush");
        assert!(err.is_injected());
        engine.clear_faults();
        engine.flush().expect("retry flushes the rest");
    }

    #[test]
    fn create_parallel_writes_through_and_surfaces_faults_inline() {
        // The parallel path writes through — its speedup is overlapped
        // physical writes — so an injected fault fails create itself.
        let engine = StorageEngine::in_memory();
        engine.inject_fault(Fault::FailWrite { nth: 2 });
        let err = RecordFile::create_parallel(&engine, &sample(1000), 4)
            .map(|_| ())
            .expect_err("write-through create must hit the fault");
        assert!(err.is_injected());
    }

    #[test]
    fn create_with_tiny_pool_spills_through_writeback() {
        // A pool far smaller than the file forces dirty evictions
        // during create; nothing may be lost.
        let engine = StorageEngine::new(crate::StorageConfig {
            pool_pages: 2,
            ..crate::StorageConfig::default()
        });
        let file = RecordFile::create(&engine, sample(1000)).expect("create");
        engine.sync().expect("sync");
        engine.clear_cache();
        for idx in [0usize, 255, 256, 511, 999] {
            assert_eq!(file.get(&engine, idx).expect("get").key, idx as u64);
        }
    }

    #[test]
    fn range_scan_reads_minimal_pages() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(1000)).expect("create");
        engine.clear_cache();
        engine.reset_stats();

        let got = file.read_range(&engine, 250..260).expect("read range");
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].key, 250);
        assert_eq!(got[9].key, 259);
        // Records 250..260 straddle the page boundary at 256: 2 pages.
        let s = engine.io_stats();
        assert_eq!(s.logical_reads(), 2);
        assert_eq!(file.pages_in_range(250..260), 2);
    }

    #[test]
    fn pages_in_range_formula() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(1000)).expect("create");
        assert_eq!(file.pages_in_range(0..0), 0);
        assert_eq!(file.pages_in_range(0..1), 1);
        assert_eq!(file.pages_in_range(0..256), 1);
        assert_eq!(file.pages_in_range(0..257), 2);
        assert_eq!(file.pages_in_range(255..257), 2);
        assert_eq!(file.pages_in_range(0..1000), 4);
    }

    #[test]
    fn full_scan_matches_input() {
        let engine = StorageEngine::in_memory();
        let data = sample(513);
        let file = RecordFile::create(&engine, data.clone()).expect("create");
        let mut seen = Vec::new();
        file.for_each_in_range(&engine, 0..513, |idx, r| {
            assert_eq!(idx as u64, r.key);
            seen.push(r);
        })
        .expect("scan");
        assert_eq!(seen, data);
    }

    #[test]
    fn multi_range_scan_reads_shared_pages_once() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(1000)).expect("create");
        engine.clear_cache();
        engine.reset_stats();

        // 250..258 straddles pages 0|1 and 260..270 sits on page 1, so
        // the two ranges share page 1; 700..705 lives alone on page 2.
        let ranges = [250..258, 260..270, 700..705];
        let mut seen = Vec::new();
        file.for_each_in_ranges(&engine, &ranges, |idx, r| {
            assert_eq!(idx as u64, r.key);
            seen.push(idx);
        })
        .expect("scan");
        let want: Vec<usize> = (250..258).chain(260..270).chain(700..705).collect();
        assert_eq!(seen, want);
        // Pages touched: {0, 1} for the first two ranges (page 1 shared,
        // read once), {2} for 700..705 → 3 logical reads total, where
        // per-range scans would pay 2 + 1 + 1 = 4.
        assert_eq!(engine.io_stats().logical_reads(), 3);
    }

    #[test]
    fn multi_range_scan_equals_per_range_scans() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(777)).expect("create");
        let ranges = [0..1, 1..2, 4..4, 100..300, 300..301, 511..513, 776..777];
        let mut multi = Vec::new();
        file.for_each_in_ranges(&engine, &ranges, |idx, r| multi.push((idx, r)))
            .expect("scan");
        let mut single = Vec::new();
        for rg in &ranges {
            file.for_each_in_range(&engine, rg.clone(), |idx, r| single.push((idx, r)))
                .expect("scan");
        }
        assert_eq!(multi, single);
    }

    #[test]
    #[should_panic(expected = "unsorted or overlapping")]
    fn multi_range_scan_rejects_overlap() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(100)).expect("create");
        let _ = file.for_each_in_ranges(&engine, &[0..10, 5..20], |_, _| ());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn multi_range_scan_rejects_out_of_bounds() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(100)).expect("create");
        let _ = file.for_each_in_ranges(&engine, &[0..10, 90..101], |_, _| ());
    }

    #[test]
    fn put_overwrites_in_place() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(600)).expect("create");
        file.put(
            &engine,
            300,
            &KvRecord {
                key: 999,
                value: -1.0,
            },
        )
        .expect("put");
        assert_eq!(
            file.get(&engine, 300).expect("get"),
            KvRecord {
                key: 999,
                value: -1.0
            }
        );
        // Neighbours untouched, also after a cold re-read.
        engine.clear_cache();
        assert_eq!(file.get(&engine, 299).expect("get").key, 299);
        assert_eq!(file.get(&engine, 301).expect("get").key, 301);
        assert_eq!(file.get(&engine, 300).expect("get").key, 999);
    }

    #[test]
    fn empty_file() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::<KvRecord>::create(&engine, Vec::new()).expect("create");
        assert!(file.is_empty());
        assert_eq!(file.num_pages(), 1); // one allocated page, zero records
        file.for_each_in_range(&engine, 0..0, |_, _| unreachable!("no records"))
            .expect("empty scan");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(10)).expect("create");
        let _ = file.get(&engine, 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_out_of_bounds_panics() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(10)).expect("create");
        let _ = file.for_each_in_range(&engine, 5..11, |_, _| ());
    }

    #[test]
    fn scan_surfaces_corruption_with_page_context() {
        let engine = StorageEngine::in_memory();
        let file = RecordFile::create(&engine, sample(1000)).expect("create");
        // Tear page 2 of the file behind the pool's back.
        engine.clear_cache();
        engine.clear_faults(); // reset write ordinals past create's writes
        engine.inject_fault(Fault::TornWrite { nth: 0, keep: 64 });
        let torn = PageId(file.first_page().0 + 2);
        let junk = [0xA5u8; PAGE_SIZE];
        assert!(engine.write_page(torn, &junk).is_err());
        engine.clear_faults();

        let err = file
            .for_each_in_range(&engine, 0..1000, |_, _| ())
            .expect_err("scan must hit the torn page");
        assert!(err.is_corrupt());
        assert_eq!(err.page(), Some(torn));
    }
}
