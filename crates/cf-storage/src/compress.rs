//! Columnar delta/varint page compression for Hilbert-ordered records.
//!
//! The cell file stores records in Hilbert order, so consecutive records
//! are numerically similar: positions advance by small steps and vertex
//! values change slowly. This module exploits that with a per-page
//! columnar codec (the vbyte postings idea from inverted-index
//! compressors, applied to fixed-layout records):
//!
//! - [`ColKind::Delta4`] columns (`u32` words) store the first record's
//!   value raw, then zigzag-encoded deltas of consecutive values as
//!   LEB128 varints (1–5 bytes each, 1 for steps within ±63).
//! - [`ColKind::Xor8`] columns (`u64`/`f64` words) store the first value
//!   raw, then one control byte per record. A control with a non-zero
//!   low nibble is a Gorilla-style trimmed XOR against the previous
//!   record's value in the same column —
//!   `(trailing_zero_bytes << 4) | significant_byte_count` followed by
//!   the significant bytes. A control with a zero low nibble is an
//!   exact-match *reference*: `(j << 4)` means "equal to the previous
//!   record's column `j`", where `j` indexes the [`ColSpec`] list and
//!   must be an `Xor8` column at or before the current one (so the
//!   column-major decoder has already reconstructed it). References make
//!   shared words across neighbouring records cost one byte — the
//!   Hilbert scan visits mesh cells that literally share vertices, so
//!   TIN coordinates and grid corner values hit this constantly.
//!
//! A page is laid out as an 8-byte header (`magic u16`, `count u16`,
//! `payload_len u16`, reserved `u16`) followed by the column payloads in
//! [`ColSpec`] order. Every page is independently decodable (each column
//! restarts from a raw first value), so torn pages are contained.
//!
//! Records with cyclically interchangeable column units (a TIN cell's
//! vertex/value triples — see [`crate::Record::column_rotation_groups`])
//! get one more lever: the encoder stores each record under the unit
//! rotation that encodes cheapest against its predecessor, which lines a
//! shared mesh edge up with referenceable columns regardless of where
//! the triangulation put it. The rotation is recorded in a 2-bit-per-
//! record tag block (`⌈count/4⌉` bytes) at the start of the payload, and
//! the decoder permutes each record back afterwards — rotation is
//! invisible outside the codec, so readers always see exactly the bytes
//! that were written.
//!
//! Decoding validates structure exhaustively — magic, count bounds,
//! payload length, control-byte sanity, and exact payload consumption —
//! and reports any violation as a [`DecodeError`], which callers map to
//! [`crate::CfError::Corrupt`] with the page id attached. This file is
//! covered by the CI no-unwrap grep gate: on-disk bytes must never
//! panic.

use crate::codec;
use crate::PAGE_SIZE;

/// Magic tag identifying a compressed record page.
pub const PAGE_MAGIC: u16 = 0xC0DE;

/// Size of the fixed per-page header.
pub const HEADER_LEN: usize = 8;

/// How a record column is encoded on a compressed page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// A little-endian `u32` word: zigzag delta of consecutive values,
    /// LEB128 varint bytes (worst case 5 per record).
    Delta4,
    /// A little-endian `u64`/`f64` word: XOR of consecutive bit
    /// patterns, byte-trimmed behind a control byte (worst case 9 per
    /// record).
    Xor8,
}

impl ColKind {
    /// Width of the raw (first-record) value in bytes.
    #[inline]
    pub fn raw_width(self) -> usize {
        match self {
            ColKind::Delta4 => 4,
            ColKind::Xor8 => 8,
        }
    }

    /// Worst-case encoded bytes for one record in this column.
    #[inline]
    pub fn worst_delta_bytes(self) -> usize {
        match self {
            ColKind::Delta4 => 5,
            ColKind::Xor8 => 9,
        }
    }
}

/// One column of a record's fixed layout: the byte offset of the word
/// inside the record image and how it compresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColSpec {
    /// Byte offset of the column word within the record image.
    pub offset: usize,
    /// Encoding of the column.
    pub kind: ColKind,
}

/// The generic column layout for a record of `size` bytes: as many
/// [`ColKind::Xor8`] words as fit, then one [`ColKind::Delta4`] for a
/// trailing 4-byte word. `size` must be a multiple of 4.
///
/// Record types with known semantics (e.g. index columns that are really
/// `u32` counters) should override [`crate::Record::columns`] instead.
pub fn generic_columns(size: usize) -> Vec<ColSpec> {
    assert!(
        size.is_multiple_of(4),
        "record size {size} is not a multiple of 4"
    );
    let mut cols = Vec::with_capacity(size / 8 + 1);
    let mut off = 0;
    while off + 8 <= size {
        cols.push(ColSpec {
            offset: off,
            kind: ColKind::Xor8,
        });
        off += 8;
    }
    if off < size {
        cols.push(ColSpec {
            offset: off,
            kind: ColKind::Delta4,
        });
    }
    cols
}

/// Worst-case encoded bytes for one record across all columns.
pub fn worst_record_bytes(cols: &[ColSpec]) -> usize {
    cols.iter().map(|c| c.kind.worst_delta_bytes()).sum()
}

// ---------------------------------------------------------------------
// Scalar primitives
// ---------------------------------------------------------------------

/// Zigzag-maps a signed delta to an unsigned varint payload.
#[inline]
fn zigzag(d: i32) -> u32 {
    ((d << 1) ^ (d >> 31)) as u32
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u32) -> i32 {
    ((z >> 1) as i32) ^ -((z & 1) as i32)
}

/// Appends `v` as a LEB128 varint.
#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint at `pos`, returning `(value, next_pos)`.
///
/// Rejects varints longer than 5 bytes and truncated buffers.
#[inline]
fn read_varint(buf: &[u8], mut pos: usize) -> Result<(u32, usize), DecodeError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(pos).ok_or(DecodeError::TruncatedPayload)?;
        pos += 1;
        v |= u32::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok((v, pos));
        }
        shift += 7;
        if shift >= 35 {
            return Err(DecodeError::BadVarint);
        }
    }
}

/// Encoded length of `v` as a LEB128 varint (1–5 bytes).
#[inline]
fn varint_len(v: u32) -> usize {
    ((32 - (v | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Appends the XOR-trimmed encoding of `cur` against `prev`.
///
/// Exact matches are the encoder's job to catch first (they encode as
/// references); a zero XOR never reaches this function.
#[inline]
fn push_xor(out: &mut Vec<u8>, prev: u64, cur: u64) {
    let x = prev ^ cur;
    debug_assert_ne!(x, 0, "exact matches encode as references");
    let trail = (x.trailing_zeros() / 8) as usize;
    let lead = (x.leading_zeros() / 8) as usize;
    let sig = 8 - trail - lead;
    out.push(((trail as u8) << 4) | sig as u8);
    out.extend_from_slice(&x.to_le_bytes()[trail..trail + sig]);
}

// ---------------------------------------------------------------------
// Page encoder
// ---------------------------------------------------------------------

/// Incremental encoder for one compressed page: records are appended
/// until the page (plus a caller-chosen reserve) is full, then flushed.
///
/// The builder keeps one byte buffer and one `prev` word per column; a
/// rejected push leaves both untouched, so the caller can flush and
/// retry the same record on a fresh page.
#[derive(Debug)]
pub struct PageEncoder {
    cols: Vec<ColSpec>,
    groups: Vec<Vec<usize>>,
    /// Per rotation `r`, `src[r][ci]` is the original column whose word
    /// the stored (permuted) column `ci` carries.
    src: Vec<Vec<usize>>,
    bufs: Vec<Vec<u8>>,
    prev: Vec<u64>,
    tags: Vec<u8>,
    count: usize,
}

impl PageEncoder {
    /// Creates an encoder for records with the given column layout and
    /// cyclic rotation groups (empty for fixed-layout records — see
    /// [`crate::Record::column_rotation_groups`]).
    pub fn new(cols: Vec<ColSpec>, groups: Vec<Vec<usize>>) -> Self {
        let n = cols.len();
        assert!(!cols.is_empty(), "record must have at least one column");
        assert!(
            n <= 16,
            "reference controls index columns with one nibble (got {n} columns)"
        );
        let src = rotation_sources(&cols, &groups);
        Self {
            cols,
            groups,
            src,
            bufs: vec![Vec::new(); n],
            prev: vec![0; n],
            tags: Vec::new(),
            count: 0,
        }
    }

    /// Records currently buffered.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Header + payload bytes the page would currently occupy.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.tags.len() + self.bufs.iter().map(Vec::len).sum::<usize>()
    }

    /// Reads the column word of `image` for column `ci`.
    #[inline]
    fn word(&self, ci: usize, image: &[u8]) -> u64 {
        let c = self.cols[ci];
        match c.kind {
            ColKind::Delta4 => u64::from(codec::get_u32(image, c.offset)),
            ColKind::Xor8 => codec::get_u64(image, c.offset),
        }
    }

    /// Encoded bytes the record image would add under rotation `r`,
    /// mirroring the `try_push` encode arms exactly.
    fn push_cost(&self, image: &[u8], r: usize) -> usize {
        if self.count == 0 {
            return self.cols.iter().map(|c| c.kind.raw_width()).sum();
        }
        (0..self.cols.len())
            .map(|ci| {
                let cur = self.word(self.src[r][ci], image);
                match self.cols[ci].kind {
                    ColKind::Delta4 => {
                        let d = (cur as u32).wrapping_sub(self.prev[ci] as u32) as i32;
                        varint_len(zigzag(d))
                    }
                    ColKind::Xor8 => {
                        if (0..=ci)
                            .any(|j| self.cols[j].kind == ColKind::Xor8 && self.prev[j] == cur)
                        {
                            1
                        } else {
                            let x = self.prev[ci] ^ cur;
                            let trail = (x.trailing_zeros() / 8) as usize;
                            let lead = (x.leading_zeros() / 8) as usize;
                            1 + (8 - trail - lead)
                        }
                    }
                }
            })
            .sum()
    }

    /// Appends one record image; returns `false` (leaving the page
    /// unchanged) when it would not fit within `PAGE_SIZE - reserve`.
    /// The first record of a page always fits.
    pub fn try_push(&mut self, image: &[u8], reserve: usize) -> bool {
        // Pick the cheapest unit rotation against the previous record's
        // stored words; ties go to rotation 0, so the untouched layout
        // stays the common case. For records without rotation groups
        // only the identity is considered.
        let (rot, cost) = (0..self.src.len())
            .map(|r| (r, self.push_cost(image, r)))
            .min_by_key(|&(_, c)| c)
            .expect("at least the identity rotation");
        let tag_byte = usize::from(!self.groups.is_empty() && self.count.is_multiple_of(4));
        if self.count > 0 && self.encoded_len() + cost + tag_byte + reserve > PAGE_SIZE {
            return false;
        }
        let len_before = self.encoded_len();
        for ci in 0..self.cols.len() {
            let cur = self.word(self.src[rot][ci], image);
            let buf = &mut self.bufs[ci];
            if self.count == 0 {
                match self.cols[ci].kind {
                    ColKind::Delta4 => buf.extend_from_slice(&(cur as u32).to_le_bytes()),
                    ColKind::Xor8 => buf.extend_from_slice(&cur.to_le_bytes()),
                }
            } else {
                match self.cols[ci].kind {
                    ColKind::Delta4 => {
                        let d = (cur as u32).wrapping_sub(self.prev[ci] as u32) as i32;
                        push_varint(buf, zigzag(d));
                    }
                    ColKind::Xor8 => {
                        // An exact match against any already-decodable
                        // Xor8 column of the previous record costs one
                        // byte; lowest column wins so repeated shapes
                        // produce constant control bytes (the decoder's
                        // run fast path).
                        let matched = (0..=ci)
                            .find(|&j| self.cols[j].kind == ColKind::Xor8 && self.prev[j] == cur);
                        match matched {
                            Some(j) => buf.push((j as u8) << 4),
                            None => push_xor(buf, self.prev[ci], cur),
                        }
                    }
                }
            }
        }
        debug_assert_eq!(
            self.encoded_len(),
            len_before + cost,
            "push_cost must mirror the encode arms"
        );
        if !self.groups.is_empty() {
            if self.count.is_multiple_of(4) {
                self.tags.push(0);
            }
            let slot = self.tags.len() - 1;
            self.tags[slot] |= (rot as u8) << ((self.count % 4) * 2);
        }
        for ci in 0..self.cols.len() {
            self.prev[ci] = self.word(self.src[rot][ci], image);
        }
        self.count += 1;
        true
    }

    /// Writes the header + payload into `page` and resets the encoder.
    ///
    /// # Panics
    ///
    /// Panics if the encoded page exceeds `page.len()` or no records were
    /// pushed — both caller bugs, not data errors.
    pub fn flush_into(&mut self, page: &mut [u8]) -> usize {
        assert!(self.count > 0, "flush of an empty page");
        let total = self.encoded_len();
        assert!(total <= page.len(), "encoded page overflows the buffer");
        let payload = total - HEADER_LEN;
        let mut off = codec::put_u16(page, 0, PAGE_MAGIC);
        off = codec::put_u16(page, off, self.count as u16);
        off = codec::put_u16(page, off, payload as u16);
        off = codec::put_u16(page, off, 0);
        page[off..off + self.tags.len()].copy_from_slice(&self.tags);
        off += self.tags.len();
        self.tags.clear();
        for buf in &mut self.bufs {
            page[off..off + buf.len()].copy_from_slice(buf);
            off += buf.len();
            buf.clear();
        }
        // Deterministic page images: zero the tail after the payload.
        page[off..].fill(0);
        self.count = 0;
        self.prev.fill(0);
        total
    }
}

/// Builds, for each cyclic rotation, the map from stored (permuted)
/// column index to the original column whose word it carries. With no
/// groups only the identity rotation exists.
///
/// # Panics
///
/// Panics on a malformed group shape — more than 4 units (tags are 2
/// bits), unequal unit lengths, out-of-range or overlapping indices, or
/// kind-mismatched unit positions. All are record-type bugs, not data
/// errors.
fn rotation_sources(cols: &[ColSpec], groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..cols.len()).collect();
    if groups.is_empty() {
        return vec![identity];
    }
    let n_units = groups.len();
    assert!(
        n_units <= 4,
        "rotation tags are 2 bits (got {n_units} units)"
    );
    let len = groups[0].len();
    let mut seen = vec![false; cols.len()];
    for unit in groups {
        assert_eq!(unit.len(), len, "rotation units must have equal length");
        for (m, &c) in unit.iter().enumerate() {
            assert!(c < cols.len(), "rotation group column {c} out of range");
            assert!(
                !std::mem::replace(&mut seen[c], true),
                "rotation groups overlap on column {c}"
            );
            assert_eq!(
                cols[c].kind, cols[groups[0][m]].kind,
                "rotation unit position {m} mixes column kinds"
            );
        }
    }
    (0..n_units)
        .map(|r| {
            let mut src = identity.clone();
            for (j, unit) in groups.iter().enumerate() {
                let from = &groups[(j + r) % n_units];
                for (m, &c) in unit.iter().enumerate() {
                    src[c] = from[m];
                }
            }
            src
        })
        .collect()
}

// ---------------------------------------------------------------------
// Page decoder
// ---------------------------------------------------------------------

/// Structural decode failure of a compressed page. The record-file layer
/// wraps this into [`crate::CfError::Corrupt`] with the page id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The page magic did not match [`PAGE_MAGIC`].
    BadMagic(u16),
    /// The header record count was zero or inconsistent with the
    /// caller's expectation from the page directory.
    BadCount(usize),
    /// The header payload length exceeds the page.
    BadPayloadLen(usize),
    /// A column ran past the declared payload.
    TruncatedPayload,
    /// A varint exceeded the 5-byte `u32` bound.
    BadVarint,
    /// An XOR control byte declared an impossible byte span.
    BadControlByte(u8),
    /// A rotation tag named a unit rotation the record type lacks.
    BadRotationTag(u8),
    /// Decoding consumed fewer or more bytes than the declared payload.
    PayloadLenMismatch {
        /// Payload length from the header.
        declared: usize,
        /// Bytes actually consumed by the columns.
        consumed: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad compressed-page magic {m:#06x}"),
            DecodeError::BadCount(c) => write!(f, "bad compressed-page record count {c}"),
            DecodeError::BadPayloadLen(l) => write!(f, "payload length {l} exceeds page"),
            DecodeError::TruncatedPayload => write!(f, "column data truncated"),
            DecodeError::BadVarint => write!(f, "varint exceeds u32 range"),
            DecodeError::BadControlByte(b) => write!(f, "bad xor control byte {b:#04x}"),
            DecodeError::BadRotationTag(t) => write!(f, "rotation tag {t} out of range"),
            DecodeError::PayloadLenMismatch { declared, consumed } => {
                write!(
                    f,
                    "payload length mismatch: declared {declared}, consumed {consumed}"
                )
            }
        }
    }
}

/// Reads the record count of an encoded page header after validating the
/// magic and bounds (count ≥ 1, payload within the page).
pub fn page_count(page: &[u8]) -> Result<usize, DecodeError> {
    let magic = codec::try_get_u16(page, 0).ok_or(DecodeError::TruncatedPayload)?;
    if magic != PAGE_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let count = codec::try_get_u16(page, 2).ok_or(DecodeError::TruncatedPayload)? as usize;
    let payload = codec::try_get_u16(page, 4).ok_or(DecodeError::TruncatedPayload)? as usize;
    if count == 0 {
        return Err(DecodeError::BadCount(count));
    }
    if HEADER_LEN + payload > page.len() {
        return Err(DecodeError::BadPayloadLen(payload));
    }
    Ok(count)
}

/// Decodes an encoded page into `count` contiguous record images of
/// `rec_size` bytes in `out` (which must hold `count * rec_size` bytes).
///
/// `groups` must match the encoder's rotation groups (empty for
/// fixed-layout records); the decoded images are always in the records'
/// original column layout.
///
/// Returns the record count. Every structural violation — wrong magic,
/// zero count, payload overrun, bad varint/control/tag bytes, or inexact
/// payload consumption — yields a [`DecodeError`]; no input can panic.
pub fn decode_page(
    cols: &[ColSpec],
    groups: &[Vec<usize>],
    rec_size: usize,
    page: &[u8],
    out: &mut [u8],
) -> Result<usize, DecodeError> {
    let count = page_count(page)?;
    let payload = codec::try_get_u16(page, 4).ok_or(DecodeError::TruncatedPayload)? as usize;
    if out.len() < count * rec_size {
        return Err(DecodeError::BadCount(count));
    }
    let buf = &page[HEADER_LEN..HEADER_LEN + payload];
    let tags_len = if groups.is_empty() {
        0
    } else {
        count.div_ceil(4)
    };
    let tags = buf.get(..tags_len).ok_or(DecodeError::TruncatedPayload)?;
    let mut pos = tags_len;
    for (ci, c) in cols.iter().enumerate() {
        pos = match c.kind {
            ColKind::Delta4 => decode_delta4_column(buf, pos, count, rec_size, c.offset, out)?,
            ColKind::Xor8 => decode_xor8_column(buf, pos, count, rec_size, cols, ci, out)?,
        };
    }
    if pos != payload {
        return Err(DecodeError::PayloadLenMismatch {
            declared: payload,
            consumed: pos,
        });
    }
    restore_rotations(cols, groups, tags, count, rec_size, out)?;
    Ok(count)
}

/// Undoes per-record unit rotation after the columns have decoded: each
/// stored record holds its units in the permuted order the encoder
/// chose; this pass copies them back to the original layout so callers
/// see exactly the bytes that were written.
fn restore_rotations(
    cols: &[ColSpec],
    groups: &[Vec<usize>],
    tags: &[u8],
    count: usize,
    rec_size: usize,
    out: &mut [u8],
) -> Result<(), DecodeError> {
    if groups.is_empty() {
        return Ok(());
    }
    let n_units = groups.len();
    let mut tmp = vec![0u8; rec_size];
    for i in 0..count {
        let tag = (tags[i / 4] >> ((i % 4) * 2)) & 0b11;
        let r = tag as usize;
        if r == 0 {
            continue;
        }
        if r >= n_units {
            return Err(DecodeError::BadRotationTag(tag));
        }
        let rec = &mut out[i * rec_size..(i + 1) * rec_size];
        tmp.copy_from_slice(rec);
        for (j, unit) in groups.iter().enumerate() {
            // Stored unit `j` carries original unit `(j + r) % n_units`.
            let orig = &groups[(j + r) % n_units];
            for (m, &perm_col) in unit.iter().enumerate() {
                let w = cols[perm_col].kind.raw_width();
                let from = cols[perm_col].offset;
                let to = cols[orig[m]].offset;
                rec[to..to + w].copy_from_slice(&tmp[from..from + w]);
            }
        }
    }
    Ok(())
}

/// Decodes one `Delta4` column into the record images.
///
/// The reconstruction loop runs in unrolled 8-record batches with a
/// branch-free fast path: when the next 8 payload bytes all lack the
/// varint continuation bit (the common case — Hilbert-ordered positions
/// step by small amounts), the batch decodes without per-byte loops.
fn decode_delta4_column(
    buf: &[u8],
    mut pos: usize,
    count: usize,
    rec_size: usize,
    offset: usize,
    out: &mut [u8],
) -> Result<usize, DecodeError> {
    let first = u32::from_le_bytes(
        buf.get(pos..pos + 4)
            .ok_or(DecodeError::TruncatedPayload)?
            .try_into()
            .map_err(|_| DecodeError::TruncatedPayload)?,
    );
    pos += 4;
    out[offset..offset + 4].copy_from_slice(&first.to_le_bytes());
    let mut prev = first;
    let mut i = 1usize;
    while i < count {
        let batch = (count - i).min(8);
        // Fast path: 8 single-byte varints in a row decode lane-wise.
        if batch == 8 {
            if let Some(w) = buf.get(pos..pos + 8) {
                let mut cont = 0u8;
                for (j, b) in w.iter().enumerate() {
                    cont |= (b >> 7) << j;
                }
                if cont == 0 {
                    for (j, b) in w.iter().enumerate() {
                        prev = prev.wrapping_add(unzigzag(u32::from(*b)) as u32);
                        let slot = (i + j) * rec_size + offset;
                        out[slot..slot + 4].copy_from_slice(&prev.to_le_bytes());
                    }
                    pos += 8;
                    i += 8;
                    continue;
                }
            }
        }
        for _ in 0..batch {
            let (z, np) = read_varint(buf, pos)?;
            pos = np;
            prev = prev.wrapping_add(unzigzag(z) as u32);
            let slot = i * rec_size + offset;
            out[slot..slot + 4].copy_from_slice(&prev.to_le_bytes());
            i += 1;
        }
    }
    Ok(pos)
}

/// Decodes one `Xor8` column (spec index `ci`) into the record images.
///
/// A control byte with a non-zero low nibble is a trimmed XOR against
/// this column's previous value; a zero low nibble is a reference
/// `(j << 4)` to the previous record's column `j`, which must be an
/// `Xor8` column at or before `ci` (columns decode in spec order, so
/// that word is already materialized in `out`).
///
/// Runs in unrolled 8-record batches with a fast path for runs of
/// identical reference bytes (shared vertices, flat terrain regions),
/// which decode as 8 word copies with no byte assembly.
fn decode_xor8_column(
    buf: &[u8],
    mut pos: usize,
    count: usize,
    rec_size: usize,
    cols: &[ColSpec],
    ci: usize,
    out: &mut [u8],
) -> Result<usize, DecodeError> {
    let offset = cols[ci].offset;
    let first = u64::from_le_bytes(
        buf.get(pos..pos + 8)
            .ok_or(DecodeError::TruncatedPayload)?
            .try_into()
            .map_err(|_| DecodeError::TruncatedPayload)?,
    );
    pos += 8;
    out[offset..offset + 8].copy_from_slice(&first.to_le_bytes());
    let mut prev = first;
    let mut i = 1usize;
    while i < count {
        let batch = (count - i).min(8);
        // Fast path: 8 identical reference bytes — each record copies
        // the referenced word of its predecessor, no byte assembly.
        if batch == 8 {
            if let Some(w) = buf.get(pos..pos + 8) {
                let ctrl = w[0];
                let mut diff = 0u8;
                for b in w {
                    diff |= *b ^ ctrl;
                }
                if diff == 0 && ctrl & 0x0F == 0 {
                    let src = ref_offset(cols, ci, ctrl)?;
                    for j in 0..8 {
                        let from = (i + j - 1) * rec_size + src;
                        let word: [u8; 8] = out[from..from + 8].try_into().expect("word slice");
                        let slot = (i + j) * rec_size + offset;
                        out[slot..slot + 8].copy_from_slice(&word);
                    }
                    let last = (i + 7) * rec_size + offset;
                    prev = u64::from_le_bytes(out[last..last + 8].try_into().expect("word slice"));
                    pos += 8;
                    i += 8;
                    continue;
                }
            }
        }
        for _ in 0..batch {
            let ctrl = *buf.get(pos).ok_or(DecodeError::TruncatedPayload)?;
            let sig = (ctrl & 0x0F) as usize;
            let v = if sig == 0 {
                let src = ref_offset(cols, ci, ctrl)?;
                let from = (i - 1) * rec_size + src;
                pos += 1;
                u64::from_le_bytes(out[from..from + 8].try_into().expect("word slice"))
            } else {
                let trail = (ctrl >> 4) as usize;
                if trail + sig > 8 {
                    return Err(DecodeError::BadControlByte(ctrl));
                }
                let bytes = buf
                    .get(pos + 1..pos + 1 + sig)
                    .ok_or(DecodeError::TruncatedPayload)?;
                let mut le = [0u8; 8];
                le[trail..trail + sig].copy_from_slice(bytes);
                pos += 1 + sig;
                prev ^ u64::from_le_bytes(le)
            };
            prev = v;
            let slot = i * rec_size + offset;
            out[slot..slot + 8].copy_from_slice(&v.to_le_bytes());
            i += 1;
        }
    }
    Ok(pos)
}

/// Resolves a reference control byte `(j << 4)` for the `Xor8` column at
/// spec index `ci` to the byte offset of the referenced column.
#[inline]
fn ref_offset(cols: &[ColSpec], ci: usize, ctrl: u8) -> Result<usize, DecodeError> {
    let j = (ctrl >> 4) as usize;
    if j > ci || cols[j].kind != ColKind::Xor8 {
        return Err(DecodeError::BadControlByte(ctrl));
    }
    Ok(cols[j].offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols_kv() -> Vec<ColSpec> {
        generic_columns(16)
    }

    fn encode_records(cols: &[ColSpec], rec_size: usize, images: &[u8]) -> Vec<u8> {
        let mut enc = PageEncoder::new(cols.to_vec(), Vec::new());
        for img in images.chunks(rec_size) {
            assert!(enc.try_push(img, 0), "records must fit one page in tests");
        }
        let mut page = vec![0u8; PAGE_SIZE];
        enc.flush_into(&mut page);
        page
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0i32, 1, -1, 63, -64, i32::MAX, i32::MIN, 12345, -54321] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let vals = [0u32, 1, 127, 128, 16383, 16384, u32::MAX];
        for v in vals {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for v in vals {
            let (got, np) = read_varint(&buf, pos).expect("test value");
            assert_eq!(got, v);
            pos = np;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn xor_column_round_trips_specials() {
        let cols = vec![ColSpec {
            offset: 0,
            kind: ColKind::Xor8,
        }];
        let vals = [
            0u64,
            1,
            f64::to_bits(1.5),
            f64::to_bits(1.5000001),
            f64::to_bits(-0.0),
            f64::to_bits(f64::NAN),
            f64::to_bits(f64::INFINITY),
            u64::MAX,
            u64::MAX, // repeat → one-byte same-column reference
        ];
        let mut images = vec![0u8; vals.len() * 8];
        for (i, v) in vals.iter().enumerate() {
            codec::put_u64(&mut images[i * 8..(i + 1) * 8], 0, *v);
        }
        let page = encode_records(&cols, 8, &images);
        let mut out = vec![0u8; images.len()];
        assert_eq!(
            decode_page(&cols, &[], 8, &page, &mut out).expect("test value"),
            vals.len()
        );
        assert_eq!(out, images);
    }

    #[test]
    fn cross_column_references_compress_shared_words() {
        // Shared-vertex pattern: column 1 of record i repeats column 0
        // of record i-1, as when a Hilbert scan walks adjacent mesh
        // cells. The repeat must encode as a one-byte reference.
        let cols = cols_kv();
        let n = 32usize;
        let v = |i: usize| f64::to_bits(1.0 + (i as f64) * std::f64::consts::PI);
        let mut images = vec![0u8; n * 16];
        for i in 0..n {
            let img = &mut images[i * 16..(i + 1) * 16];
            codec::put_u64(img, 0, v(i));
            codec::put_u64(img, 8, v(i.wrapping_sub(1)));
        }
        let page = encode_records(&cols, 16, &images);
        let mut out = vec![0u8; n * 16];
        assert_eq!(
            decode_page(&cols, &[], 16, &page, &mut out).expect("test value"),
            n
        );
        assert_eq!(out, images);
        // Column 0 pays full xor freight; column 1 is all references.
        let payload = codec::try_get_u16(&page, 4).expect("test value") as usize;
        assert!(payload <= 16 + (n - 1) * 10, "payload {payload}");
    }

    #[test]
    fn invalid_references_error_not_panic() {
        // Forward reference: column 0 cites column 1, which the
        // column-major decoder has not materialized yet.
        let cols = vec![ColSpec {
            offset: 0,
            kind: ColKind::Xor8,
        }];
        let mut page = vec![0u8; PAGE_SIZE];
        let _ = codec::put_u16(&mut page, 0, PAGE_MAGIC);
        let _ = codec::put_u16(&mut page, 2, 2);
        let _ = codec::put_u16(&mut page, 4, 9);
        codec::put_u64(&mut page[HEADER_LEN..HEADER_LEN + 8], 0, 7);
        page[HEADER_LEN + 8] = 0x10;
        let mut out = vec![0u8; 16];
        assert!(matches!(
            decode_page(&cols, &[], 8, &page, &mut out),
            Err(DecodeError::BadControlByte(0x10))
        ));

        // Reference to a Delta4 column is equally malformed.
        let cols = vec![
            ColSpec {
                offset: 0,
                kind: ColKind::Delta4,
            },
            ColSpec {
                offset: 8,
                kind: ColKind::Xor8,
            },
        ];
        let mut page = vec![0u8; PAGE_SIZE];
        let _ = codec::put_u16(&mut page, 0, PAGE_MAGIC);
        let _ = codec::put_u16(&mut page, 2, 2);
        let _ = codec::put_u16(&mut page, 4, 14);
        let body = &mut page[HEADER_LEN..];
        codec::put_u32(&mut body[0..4], 0, 3); // Delta4 first value
        body[4] = 0; // zero varint delta
        codec::put_u64(&mut body[5..13], 0, 9); // Xor8 first value
        body[13] = 0x00; // cites column 0, a Delta4 column
        let mut out = vec![0u8; 32];
        assert!(matches!(
            decode_page(&cols, &[], 16, &page, &mut out),
            Err(DecodeError::BadControlByte(0x00))
        ));
    }

    #[test]
    fn page_round_trips_byte_exact() {
        let cols = cols_kv();
        let n = 100usize;
        let mut images = vec![0u8; n * 16];
        for i in 0..n {
            let img = &mut images[i * 16..(i + 1) * 16];
            codec::put_u64(img, 0, 1000 + (i as u64) * 3);
            codec::put_f64(img, 8, 20.0 + (i as f64) * 0.125);
        }
        let page = encode_records(&cols, 16, &images);
        let mut out = vec![0u8; n * 16];
        let count = decode_page(&cols, &[], 16, &page, &mut out).expect("test value");
        assert_eq!(count, n);
        assert_eq!(out, images);
        // Similar records compress far below their raw footprint.
        let payload = codec::try_get_u16(&page, 4).expect("test value") as usize;
        assert!(
            payload < n * 16 / 3,
            "expected ≥3x compression, payload {payload} for {} raw",
            n * 16
        );
    }

    #[test]
    fn sorted_u32_column_compresses_to_about_a_byte_per_record() {
        let cols = vec![
            ColSpec {
                offset: 0,
                kind: ColKind::Delta4,
            },
            ColSpec {
                offset: 4,
                kind: ColKind::Delta4,
            },
        ];
        let n = 500usize;
        let mut images = vec![0u8; n * 8];
        for i in 0..n {
            let img = &mut images[i * 8..(i + 1) * 8];
            codec::put_u32(img, 0, (i as u32) * 7);
            codec::put_u32(img, 4, 40 + (i as u32) * 7);
        }
        let page = encode_records(&cols, 8, &images);
        let mut out = vec![0u8; n * 8];
        assert_eq!(
            decode_page(&cols, &[], 8, &page, &mut out).expect("test value"),
            n
        );
        assert_eq!(out, images);
        let payload = codec::try_get_u16(&page, 4).expect("test value") as usize;
        assert!(payload <= 8 + 2 * n, "payload {payload}");
    }

    #[test]
    fn try_push_respects_reserve_and_is_atomic() {
        let cols = cols_kv();
        let mut enc = PageEncoder::new(cols.clone(), Vec::new());
        let mut img = [0u8; 16];
        let mut pushed = 0usize;
        loop {
            codec::put_u64(&mut img, 0, pushed as u64);
            // Adversarial values: every push costs near worst case.
            codec::put_f64(&mut img, 8, (pushed as f64).sqrt() * 1e300);
            if !enc.try_push(&img, 64) {
                break;
            }
            pushed += 1;
        }
        assert!(pushed > 0);
        assert!(enc.encoded_len() + 64 <= PAGE_SIZE);
        let len_before = enc.encoded_len();
        // The rejected push left the encoder unchanged.
        assert_eq!(enc.count(), pushed);
        assert_eq!(enc.encoded_len(), len_before);
        let mut page = vec![0u8; PAGE_SIZE];
        enc.flush_into(&mut page);
        let mut out = vec![0u8; pushed * 16];
        assert_eq!(
            decode_page(&cols, &[], 16, &page, &mut out).expect("test value"),
            pushed
        );
    }

    #[test]
    fn random_values_round_trip() {
        // Deterministic xorshift images: worst-case incompressible data
        // still round-trips exactly (just with negative savings).
        let cols = cols_kv();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 60usize;
        let mut images = vec![0u8; n * 16];
        for i in 0..n {
            let img = &mut images[i * 16..(i + 1) * 16];
            codec::put_u64(img, 0, next());
            codec::put_u64(img, 8, next());
        }
        let page = encode_records(&cols, 16, &images);
        let mut out = vec![0u8; n * 16];
        assert_eq!(
            decode_page(&cols, &[], 16, &page, &mut out).expect("test value"),
            n
        );
        assert_eq!(out, images);
    }

    #[test]
    fn corrupt_pages_error_not_panic() {
        let cols = cols_kv();
        let n = 64usize;
        let mut images = vec![0u8; n * 16];
        for i in 0..n {
            let img = &mut images[i * 16..(i + 1) * 16];
            codec::put_u64(img, 0, i as u64);
            codec::put_f64(img, 8, i as f64);
        }
        let good = encode_records(&cols, 16, &images);
        let mut out = vec![0u8; PAGE_SIZE * 4];

        // Bad magic.
        let mut p = good.clone();
        p[0] ^= 0xFF;
        assert!(matches!(
            decode_page(&cols, &[], 16, &p, &mut out),
            Err(DecodeError::BadMagic(_))
        ));

        // Zero count.
        let mut p = good.clone();
        p[2] = 0;
        p[3] = 0;
        assert!(matches!(
            decode_page(&cols, &[], 16, &p, &mut out),
            Err(DecodeError::BadCount(0))
        ));

        // Payload overruns the page.
        let mut p = good.clone();
        p[4] = 0xFF;
        p[5] = 0xFF;
        assert!(matches!(
            decode_page(&cols, &[], 16, &p, &mut out),
            Err(DecodeError::BadPayloadLen(_))
        ));

        // Every single-byte corruption of the whole page must decode to
        // an error or to different bytes — never panic. (A flip may
        // still decode "successfully" to wrong record bytes; the CRC
        // layer below catches that. Here we only require totality.)
        for i in 0..good.len() {
            let mut p = good.clone();
            p[i] ^= 0x41;
            let _ = decode_page(&cols, &[], 16, &p, &mut out);
        }

        // Truncated payload: declare more records than encoded.
        let mut p = good.clone();
        let declared = codec::try_get_u16(&p, 2).expect("test value");
        let _ = codec::put_u16(&mut p, 2, declared + 9);
        assert!(decode_page(&cols, &[], 16, &p, &mut out).is_err());
    }

    /// Nine `Xor8` columns in three cyclic units, as a TIN cell record
    /// declares them.
    fn cols_tin() -> (Vec<ColSpec>, Vec<Vec<usize>>) {
        let cols = (0..9)
            .map(|i| ColSpec {
                offset: i * 8,
                kind: ColKind::Xor8,
            })
            .collect();
        (cols, vec![vec![0, 1, 6], vec![2, 3, 7], vec![4, 5, 8]])
    }

    #[test]
    fn rotation_restores_original_layout_and_compresses() {
        // Triangle-strip pattern: record i holds units (uᵢ, uᵢ₊₁, uᵢ₊₂)
        // of incompressible words, so consecutive records share two
        // units — but shifted one unit position left, out of reach of
        // cross-column references (which only look backwards). The
        // rotation pass must line the shared units up as references and
        // the decoder must still hand back the original layouts.
        let (cols, groups) = cols_tin();
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 32usize;
        let units: Vec<[u64; 3]> = (0..n + 2).map(|_| [next(), next(), next()]).collect();
        let mut images = vec![0u8; n * 72];
        for i in 0..n {
            let img = &mut images[i * 72..(i + 1) * 72];
            for (j, unit) in units[i..i + 3].iter().enumerate() {
                codec::put_u64(img, j * 16, unit[0]); // x → col 2j
                codec::put_u64(img, j * 16 + 8, unit[1]); // y → col 2j+1
                codec::put_u64(img, 48 + j * 8, unit[2]); // v → col 6+j
            }
        }
        let encode = |groups: Vec<Vec<usize>>| {
            let mut enc = PageEncoder::new(cols.clone(), groups);
            for img in images.chunks(72) {
                assert!(enc.try_push(img, 0), "records must fit one page");
            }
            let mut page = vec![0u8; PAGE_SIZE];
            enc.flush_into(&mut page);
            page
        };
        let rotated = encode(groups.clone());
        let plain = encode(Vec::new());
        let payload = |p: &[u8]| codec::try_get_u16(p, 4).expect("test value") as usize;
        assert!(
            payload(&rotated) * 2 < payload(&plain),
            "rotation should at least halve the strip payload: {} vs {}",
            payload(&rotated),
            payload(&plain)
        );
        let mut out = vec![0u8; n * 72];
        assert_eq!(
            decode_page(&cols, &groups, 72, &rotated, &mut out).expect("test value"),
            n
        );
        assert_eq!(out, images, "decode must restore the original layout");
    }

    #[test]
    fn bad_rotation_tag_errors_not_panic() {
        let cols = vec![
            ColSpec {
                offset: 0,
                kind: ColKind::Xor8,
            },
            ColSpec {
                offset: 8,
                kind: ColKind::Xor8,
            },
        ];
        let groups = vec![vec![0], vec![1]];
        let mut enc = PageEncoder::new(cols.clone(), groups.clone());
        let mut img = [0u8; 16];
        for i in 0..5u64 {
            codec::put_u64(&mut img, 0, i * 3);
            codec::put_u64(&mut img, 8, i * 7 + 1);
            assert!(enc.try_push(&img, 0));
        }
        let mut page = vec![0u8; PAGE_SIZE];
        enc.flush_into(&mut page);
        let mut out = vec![0u8; 5 * 16];
        decode_page(&cols, &groups, 16, &page, &mut out).expect("test value");
        // Tag of record 1 (bits 2–3 of the first tag byte) → 3, which
        // names a rotation a two-unit record lacks.
        page[HEADER_LEN] |= 0b1100;
        assert!(matches!(
            decode_page(&cols, &groups, 16, &page, &mut out),
            Err(DecodeError::BadRotationTag(3))
        ));
    }

    #[test]
    #[should_panic(expected = "rotation groups overlap")]
    fn overlapping_rotation_groups_rejected() {
        let (cols, _) = cols_tin();
        let _ = PageEncoder::new(cols, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn generic_columns_cover_the_record() {
        assert_eq!(generic_columns(16).len(), 2);
        assert_eq!(generic_columns(64).len(), 8);
        let c = generic_columns(12);
        assert_eq!(c.len(), 2);
        assert_eq!(c[1].kind, ColKind::Delta4);
        assert_eq!(c[1].offset, 8);
        assert_eq!(worst_record_bytes(&generic_columns(16)), 18);
    }
}
