//! The storage façade bundling disk + buffer pool.

use crate::{BufferPool, DiskManager, IoStats, PageBuf, PageId};
use std::time::Duration;

/// Configuration for a [`StorageEngine`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// Buffer pool shard count; `0` (the default) picks automatically
    /// from the capacity (see [`BufferPool::new`]).
    pub pool_shards: usize,
    /// Artificial latency charged per physical page read.
    ///
    /// `Duration::ZERO` (the default) for correctness tests; benches use a
    /// value modelling the paper's disk-resident setting (see DESIGN.md).
    pub read_latency: Duration,
    /// Artificial latency charged per physical page write (same model as
    /// `read_latency`; the wait releases the CPU, so concurrent writers —
    /// e.g. the parallel build pipeline's record-write phase — overlap
    /// their simulated device time).
    pub write_latency: Duration,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            pool_pages: 256,
            pool_shards: 0,
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
        }
    }
}

impl StorageConfig {
    fn build_pool(&self) -> BufferPool {
        if self.pool_shards == 0 {
            BufferPool::new(self.pool_pages)
        } else {
            BufferPool::with_shards(self.pool_pages, self.pool_shards)
        }
    }
}

/// A simulated database storage engine: one disk, one buffer pool.
///
/// All page traffic of the value indexes, the R\*-trees and the cell
/// files flows through a shared `StorageEngine`, so [`IoStats`]
/// snapshots capture the complete cost of a query.
pub struct StorageEngine {
    disk: DiskManager,
    pool: BufferPool,
}

impl StorageEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: StorageConfig) -> Self {
        Self {
            disk: DiskManager::with_latency(config.read_latency, config.write_latency),
            pool: config.build_pool(),
        }
    }

    /// Creates an engine with default configuration (256-page pool, no
    /// artificial latency).
    pub fn in_memory() -> Self {
        Self::new(StorageConfig::default())
    }

    /// Opens (or creates) an engine backed by a real database file.
    ///
    /// Existing pages are preserved, so a database file survives process
    /// restarts; see [`DiskManager::open_file`].
    pub fn open_file(
        path: impl AsRef<std::path::Path>,
        config: StorageConfig,
    ) -> std::io::Result<Self> {
        Ok(Self {
            disk: DiskManager::open_file(path, config.read_latency)?,
            pool: config.build_pool(),
        })
    }

    /// Flushes a file-backed engine to stable storage (no-op in memory).
    pub fn sync(&self) -> std::io::Result<()> {
        self.disk.sync()
    }

    /// Allocates one page.
    pub fn allocate_page(&self) -> PageId {
        self.disk.allocate()
    }

    /// Allocates `n` physically consecutive pages, returning the first id.
    pub fn allocate_run(&self, n: usize) -> PageId {
        self.disk.allocate_run(n)
    }

    /// Reads page `id` through the buffer pool and passes its bytes to `f`.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&PageBuf) -> T) -> T {
        self.pool.with_page(&self.disk, id, f)
    }

    /// Writes a full page through the pool to disk.
    pub fn write_page(&self, id: PageId, buf: &PageBuf) {
        self.pool.write_through(&self.disk, id, buf);
    }

    /// Total pages allocated on the disk.
    pub fn num_pages(&self) -> usize {
        self.disk.num_pages()
    }

    /// Snapshot of all I/O counters.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            disk_reads: self.disk.reads(),
            disk_writes: self.disk.writes(),
            pool_hits: self.pool.hits(),
            pool_misses: self.pool.misses(),
        }
    }

    /// Resets all I/O counters (cache contents are untouched).
    pub fn reset_stats(&self) {
        self.disk.reset_counters();
        self.pool.reset_counters();
    }

    /// Empties the buffer pool so the next accesses hit the disk — used
    /// by benchmarks to measure cold-cache query cost, which is the
    /// regime the paper's numbers were taken in.
    pub fn clear_cache(&self) {
        self.pool.clear();
    }

    /// The underlying buffer pool (stats / capacity introspection).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn stats_cover_pool_and_disk() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page();
        let mut buf = [0u8; PAGE_SIZE];
        buf[10] = 42;
        engine.write_page(id, &buf);

        let before = engine.io_stats();
        let v = engine.with_page(id, |p| p[10]);
        assert_eq!(v, 42);
        let v = engine.with_page(id, |p| p[10]);
        assert_eq!(v, 42);
        let delta = engine.io_stats() - before;
        assert_eq!(delta.logical_reads(), 2);
        assert_eq!(delta.pool_misses, 1);
        assert_eq!(delta.pool_hits, 1);
        assert_eq!(delta.disk_reads, 1);
    }

    #[test]
    fn clear_cache_makes_reads_cold() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page();
        engine.with_page(id, |_| ());
        engine.clear_cache();
        engine.reset_stats();
        engine.with_page(id, |_| ());
        let s = engine.io_stats();
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn small_pool_evicts_under_pressure() {
        let engine = StorageEngine::new(StorageConfig {
            pool_pages: 2,
            ..StorageConfig::default()
        });
        let ids: Vec<_> = (0..5).map(|_| engine.allocate_page()).collect();
        for &id in &ids {
            engine.with_page(id, |_| ());
        }
        assert_eq!(engine.pool().cached_pages(), 2);
    }
}
