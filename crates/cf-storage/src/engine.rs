//! The storage façade bundling disk + buffer pool.

use crate::fault::FiredFault;
use crate::gc::EpochGc;
use crate::{BufferPool, CfResult, DiskManager, Fault, IoStats, PageBuf, PageCodec, PageId};
use cf_obs::MetricsRegistry;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for a [`StorageEngine`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// Buffer pool shard count; `0` (the default) picks automatically
    /// from the capacity (see [`BufferPool::new`]).
    pub pool_shards: usize,
    /// Artificial latency charged per physical page read.
    ///
    /// `Duration::ZERO` (the default) for correctness tests; benches use a
    /// value modelling the paper's disk-resident setting (see DESIGN.md).
    pub read_latency: Duration,
    /// Artificial latency charged per physical page write (same model as
    /// `read_latency`; the wait releases the CPU, so concurrent writers —
    /// e.g. the parallel build pipeline's record-write phase — overlap
    /// their simulated device time).
    ///
    /// Both latencies apply to the **in-memory** backing only: a
    /// file-backed engine pays its real device cost and ignores them
    /// (see [`DiskManager::open_file`]).
    pub write_latency: Duration,
    /// File backing only: serve physical page reads from a read-only
    /// `mmap` of the database file instead of positional reads
    /// (checksum-verified either way; falls back to positional I/O if
    /// the kernel refuses the mapping). Ignored in memory.
    pub use_mmap: bool,
    /// Page codec new record files ([`crate::CellFile`]) are created
    /// with: [`PageCodec::Raw`] fixed-slot pages (the default) or
    /// [`PageCodec::Compressed`] delta/varint pages packing several
    /// times more Hilbert-ordered cells per page.
    pub codec: PageCodec,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            pool_pages: 256,
            pool_shards: 0,
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
            use_mmap: false,
            codec: PageCodec::Raw,
        }
    }
}

impl StorageConfig {
    fn build_pool(&self, registry: Arc<MetricsRegistry>) -> BufferPool {
        if self.pool_shards == 0 {
            let auto = BufferPool::auto_shards(self.pool_pages);
            BufferPool::with_shards_on(self.pool_pages, auto, registry)
        } else {
            BufferPool::with_shards_on(self.pool_pages, self.pool_shards, registry)
        }
    }
}

/// A simulated database storage engine: one disk, one buffer pool.
///
/// All page traffic of the value indexes, the R\*-trees and the cell
/// files flows through a shared `StorageEngine`, so [`IoStats`]
/// snapshots capture the complete cost of a query.
pub struct StorageEngine {
    disk: DiskManager,
    pool: BufferPool,
    metrics: Arc<MetricsRegistry>,
    codec: PageCodec,
    gc: EpochGc,
}

impl StorageEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: StorageConfig) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        Self {
            disk: DiskManager::with_latency_on(
                config.read_latency,
                config.write_latency,
                Arc::clone(&metrics),
            ),
            pool: config.build_pool(Arc::clone(&metrics)),
            metrics,
            codec: config.codec,
            gc: EpochGc::new(),
        }
    }

    /// The page codec new [`crate::CellFile`]s on this engine use.
    pub fn codec(&self) -> PageCodec {
        self.codec
    }

    /// Creates an engine with default configuration (256-page pool, no
    /// artificial latency).
    pub fn in_memory() -> Self {
        Self::new(StorageConfig::default())
    }

    /// Opens (or creates) an engine backed by a real database file.
    ///
    /// Existing pages are preserved, so a database file survives process
    /// restarts; see [`DiskManager::open_file`]. The simulated
    /// `read_latency`/`write_latency` in `config` are ignored — real
    /// file I/O is its own cost model.
    pub fn open_file(path: impl AsRef<std::path::Path>, config: StorageConfig) -> CfResult<Self> {
        let metrics = Arc::new(MetricsRegistry::new());
        Ok(Self {
            disk: DiskManager::open_file_on(path, Arc::clone(&metrics), config.use_mmap)?,
            pool: config.build_pool(Arc::clone(&metrics)),
            metrics,
            codec: config.codec,
            gc: EpochGc::new(),
        })
    }

    /// The engine's unified metrics registry: the disk, pool, R-tree
    /// and index layers all publish into it, so one
    /// [`MetricsRegistry::render_text`] snapshot covers a query end to
    /// end.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Flushes every dirty buffer-pool frame to the disk (ascending
    /// page order), then flushes a file-backed disk to stable storage
    /// (the disk flush is a no-op in memory). After `sync` returns, all
    /// buffered writes are durable.
    pub fn sync(&self) -> CfResult<()> {
        self.pool.flush_all(&self.disk)?;
        self.disk.sync()
    }

    /// Writes every dirty buffer-pool frame to the disk in ascending
    /// page order, returning how many pages were written. Unlike
    /// [`StorageEngine::sync`] this does not force the file to stable
    /// storage.
    pub fn flush(&self) -> CfResult<usize> {
        self.pool.flush_all(&self.disk)
    }

    /// Allocates one page.
    pub fn allocate_page(&self) -> CfResult<PageId> {
        self.disk.allocate()
    }

    /// Allocates `n` physically consecutive pages, returning the first id.
    pub fn allocate_run(&self, n: usize) -> CfResult<PageId> {
        self.disk.allocate_run(n)
    }

    /// Reads page `id` through the buffer pool and passes its bytes to `f`.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&PageBuf) -> T) -> CfResult<T> {
        // Every logical page read feeds the spatial heatmap's page
        // table (an inline no-op under `obs-off`).
        self.metrics.heat().touch_page(id.0);
        self.pool.with_page(&self.disk, id, f)
    }

    /// Like [`StorageEngine::with_page`] for fallible `f`: decode
    /// errors from the closure and I/O errors from the fault-in share
    /// one `CfResult`.
    pub fn try_with_page<T>(
        &self,
        id: PageId,
        f: impl FnOnce(&PageBuf) -> CfResult<T>,
    ) -> CfResult<T> {
        self.metrics.heat().touch_page(id.0);
        self.pool.with_page(&self.disk, id, f)?
    }

    /// Writes a full page through the pool to disk (write-through: the
    /// disk has the bytes when this returns — the right call for
    /// commit-point pages whose durability order matters).
    pub fn write_page(&self, id: PageId, buf: &PageBuf) -> CfResult<()> {
        self.pool.write_through(&self.disk, id, buf)
    }

    /// Writes a full page into the buffer pool only, deferring the
    /// physical write to eviction or the next [`StorageEngine::flush`]/
    /// [`StorageEngine::sync`] — the right call for bulk builds. A
    /// crash before the flush loses the buffered bytes.
    pub fn write_page_buffered(&self, id: PageId, buf: &PageBuf) -> CfResult<()> {
        self.pool.write_back(&self.disk, id, buf)
    }

    /// Returns one page to the disk's freelist. See
    /// [`StorageEngine::free_run`].
    pub fn free_page(&self, id: PageId) -> CfResult<()> {
        self.free_run(id, 1)
    }

    /// Returns `n` consecutive pages starting at `id` to the disk's
    /// freelist, dropping any cached frames for them (dirty or not —
    /// the caller is declaring the bytes dead). Later allocations reuse
    /// the hole before the file grows; a hole at the end of the file
    /// shrinks it. See [`DiskManager::free_run`].
    pub fn free_run(&self, id: PageId, n: usize) -> CfResult<()> {
        self.pool.invalidate_run(id, n);
        self.disk.free_run(id, n)
    }

    /// Total pages currently on the disk's freelist.
    pub fn free_pages(&self) -> usize {
        self.disk.free_pages()
    }

    /// The engine's epoch-reclamation domain: readers pin epochs
    /// through it, writers defer superseded runs into it. See
    /// [`EpochGc`].
    pub fn epoch_gc(&self) -> &EpochGc {
        &self.gc
    }

    /// Defers returning `n` consecutive pages starting at `id` to the
    /// freelist until every reader of an epoch older than
    /// `retire_epoch` has dropped its pin. The pages are actually
    /// recycled by a later [`StorageEngine::collect_deferred`]. Emits a
    /// `run_deferred` event into the registry's lifecycle journal.
    pub fn defer_free_run(&self, retire_epoch: u64, id: PageId, n: usize) {
        self.gc.defer_free_run(retire_epoch, id, n);
        self.publish_deferred_gauge();
        self.metrics.journal().emit_with(|| {
            cf_obs::Json::obj([
                ("event", cf_obs::Json::Str("run_deferred".into())),
                ("retire_epoch", cf_obs::Json::Num(retire_epoch as f64)),
                ("first_page", cf_obs::Json::Num(id.0 as f64)),
                ("pages", cf_obs::Json::Num(n as f64)),
                (
                    "deferred_total",
                    cf_obs::Json::Num(self.gc.deferred_pages() as f64),
                ),
            ])
        });
    }

    /// Frees every deferred run whose readers have all dropped,
    /// returning how many pages were recycled. Runs still protected by
    /// a live [`crate::EpochPin`] stay deferred. Each reclaimed run is
    /// journalled as a `run_reclaimed` event.
    pub fn collect_deferred(&self) -> CfResult<usize> {
        let ripe = self.gc.take_ripe();
        let mut freed = 0;
        for (first, pages) in ripe {
            self.free_run(first, pages)?;
            freed += pages;
            self.metrics.journal().emit_with(|| {
                cf_obs::Json::obj([
                    ("event", cf_obs::Json::Str("run_reclaimed".into())),
                    ("first_page", cf_obs::Json::Num(first.0 as f64)),
                    ("pages", cf_obs::Json::Num(pages as f64)),
                ])
            });
        }
        self.publish_deferred_gauge();
        Ok(freed)
    }

    fn publish_deferred_gauge(&self) {
        self.metrics
            .gauge("storage_deferred_free_pages")
            .set(self.gc.deferred_pages() as f64);
    }

    /// Arms a deterministic fault on the underlying disk (see [`Fault`]).
    ///
    /// Faults fire on *physical* I/O ordinals, so buffer-pool hits do
    /// not advance them; clear the cache first for fully deterministic
    /// read ordinals.
    pub fn inject_fault(&self, fault: Fault) {
        self.disk.inject_fault(fault);
    }

    /// Disarms all faults and resets the fault-ordinal counters.
    pub fn clear_faults(&self) {
        self.disk.clear_faults();
    }

    /// Physical `(reads, writes)` since the last
    /// [`StorageEngine::clear_faults`] — the ordinal space faults are
    /// keyed in.
    pub fn fault_ops(&self) -> (u64, u64) {
        self.disk.fault_ops()
    }

    /// Total pages allocated on the disk.
    pub fn num_pages(&self) -> usize {
        self.disk.num_pages()
    }

    /// Snapshot of all I/O counters.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            disk_reads: self.disk.reads(),
            disk_writes: self.disk.writes(),
            pool_hits: self.pool.hits(),
            pool_misses: self.pool.misses(),
        }
    }

    /// Resets all I/O counters — and, because they live in the shared
    /// registry, every other metric published against this engine
    /// (cache contents are untouched). This is the explicit "forget
    /// warmup" reset the bench harness uses.
    pub fn reset_stats(&self) {
        self.metrics.reset();
    }

    /// Every injected fault that actually fired since the last
    /// [`StorageEngine::clear_faults`], in firing order — crash-safety
    /// tests assert these match the faults they armed.
    pub fn fired_faults(&self) -> Vec<FiredFault> {
        self.disk.fired_faults()
    }

    /// Empties the buffer pool so the next accesses hit the disk — used
    /// by benchmarks to measure cold-cache query cost, which is the
    /// regime the paper's numbers were taken in.
    ///
    /// Dirty frames are flushed first (best effort — on a flush failure
    /// the affected frames stay cached and dirty rather than losing
    /// bytes; the error will resurface on the next fallible
    /// [`StorageEngine::flush`]/[`StorageEngine::sync`]).
    pub fn clear_cache(&self) {
        let _ = self.pool.flush_all(&self.disk);
        self.pool.clear();
    }

    /// The underlying buffer pool (stats / capacity introspection).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CfError, PAGE_SIZE};

    #[test]
    fn stats_cover_pool_and_disk() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page().expect("allocate");
        let mut buf = [0u8; PAGE_SIZE];
        buf[10] = 42;
        engine.write_page(id, &buf).expect("write");

        let before = engine.io_stats();
        let v = engine.with_page(id, |p| p[10]).expect("read");
        assert_eq!(v, 42);
        let v = engine.with_page(id, |p| p[10]).expect("read");
        assert_eq!(v, 42);
        let delta = engine.io_stats() - before;
        assert_eq!(delta.logical_reads(), 2);
        assert_eq!(delta.pool_misses, 1);
        assert_eq!(delta.pool_hits, 1);
        assert_eq!(delta.disk_reads, 1);
    }

    #[test]
    fn clear_cache_makes_reads_cold() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page().expect("allocate");
        engine.with_page(id, |_| ()).expect("read");
        engine.clear_cache();
        engine.reset_stats();
        engine.with_page(id, |_| ()).expect("read");
        let s = engine.io_stats();
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn small_pool_evicts_under_pressure() {
        let engine = StorageEngine::new(StorageConfig {
            pool_pages: 2,
            ..StorageConfig::default()
        });
        let ids: Vec<_> = (0..5)
            .map(|_| engine.allocate_page().expect("allocate"))
            .collect();
        for &id in &ids {
            engine.with_page(id, |_| ()).expect("read");
        }
        assert_eq!(engine.pool().cached_pages(), 2);
    }

    #[test]
    fn try_with_page_flattens_decode_errors() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page().expect("allocate");
        let ok: CfResult<u8> = engine.try_with_page(id, |p| Ok(p[0]));
        assert_eq!(ok.expect("decode"), 0);
        let err = engine
            .try_with_page::<u8>(id, |_| Err(CfError::corrupt(id, "bad node header")))
            .expect_err("closure error propagates");
        assert!(err.is_corrupt());
    }

    #[test]
    fn registry_totals_are_the_same_atomics_as_io_stats() {
        let engine = StorageEngine::in_memory();
        let ids: Vec<_> = (0..8)
            .map(|_| engine.allocate_page().expect("allocate"))
            .collect();
        let buf = [1u8; PAGE_SIZE];
        for &id in &ids {
            engine.write_page(id, &buf).expect("write");
        }
        for &id in ids.iter().chain(ids.iter()) {
            engine.with_page(id, |_| ()).expect("read");
        }
        let io = engine.io_stats();
        let m = engine.metrics();
        assert_eq!(m.counter_total("storage_disk_reads_total"), io.disk_reads);
        assert_eq!(m.counter_total("storage_disk_writes_total"), io.disk_writes);
        assert_eq!(m.counter_total("pool_hits_total"), io.pool_hits);
        assert_eq!(m.counter_total("pool_misses_total"), io.pool_misses);
        // Checksums are verified on physical reads only.
        assert_eq!(
            m.counter_total("storage_checksum_verifications_total"),
            io.disk_reads
        );
        assert_eq!(m.counter_total("storage_checksum_failures_total"), 0);
        // reset_stats is registry-wide.
        engine.reset_stats();
        assert_eq!(engine.io_stats(), IoStats::default());
        assert_eq!(m.counter_total("storage_checksum_verifications_total"), 0);
    }

    #[test]
    fn fired_faults_surface_through_the_engine() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page().expect("allocate");
        engine.clear_faults();
        engine.inject_fault(Fault::FailRead { nth: 0 });
        let err = engine.with_page(id, |_| ()).expect_err("injected");
        assert!(err.is_injected());
        let fired = engine.fired_faults();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fault, Fault::FailRead { nth: 0 });
        assert_eq!(fired[0].page, id);
        assert_eq!(
            engine
                .metrics()
                .counter_total("storage_faults_injected_total"),
            1
        );
        engine.clear_faults();
        assert!(engine.fired_faults().is_empty());
    }

    #[test]
    fn buffered_writes_reach_disk_on_sync() {
        let engine = StorageEngine::in_memory();
        let ids: Vec<_> = (0..4)
            .map(|_| engine.allocate_page().expect("allocate"))
            .collect();
        let mut buf = [0u8; PAGE_SIZE];
        for (i, &id) in ids.iter().enumerate() {
            buf[0] = i as u8 + 1;
            engine.write_page_buffered(id, &buf).expect("write");
        }
        assert_eq!(engine.io_stats().disk_writes, 0, "deferred");
        assert_eq!(engine.pool().dirty_pages(), 4);
        engine.sync().expect("sync");
        assert_eq!(engine.io_stats().disk_writes, 4);
        assert_eq!(engine.pool().dirty_pages(), 0);
        engine.clear_cache();
        for (i, &id) in ids.iter().enumerate() {
            let v = engine.with_page(id, |p| p[0]).expect("read");
            assert_eq!(v, i as u8 + 1);
        }
    }

    #[test]
    fn clear_cache_flushes_buffered_writes_first() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page().expect("allocate");
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0x21;
        engine.write_page_buffered(id, &buf).expect("write");
        engine.clear_cache();
        assert_eq!(engine.pool().cached_pages(), 0);
        let v = engine.with_page(id, |p| p[0]).expect("read");
        assert_eq!(v, 0x21, "buffered bytes survived the cache clear");
    }

    #[test]
    fn freed_pages_leave_the_cache_and_get_reused() {
        let engine = StorageEngine::in_memory();
        let first = engine.allocate_run(6).expect("allocate");
        assert_eq!(first, PageId(0));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0x77;
        engine.write_page(PageId(2), &buf).expect("write");
        engine.with_page(PageId(2), |_| ()).expect("warm the cache");

        engine.free_run(PageId(1), 3).expect("free");
        assert_eq!(engine.free_pages(), 3);
        let reused = engine.allocate_run(3).expect("reuse");
        assert_eq!(reused, PageId(1));
        assert_eq!(engine.num_pages(), 6, "hole reused, no growth");
        // The pre-free cached frame must not resurface.
        let v = engine.with_page(PageId(2), |p| p[0]).expect("read");
        assert_eq!(v, 0, "reused page reads as fresh zeroes");
    }

    #[test]
    fn injected_faults_reach_engine_callers() {
        let engine = StorageEngine::in_memory();
        let id = engine.allocate_page().expect("allocate");
        engine.inject_fault(Fault::FailRead { nth: 0 });
        let err = engine
            .with_page(id, |_| ())
            .expect_err("injected read fault");
        assert!(err.is_injected());
        engine.clear_faults();
        assert_eq!(engine.fault_ops(), (0, 0));
        engine.with_page(id, |_| ()).expect("read after clear");
    }
}
