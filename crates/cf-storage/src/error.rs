//! Typed errors for the storage stack.
//!
//! Every fallible operation on the persistence path — physical page
//! I/O, buffer-pool faults, record-file scans, index load/save —
//! returns [`CfResult`] instead of panicking. The variants separate
//! the three failure classes a disk-resident database must distinguish:
//! the operating system refused the operation ([`CfError::Io`]), the
//! bytes that came back fail validation ([`CfError::Corrupt`]), or a
//! test harness deterministically injected the failure
//! ([`CfError::Injected`]).

use crate::disk::PageId;
use std::fmt;
use std::io;

/// Result alias used across the storage stack.
pub type CfResult<T> = Result<T, CfError>;

/// Which physical operation an injected fault fired on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A physical page read.
    Read,
    /// A physical page write.
    Write,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Read => f.write_str("read"),
            FaultOp::Write => f.write_str("write"),
        }
    }
}

/// A typed storage-stack error.
#[derive(Debug)]
pub enum CfError {
    /// The operating system failed the underlying file operation.
    Io {
        /// What the stack was doing when the OS call failed.
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// On-disk bytes failed validation (bad checksum, bad magic,
    /// unknown tag, out-of-range handle, …).
    Corrupt {
        /// The page the corrupt bytes came from, when known.
        page: Option<PageId>,
        /// Human-readable description of what failed to validate.
        detail: String,
    },
    /// A deterministic fault injected by the test harness (see
    /// [`crate::Fault`]).
    Injected {
        /// The physical operation that was failed.
        op: FaultOp,
        /// Zero-based ordinal of that operation since the injector was
        /// last cleared.
        ordinal: u64,
    },
    /// An in-place update of a compressed page did not fit: re-encoding
    /// the page's records with the new value exceeds the page size. The
    /// data on disk is untouched and still valid — the caller should
    /// repack the file to restore per-page slack.
    PageFull {
        /// The page that could not absorb the update.
        page: PageId,
        /// Records on the page at the time of the update.
        records: usize,
    },
    /// A caller-supplied cell id is not mapped by the index it was
    /// handed to (out of range, or a hole in a non-dense id space).
    /// User input must never panic the storage stack — mutation paths
    /// return this instead.
    InvalidCell {
        /// The cell id the caller supplied.
        cell: usize,
        /// How many cell ids the index maps (`0..cells` is the valid
        /// id range, though sparse indexes may hold holes inside it).
        cells: usize,
    },
}

impl CfError {
    /// Builds an [`CfError::Io`] with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        CfError::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a [`CfError::Corrupt`] with an optional page id.
    pub fn corrupt(page: impl Into<Option<PageId>>, detail: impl Into<String>) -> Self {
        CfError::Corrupt {
            page: page.into(),
            detail: detail.into(),
        }
    }

    /// `true` for [`CfError::Corrupt`].
    pub fn is_corrupt(&self) -> bool {
        matches!(self, CfError::Corrupt { .. })
    }

    /// `true` for [`CfError::Injected`].
    pub fn is_injected(&self) -> bool {
        matches!(self, CfError::Injected { .. })
    }

    /// `true` for [`CfError::InvalidCell`].
    pub fn is_invalid_cell(&self) -> bool {
        matches!(self, CfError::InvalidCell { .. })
    }

    /// The page carried by a [`CfError::Corrupt`], if any.
    pub fn page(&self) -> Option<PageId> {
        match self {
            CfError::Corrupt { page, .. } => *page,
            _ => None,
        }
    }
}

impl fmt::Display for CfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfError::Io { context, source } => {
                write!(f, "I/O error while {context}: {source}")
            }
            CfError::Corrupt {
                page: Some(p),
                detail,
            } => write!(f, "corrupt data on page {}: {detail}", p.0),
            CfError::Corrupt { page: None, detail } => {
                write!(f, "corrupt data: {detail}")
            }
            CfError::Injected { op, ordinal } => {
                write!(f, "injected fault on physical {op} #{ordinal}")
            }
            CfError::PageFull { page, records } => {
                write!(
                    f,
                    "compressed page {} is full ({records} records): update does not fit, repack to restore slack",
                    page.0
                )
            }
            CfError::InvalidCell { cell, cells } => {
                write!(
                    f,
                    "cell id {cell} is not mapped by this index ({cells} cells)"
                )
            }
        }
    }
}

impl std::error::Error for CfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CfError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CfError> for io::Error {
    fn from(e: CfError) -> Self {
        match e {
            CfError::Io { source, .. } => source,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_page_context() {
        let e = CfError::corrupt(PageId(42), "checksum mismatch");
        assert!(e.to_string().contains("page 42"), "{e}");
        assert!(e.is_corrupt());
        assert_eq!(e.page(), Some(PageId(42)));

        let e = CfError::corrupt(None, "no valid slot");
        assert!(e.to_string().contains("no valid slot"));
        assert_eq!(e.page(), None);
    }

    #[test]
    fn io_errors_chain_their_source() {
        let e = CfError::io(
            "reading page",
            io::Error::new(io::ErrorKind::UnexpectedEof, "short"),
        );
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("reading page"));
    }

    #[test]
    fn invalid_cell_names_the_offending_id() {
        let e = CfError::InvalidCell {
            cell: 99,
            cells: 64,
        };
        assert!(e.is_invalid_cell());
        assert!(!e.is_corrupt());
        assert!(e.to_string().contains("cell id 99 is not mapped"), "{e}");
    }

    #[test]
    fn injected_faults_name_op_and_ordinal() {
        let e = CfError::Injected {
            op: FaultOp::Write,
            ordinal: 7,
        };
        assert!(e.is_injected());
        assert!(e.to_string().contains("write #7"), "{e}");
    }
}
