//! Per-page checksums.
//!
//! Every page written through [`crate::DiskManager`] gets an 8-byte
//! sidecar entry: a 32-bit magic tag plus the CRC-32 (IEEE polynomial)
//! of the 4 KiB page image. The entry lives *beside* the page — in a
//! parallel vector for the in-memory backing, in a `<path>.crc` sidecar
//! file for the file backing — rather than in a page trailer, so the
//! full [`crate::PAGE_SIZE`] payload stays available to records and
//! tree nodes and the paper's page-capacity constants (256 records or
//! 170 R-tree entries per 4 KiB page) are unchanged.
//!
//! Verification happens on **physical reads only**: buffer-pool hits
//! serve already-verified frames, so the hot query path pays nothing.

use crate::disk::{PageBuf, PageId};
use crate::error::{CfError, CfResult};

/// Magic tag stored in the high half of a sidecar entry ("CFPG").
pub const ENTRY_MAGIC: u32 = 0x4346_5047;

/// Size in bytes of one sidecar entry.
pub const ENTRY_SIZE: usize = 8;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The sidecar entry for a page image: `magic << 32 | crc32(page)`.
pub fn page_entry(page: &PageBuf) -> u64 {
    ((ENTRY_MAGIC as u64) << 32) | crc32(page) as u64
}

/// The entry of an all-zero page (freshly allocated, never written).
pub fn zero_page_entry() -> u64 {
    // CRC of 4096 zero bytes; computed once.
    static ZERO: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *ZERO.get_or_init(|| page_entry(&[0u8; crate::PAGE_SIZE]))
}

/// Verifies a page image against its sidecar `entry`, reporting
/// mismatches as [`CfError::Corrupt`] carrying the page id.
pub fn verify_page(page: &PageBuf, entry: u64, id: PageId) -> CfResult<()> {
    let magic = (entry >> 32) as u32;
    if magic != ENTRY_MAGIC {
        return Err(CfError::corrupt(
            id,
            format!("missing or invalid checksum entry (magic {magic:#010x}, expected {ENTRY_MAGIC:#010x})"),
        ));
    }
    let stored = entry as u32;
    let computed = crc32(page);
    if stored != computed {
        return Err(CfError::corrupt(
            id,
            format!("page checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn verify_accepts_matching_entry() {
        let mut page = [0u8; PAGE_SIZE];
        page[17] = 0xAB;
        let entry = page_entry(&page);
        assert!(verify_page(&page, entry, PageId(3)).is_ok());
    }

    #[test]
    fn verify_rejects_flipped_bit_with_page_context() {
        let mut page = [0u8; PAGE_SIZE];
        page[17] = 0xAB;
        let entry = page_entry(&page);
        page[17] ^= 0x01;
        let err = verify_page(&page, entry, PageId(9)).expect_err("must detect corruption");
        assert!(err.is_corrupt());
        assert_eq!(err.page(), Some(PageId(9)));
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn verify_rejects_missing_entry() {
        let page = [0u8; PAGE_SIZE];
        let err = verify_page(&page, 0, PageId(1)).expect_err("zero entry has no magic");
        assert!(err.to_string().contains("missing or invalid"), "{err}");
    }

    #[test]
    fn zero_page_entry_matches_fresh_page() {
        let page = [0u8; PAGE_SIZE];
        assert_eq!(zero_page_entry(), page_entry(&page));
        assert!(verify_page(&page, zero_page_entry(), PageId(0)).is_ok());
    }
}
