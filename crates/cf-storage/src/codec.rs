//! Little-endian encode/decode helpers for fixed-layout page records.
//!
//! All on-page structures in the workspace (R\*-tree nodes, cell records,
//! file headers) are fixed-layout little-endian; these helpers keep the
//! offset arithmetic in one audited place.

/// Writes a `u32` at `offset`, returning the offset just past it.
#[inline]
pub fn put_u32(buf: &mut [u8], offset: usize, v: u32) -> usize {
    buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    offset + 4
}

/// Reads a `u32` at `offset`.
#[inline]
pub fn get_u32(buf: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes"))
}

/// Writes a `u64` at `offset`, returning the offset just past it.
#[inline]
pub fn put_u64(buf: &mut [u8], offset: usize, v: u64) -> usize {
    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    offset + 8
}

/// Reads a `u64` at `offset`.
#[inline]
pub fn get_u64(buf: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(buf[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Writes an `f64` at `offset`, returning the offset just past it.
#[inline]
pub fn put_f64(buf: &mut [u8], offset: usize, v: f64) -> usize {
    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    offset + 8
}

/// Reads an `f64` at `offset`.
#[inline]
pub fn get_f64(buf: &[u8], offset: usize) -> f64 {
    f64::from_le_bytes(buf[offset..offset + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut buf = [0u8; 64];
        let mut off = 0;
        off = put_u32(&mut buf, off, 0xDEAD_BEEF);
        off = put_u64(&mut buf, off, u64::MAX - 5);
        off = put_f64(&mut buf, off, -123.456);
        assert_eq!(off, 20);
        assert_eq!(get_u32(&buf, 0), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 4), u64::MAX - 5);
        assert_eq!(get_f64(&buf, 12), -123.456);
    }

    #[test]
    fn special_floats_round_trip() {
        let mut buf = [0u8; 8];
        for v in [
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
        ] {
            put_f64(&mut buf, 0, v);
            assert_eq!(get_f64(&buf, 0).to_bits(), v.to_bits());
        }
        put_f64(&mut buf, 0, f64::NAN);
        assert!(get_f64(&buf, 0).is_nan());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut buf = [0u8; 4];
        let _ = put_u64(&mut buf, 0, 1);
    }
}
