//! Little-endian encode/decode helpers for fixed-layout page records.
//!
//! All on-page structures in the workspace (R\*-tree nodes, cell records,
//! file headers) are fixed-layout little-endian; these helpers keep the
//! offset arithmetic in one audited place.
//!
//! The `get_*` readers are bounds-checked and total: a truncated slice
//! yields a zero value instead of a panic, because the caller has already
//! sized the buffer (records decode from `R::SIZE`-byte images cut from a
//! checksum-verified page). Paths that decode *variable-length* on-disk
//! bytes — where a short slice means corruption, not a programmer error —
//! must use the fallible `try_get_*` variants and map `None` to
//! [`crate::CfError::Corrupt`]. This file is covered by the CI no-unwrap
//! grep gate.

/// Writes a `u32` at `offset`, returning the offset just past it.
#[inline(always)]
pub fn put_u32(buf: &mut [u8], offset: usize, v: u32) -> usize {
    buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    offset + 4
}

/// Reads a `u32` at `offset`. Returns 0 if the slice is too short; use
/// [`try_get_u32`] when a short read must surface as corruption.
#[inline(always)]
pub fn get_u32(buf: &[u8], offset: usize) -> u32 {
    if let Some(b) = buf.get(offset..offset + 4) {
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    } else {
        0
    }
}

/// Reads a `u32` at `offset`, or `None` if the slice is too short.
#[inline(always)]
pub fn try_get_u32(buf: &[u8], offset: usize) -> Option<u32> {
    let b = buf.get(offset..offset.checked_add(4)?)?;
    let mut le = [0u8; 4];
    le.copy_from_slice(b);
    Some(u32::from_le_bytes(le))
}

/// Writes a `u64` at `offset`, returning the offset just past it.
#[inline(always)]
pub fn put_u64(buf: &mut [u8], offset: usize, v: u64) -> usize {
    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    offset + 8
}

/// Reads a `u64` at `offset`. Returns 0 if the slice is too short; use
/// [`try_get_u64`] when a short read must surface as corruption.
#[inline(always)]
pub fn get_u64(buf: &[u8], offset: usize) -> u64 {
    if let Some(b) = buf.get(offset..offset + 8) {
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    } else {
        0
    }
}

/// Reads a `u64` at `offset`, or `None` if the slice is too short.
#[inline(always)]
pub fn try_get_u64(buf: &[u8], offset: usize) -> Option<u64> {
    let b = buf.get(offset..offset.checked_add(8)?)?;
    let mut le = [0u8; 8];
    le.copy_from_slice(b);
    Some(u64::from_le_bytes(le))
}

/// Writes an `f64` at `offset`, returning the offset just past it.
#[inline(always)]
pub fn put_f64(buf: &mut [u8], offset: usize, v: f64) -> usize {
    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    offset + 8
}

/// Reads an `f64` at `offset`. Returns 0.0 if the slice is too short; use
/// [`try_get_f64`] when a short read must surface as corruption.
#[inline(always)]
pub fn get_f64(buf: &[u8], offset: usize) -> f64 {
    f64::from_bits(get_u64(buf, offset))
}

/// Reads an `f64` at `offset`, or `None` if the slice is too short.
#[inline(always)]
pub fn try_get_f64(buf: &[u8], offset: usize) -> Option<f64> {
    try_get_u64(buf, offset).map(f64::from_bits)
}

/// Reads a `u16` at `offset`, or `None` if the slice is too short.
#[inline(always)]
pub fn try_get_u16(buf: &[u8], offset: usize) -> Option<u16> {
    let b = buf.get(offset..offset.checked_add(2)?)?;
    let mut le = [0u8; 2];
    le.copy_from_slice(b);
    Some(u16::from_le_bytes(le))
}

/// Reads a `u16` at `offset`; a slice too short reads as 0 (total, like
/// the other `get_*` accessors — prefer [`try_get_u16`] on untrusted
/// offsets).
#[inline(always)]
pub fn get_u16(buf: &[u8], offset: usize) -> u16 {
    try_get_u16(buf, offset).unwrap_or(0)
}

/// Writes a `u16` at `offset`, returning the offset just past it.
#[inline(always)]
pub fn put_u16(buf: &mut [u8], offset: usize, v: u16) -> usize {
    buf[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
    offset + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut buf = [0u8; 64];
        let mut off = 0;
        off = put_u16(&mut buf, off, 0xBEEF);
        off = put_u32(&mut buf, off, 0xDEAD_BEEF);
        off = put_u64(&mut buf, off, u64::MAX - 5);
        off = put_f64(&mut buf, off, -123.456);
        assert_eq!(off, 22);
        assert_eq!(try_get_u16(&buf, 0), Some(0xBEEF));
        assert_eq!(get_u32(&buf, 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 6), u64::MAX - 5);
        assert_eq!(get_f64(&buf, 14), -123.456);
    }

    #[test]
    fn special_floats_round_trip() {
        let mut buf = [0u8; 8];
        for v in [
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
        ] {
            put_f64(&mut buf, 0, v);
            assert_eq!(get_f64(&buf, 0).to_bits(), v.to_bits());
        }
        put_f64(&mut buf, 0, f64::NAN);
        assert!(get_f64(&buf, 0).is_nan());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut buf = [0u8; 4];
        let _ = put_u64(&mut buf, 0, 1);
    }

    #[test]
    fn truncated_reads_are_total_not_panicking() {
        let buf = [0xFFu8; 4];
        // get_* never panics on a short slice…
        assert_eq!(get_u32(&buf, 2), 0);
        assert_eq!(get_u64(&buf, 0), 0);
        assert_eq!(get_f64(&buf, 0), 0.0);
        // …and try_get_* reports the truncation.
        assert_eq!(try_get_u32(&buf, 0), Some(u32::MAX));
        assert_eq!(try_get_u32(&buf, 1), None);
        assert_eq!(try_get_u64(&buf, 0), None);
        assert_eq!(try_get_f64(&buf, 0), None);
        assert_eq!(try_get_u16(&buf, 3), None);
        // Offsets near usize::MAX must not overflow.
        assert_eq!(try_get_u32(&buf, usize::MAX - 1), None);
        assert_eq!(try_get_u64(&buf, usize::MAX), None);
    }
}
